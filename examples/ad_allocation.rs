//! Ad allocation as maximum weight b-matching (Appendix D), through the
//! unified [`Registry`] API.
//!
//! Advertisers bid on placement slots; an advertiser `a` can buy at most
//! `b(a)` slots (campaign budget) and every slot carries at most one ad.
//! Edges are (advertiser, slot) pairs weighted by the bid; the platform
//! maximizes booked bid value. This is the classic b-matching workload the
//! paper's `(3 − 2/b + 2ε)`-approximation targets, run here on the
//! simulated cluster with full round/space accounting.
//!
//! Run with: `cargo run --release --example ad_allocation`

use mrlr::core::api::{BMatchingInstance, Instance, Registry};
use mrlr::core::mr::MrConfig;
use mrlr::graph::generators;
use mrlr::mapreduce::DetRng;

fn main() {
    // 120 advertisers (left side), 300 slots (right side), 2400 candidate
    // placements (an advertiser only bids on relevant slots).
    let advertisers = 120usize;
    let slots = 300usize;
    let g0 = generators::bipartite(advertisers, slots, 2400, 7);
    // Bids: log-uniform in [0.5, 50) dollars — heavy-tailed, like real CPMs.
    let g = generators::with_log_uniform_weights(&g0, 0.5, 50.0, 11);

    // Budgets: advertisers can buy 1–6 slots; slots hold exactly 1 ad.
    let mut rng = DetRng::new(3);
    let b: Vec<u32> = (0..g.n() as u32)
        .map(|v| {
            if (v as usize) < advertisers {
                1 + rng.range(6) as u32
            } else {
                1
            }
        })
        .collect();
    let budget_total: u32 = b[..advertisers].iter().sum();
    println!(
        "marketplace: {advertisers} advertisers ({budget_total} slot budget total), {slots} slots, {} bids",
        g.m()
    );

    // Run Algorithm 7 on the simulated cluster, via the registry. ε is
    // part of the instance spec; everything else derives from the regime.
    let n = g.n();
    let eps = 0.25;
    let cfg = MrConfig::auto(n, g.m(), 0.25, 42);
    let bm = BMatchingInstance::new(g.clone(), b.clone(), eps);
    let multiplier = bm.multiplier();
    let report = Registry::with_defaults()
        .solve("b-matching", &Instance::BMatching(bm), &cfg)
        .expect("allocation");
    assert!(
        report.certificate.feasible,
        "budgets verified by the report"
    );
    let alloc = report.solution.as_matching().expect("matching");

    println!("\nallocation (Thm D.3, epsilon = {eps}):");
    println!(
        "  {} placements booked, total value ${:.2}",
        alloc.matching.len(),
        alloc.weight
    );
    println!(
        "  certified ratio {:.3} (theory: 3 - 2/b + 2e = {:.2})",
        report.certificate.certified_ratio.unwrap_or(f64::NAN),
        multiplier
    );
    println!(
        "  {} sampling iterations, {} MapReduce rounds, peak machine {} words",
        alloc.iterations,
        report.rounds(),
        report.peak_words()
    );

    // Per-advertiser fill-rate summary.
    let mut sold = vec![0u32; g.n()];
    for &e in &alloc.matching {
        let edge = g.edge(e);
        sold[edge.u as usize] += 1;
        sold[edge.v as usize] += 1;
    }
    let filled: u32 = sold[..advertisers].iter().sum();
    let exhausted = (0..advertisers).filter(|&a| sold[a] == b[a]).count();
    println!("\nfill: {filled}/{budget_total} budgeted slots sold; {exhausted}/{advertisers} advertisers fully served");

    // Slot-side: how many slots sold.
    let slots_sold = (advertisers..g.n()).filter(|&s| sold[s] > 0).count();
    println!("      {slots_sold}/{slots} slots carry an ad");
}
