//! Exam timetabling as vertex colouring (Section 6).
//!
//! Courses that share a student cannot sit their exams in the same slot:
//! colour the conflict graph, one colour per slot. The paper's Algorithm 5
//! uses `(1 + o(1))Δ` colours in O(1) MapReduce rounds; the sequential
//! greedy baseline uses ≤ Δ+1 colours but is inherently sequential. The
//! example also colours the *invigilator* assignment as an edge colouring
//! (Remark 6.5): each pairwise conflict gets a distinct auditor slot among
//! those shared by its two courses.
//!
//! Run with: `cargo run --release --example exam_scheduling`

use mrlr::core::colouring::{colour_budget, group_count};
use mrlr::core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr::core::mr::MrConfig;
use mrlr::core::seq::greedy_colouring;
use mrlr::core::verify;
use mrlr::graph::generators;

fn main() {
    // Conflict graph: 400 courses; a heavy-tailed enrollment pattern makes
    // conflicts power-law distributed (popular intro courses conflict with
    // everything) — the Chung–Lu family from the paper's "social network"
    // motivation.
    let n = 400usize;
    let m = 10_000usize;
    let g = generators::chung_lu(n, m, 2.5, 19);
    let delta = g.max_degree();
    println!(
        "conflict graph: {n} courses, {m} conflicts, max conflicts per course Delta = {delta}"
    );

    let mu = 0.1;
    let kappa = group_count(g.n(), g.m(), mu).max(1);
    let cfg = MrConfig::auto(n, g.m(), mu, 5);
    let (timetable, metrics) = mr_vertex_colouring(&g, kappa, None, cfg).expect("timetable");
    assert!(verify::is_proper_colouring(&g, &timetable.colours));
    println!("\ntimetable (Alg 5 / Thm 6.4, kappa = {kappa} random groups):");
    println!(
        "  {} exam slots used (Delta = {delta}; (1+o(1))Delta budget = {:.0})",
        timetable.num_colours,
        colour_budget(n, delta, mu)
    );
    println!("  {} MapReduce rounds — constant, by Theorem 6.4", metrics.rounds);

    // Slot occupancy histogram (how many exams share each slot).
    let mut per_slot = vec![0usize; timetable.num_colours];
    for &c in &timetable.colours {
        per_slot[c as usize] += 1;
    }
    let busiest = per_slot.iter().copied().max().unwrap_or(0);
    println!("  busiest slot hosts {busiest} exams; mean {:.1}", n as f64 / timetable.num_colours as f64);

    // Sequential greedy baseline: fewer colours, but Θ(n) sequential steps.
    let greedy = greedy_colouring(&g);
    assert!(verify::is_proper_colouring(&g, &greedy.colours));
    println!(
        "\nsequential greedy baseline: {} slots (<= Delta+1 = {}), but one vertex at a time",
        greedy.num_colours,
        delta + 1
    );

    // Invigilator assignment: proper edge colouring (Rem 6.5 / Thm 6.6).
    let cfg = MrConfig::auto(n, g.m(), mu, 7);
    let (audit, metrics) = mr_edge_colouring(&g, kappa, None, cfg).expect("edge colouring");
    assert!(verify::is_proper_edge_colouring(&g, &audit.colours));
    println!(
        "\ninvigilation (edge colouring): {} auditor pools for {m} pairwise conflicts, {} rounds",
        audit.num_colours, metrics.rounds
    );
}
