//! Exam timetabling as vertex colouring (Section 6), through the unified
//! [`Registry`] API.
//!
//! Courses that share a student cannot sit their exams in the same slot:
//! colour the conflict graph, one colour per slot. The paper's Algorithm 5
//! uses `(1 + o(1))Δ` colours in O(1) MapReduce rounds; the sequential
//! greedy baseline (the same driver's `Seq` backend) uses ≤ Δ+1 colours
//! but is inherently sequential. The example also colours the
//! *invigilator* assignment as an edge colouring (Remark 6.5): each
//! pairwise conflict gets a distinct auditor slot among those shared by
//! its two courses.
//!
//! Run with: `cargo run --release --example exam_scheduling`

use mrlr::core::api::{Backend, Instance, Registry};
use mrlr::core::colouring::{colour_budget, group_count};
use mrlr::core::mr::MrConfig;
use mrlr::graph::generators;

fn main() {
    // Conflict graph: 400 courses; a heavy-tailed enrollment pattern makes
    // conflicts power-law distributed (popular intro courses conflict with
    // everything) — the Chung–Lu family from the paper's "social network"
    // motivation.
    let n = 400usize;
    let m = 10_000usize;
    let g = generators::chung_lu(n, m, 2.5, 19);
    let delta = g.max_degree();
    println!(
        "conflict graph: {n} courses, {m} conflicts, max conflicts per course Delta = {delta}"
    );

    let registry = Registry::with_defaults();
    let mu = 0.1;
    let kappa = group_count(g.n(), g.m(), mu).max(1);
    let cfg = MrConfig::auto(n, g.m(), mu, 5);
    let instance = Instance::Graph(g.clone());
    let report = registry
        .solve("vertex-colouring", &instance, &cfg)
        .expect("timetable");
    assert!(
        report.certificate.feasible,
        "properness verified by the report"
    );
    let timetable = report.solution.as_colouring().expect("colouring");
    println!("\ntimetable (Alg 5 / Thm 6.4, kappa = {kappa} random groups):");
    println!(
        "  {} exam slots used (Delta = {delta}; (1+o(1))Delta budget = {:.0})",
        timetable.num_colours,
        colour_budget(n, delta, mu)
    );
    println!(
        "  {} MapReduce rounds — constant, by Theorem 6.4",
        report.rounds()
    );

    // Slot occupancy histogram (how many exams share each slot).
    let mut per_slot = vec![0usize; timetable.num_colours];
    for &c in &timetable.colours {
        per_slot[c as usize] += 1;
    }
    let busiest = per_slot.iter().copied().max().unwrap_or(0);
    println!(
        "  busiest slot hosts {busiest} exams; mean {:.1}",
        n as f64 / timetable.num_colours as f64
    );

    // Sequential greedy baseline — the same registry key, Seq backend:
    // fewer colours, but Θ(n) sequential steps.
    let greedy = registry
        .solve_with("vertex-colouring", Backend::Seq, &instance, &cfg)
        .expect("greedy");
    assert!(greedy.certificate.feasible);
    println!(
        "\nsequential greedy baseline (Seq backend): {} slots (<= Delta+1 = {}), but one vertex at a time",
        greedy.solution.as_colouring().expect("colouring").num_colours,
        delta + 1
    );

    // Invigilator assignment: proper edge colouring (Rem 6.5 / Thm 6.6).
    let cfg = MrConfig::auto(n, g.m(), mu, 7);
    let report = registry
        .solve("edge-colouring", &instance, &cfg)
        .expect("edge colouring");
    assert!(report.certificate.feasible);
    println!(
        "\ninvigilation (edge colouring): {} auditor pools for {m} pairwise conflicts, {} rounds",
        report
            .solution
            .as_colouring()
            .expect("colouring")
            .num_colours,
        report.rounds()
    );
}
