//! Social-network pipeline: the workloads the paper's introduction
//! motivates — community-ish power-law graphs processed with maximal
//! independent set (hungry greedy, Algorithm 6), `(1+o(1))Δ` vertex
//! colouring (Algorithm 5), and weighted matching (Algorithm 4), all
//! dispatched through the unified [`Registry`] API.
//!
//! Run with: `cargo run --release --example social_network`

use mrlr::baselines::luby_mis;
use mrlr::core::api::{Instance, Registry};
use mrlr::core::colouring::{colour_budget, group_count};
use mrlr::core::mr::MrConfig;
use mrlr::graph::{clustering_coefficient, degree_assortativity, degree_stats, generators};

fn main() {
    // A Chung–Lu power-law graph: heavy-tailed degrees, like the social
    // graphs of Leskovec et al. that motivate the m = n^{1+c} regime.
    let n = 500;
    let m = 6000;
    let g = generators::chung_lu(n, m, 2.5, 11);
    let stats = degree_stats(&g);
    println!(
        "social graph: n = {n}, m = {m}, degrees: max {} mean {:.1} (power law gamma = 2.5)",
        stats.max, stats.mean
    );
    println!(
        "structure: clustering coefficient {:.4}, degree assortativity {:.3}",
        clustering_coefficient(&g),
        degree_assortativity(&g)
    );

    let mu = 0.3;
    let cfg = MrConfig::auto(n, g.m(), mu, 99);
    println!(
        "cluster: {} machines x {} words, eta = {}\n",
        cfg.machines, cfg.capacity, cfg.eta
    );
    let registry = Registry::with_defaults();

    // --- Maximal independent set: a spam-free "representative" set ---
    let report = registry
        .solve("mis2", &Instance::Graph(g.clone()), &cfg)
        .expect("mis");
    assert!(
        report.certificate.feasible,
        "maximality verified by the report"
    );
    let mis = report.solution.as_selection().expect("selection");
    let luby = luby_mis(&g, 99);
    println!("representatives (MIS, Alg 6 / Thm A.3):");
    println!(
        "  |I| = {} in {} hungry-greedy iterations ({} MapReduce rounds)",
        mis.vertices.len(),
        mis.iterations,
        report.rounds()
    );
    println!(
        "  Luby's PRAM baseline needs {} synchronous rounds\n",
        luby.rounds
    );

    // --- Vertex colouring: frequency assignment / scheduling ---
    let report = registry
        .solve("vertex-colouring", &Instance::Graph(g.clone()), &cfg)
        .expect("colouring");
    assert!(report.certificate.feasible);
    let colouring = report.solution.as_colouring().expect("colouring");
    println!("schedule (vertex colouring, Alg 5 / Thm 6.4):");
    println!(
        "  {} colours across {} random groups (Delta = {}, (1+o(1))Delta budget {:.0})",
        colouring.num_colours,
        group_count(n, g.m(), mu),
        g.max_degree(),
        colour_budget(n, g.max_degree(), mu)
    );
    println!(
        "  {} MapReduce rounds (constant by Thm 6.4)\n",
        report.rounds()
    );

    // --- Weighted matching: pairing users by affinity ---
    let weighted = generators::with_uniform_weights(&g, 0.5, 5.0, 7);
    let report = registry
        .solve("matching", &Instance::Graph(weighted), &cfg)
        .expect("matching");
    assert!(report.certificate.feasible);
    let matching = report.solution.as_matching().expect("matching");
    println!("affinity pairing (matching, Alg 4 / Thm 5.6):");
    println!(
        "  {} pairs, total affinity {:.1}, certified within {:.3} of optimal",
        matching.matching.len(),
        matching.weight,
        report.certificate.certified_ratio.unwrap_or(f64::NAN)
    );
    println!(
        "  {} iterations, {} MapReduce rounds",
        matching.iterations,
        report.rounds()
    );
}
