//! Representative-subset selection ("selecting representative subsets" from
//! the paper's introduction) as weighted set cover, solved with **both** of
//! the paper's techniques through the unified [`Registry`] API and compared
//! against Chvátal's sequential greedy (the same driver's `Seq` backend):
//!
//! * Algorithm 1 — randomized local ratio, `f`-approximation (Theorem 2.4);
//! * Algorithm 3 — hungry greedy, `(1+ε) ln Δ`-approximation (Theorem 4.6).
//!
//! Run with: `cargo run --release --example coverage_catalog`

use mrlr::core::api::{Backend, Instance, Registry, DEFAULT_GREEDY_SC_EPS};
use mrlr::core::mr::MrConfig;
use mrlr::core::seq::harmonic;
use mrlr::setsys::generators as setgen;

fn main() {
    let registry = Registry::with_defaults();

    // Regime 1 (n << m): few "catalogues", many items; every item appears
    // in at most f = 3 catalogues. Algorithm 1's home turf.
    let n_sets = 250;
    let m_items = 4000;
    let sys = setgen::with_uniform_weights(
        setgen::bounded_frequency(n_sets, m_items, 3, 5),
        1.0,
        20.0,
        6,
    );
    println!(
        "catalogue instance A: {} catalogues, {} items, max frequency f = {}",
        n_sets,
        m_items,
        sys.max_frequency()
    );
    let f = sys.max_frequency();
    let cfg = MrConfig::auto(n_sets, m_items, 0.3, 123);
    let report = registry
        .solve("set-cover-f", &Instance::SetSystem(sys), &cfg)
        .expect("set cover f");
    assert!(
        report.certificate.feasible,
        "coverage verified by the report"
    );
    let cover = report.solution.as_cover().expect("cover");
    println!("  Algorithm 1 (f-approx, Thm 2.4, registry key \"set-cover-f\"):");
    println!(
        "    picked {} catalogues, weight {:.1}, certified ratio {:.3} (theory f = {f})",
        cover.cover.len(),
        cover.weight,
        report.certificate.certified_ratio.unwrap_or(f64::NAN),
    );
    println!(
        "    {} sampling iterations, {} MapReduce rounds\n",
        cover.iterations,
        report.rounds()
    );

    // Regime 2 (m << n): huge pool of candidate summaries over a small
    // universe; set sizes at most Delta. Algorithm 3's home turf.
    let universe = 250;
    let pool = 3000;
    let delta = 25;
    let sys2 = setgen::with_uniform_weights(
        setgen::bounded_set_size(pool, universe, delta, 9),
        1.0,
        20.0,
        10,
    );
    println!(
        "catalogue instance B: {} candidate summaries over {} topics, Delta = {}",
        pool,
        universe,
        sys2.max_set_size()
    );
    let bound = (1.0 + DEFAULT_GREEDY_SC_EPS) * harmonic(sys2.max_set_size());
    let cfg2 = MrConfig::auto(universe, sys2.total_size(), 0.4, 77);
    let instance2 = Instance::SetSystem(sys2);
    let report2 = registry
        .solve("set-cover-greedy", &instance2, &cfg2)
        .expect("hungry sc");
    assert!(report2.certificate.feasible);
    let cover2 = report2.solution.as_cover().expect("cover");
    println!("  Algorithm 3 ((1+e)lnD, Thm 4.6, registry key \"set-cover-greedy\"):");
    println!(
        "    picked {} summaries, weight {:.1}, certified ratio {:.3} (theory {:.2})",
        cover2.cover.len(),
        cover2.weight,
        report2.certificate.certified_ratio.unwrap_or(f64::NAN),
        bound
    );
    println!(
        "    {} inner rounds, {} MapReduce rounds",
        cover2.iterations,
        report2.rounds()
    );

    // Sequential reference: the same driver's Seq backend runs Chvátal's
    // greedy, which pays the H_Delta-style guarantee in as many inherently
    // sequential steps as sets chosen.
    let greedy = registry
        .solve_with("set-cover-greedy", Backend::Seq, &instance2, &cfg2)
        .expect("greedy");
    let gcover = greedy.solution.as_cover().expect("cover");
    println!(
        "    Chvatal greedy (Seq backend): weight {:.1} in {} inherently sequential steps",
        gcover.weight, gcover.iterations
    );
}
