//! Representative-subset selection ("selecting representative subsets" from
//! the paper's introduction) as weighted set cover, solved with **both** of
//! the paper's techniques and compared against Chvátal's sequential greedy:
//!
//! * Algorithm 1 — randomized local ratio, `f`-approximation (Theorem 2.4);
//! * Algorithm 3 — hungry greedy, `(1+ε) ln Δ`-approximation (Theorem 4.6).
//!
//! Run with: `cargo run --release --example coverage_catalog`

use mrlr::core::hungry::HungryScParams;
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::seq::{greedy_set_cover, harmonic};
use mrlr::setsys::generators as setgen;

fn main() {
    // Regime 1 (n << m): few "catalogues", many items; every item appears
    // in at most f = 3 catalogues. Algorithm 1's home turf.
    let n_sets = 250;
    let m_items = 4000;
    let sys = setgen::with_uniform_weights(
        setgen::bounded_frequency(n_sets, m_items, 3, 5),
        1.0,
        20.0,
        6,
    );
    println!(
        "catalogue instance A: {} catalogues, {} items, max frequency f = {}",
        n_sets,
        m_items,
        sys.max_frequency()
    );
    let cfg = MrConfig::auto(n_sets, m_items, 0.3, 123);
    let (cover, metrics) = mr_set_cover_f(&sys, cfg).expect("set cover f");
    assert!(sys.covers(&cover.cover));
    println!("  Algorithm 1 (f-approx, Thm 2.4):");
    println!(
        "    picked {} catalogues, weight {:.1}, certified ratio {:.3} (theory f = {})",
        cover.cover.len(),
        cover.weight,
        cover.certified_ratio(),
        sys.max_frequency()
    );
    println!(
        "    {} sampling iterations, {} MapReduce rounds\n",
        cover.iterations, metrics.rounds
    );

    // Regime 2 (m << n): huge pool of candidate summaries over a small
    // universe; set sizes at most Delta. Algorithm 3's home turf.
    let universe = 250;
    let pool = 3000;
    let delta = 25;
    let sys2 = setgen::with_uniform_weights(
        setgen::bounded_set_size(pool, universe, delta, 9),
        1.0,
        20.0,
        10,
    );
    println!(
        "catalogue instance B: {} candidate summaries over {} topics, Delta = {}",
        pool,
        universe,
        sys2.max_set_size()
    );
    let eps = 0.2;
    let params = HungryScParams::new(universe, 0.4, eps, 77);
    let cfg2 = MrConfig::auto(universe, sys2.total_size(), 0.4, 77);
    let (cover2, trace, metrics2) = mr_hungry_set_cover(&sys2, params, cfg2).expect("hungry sc");
    assert!(sys2.covers(&cover2.cover));
    let bound = (1.0 + eps) * harmonic(sys2.max_set_size());
    println!("  Algorithm 3 ((1+e)lnD, Thm 4.6):");
    println!(
        "    picked {} summaries, weight {:.1}, certified ratio {:.3} (theory {:.2})",
        cover2.cover.len(),
        cover2.weight,
        cover2.certified_ratio(),
        bound
    );
    println!(
        "    {} inner rounds over {} cost-ratio levels, {} MapReduce rounds",
        cover2.iterations, trace.levels, metrics2.rounds
    );

    // Sequential reference: Chvátal's greedy pays the same H_Delta-style
    // guarantee but needs as many sequential steps as sets chosen.
    let greedy = greedy_set_cover(&sys2).expect("greedy");
    println!(
        "    Chvatal greedy (sequential): weight {:.1} in {} inherently sequential steps",
        greedy.weight, greedy.iterations
    );
}
