//! The canonical MapReduce job — word count — on the metered cluster
//! simulator, demonstrating the Karloff-et-al. key-value interface
//! (Section 1.3 of the paper) and the metrics the model charges.
//!
//! Run with: `cargo run --release --example cluster_wordcount`

use mrlr::mapreduce::cluster::ClusterConfig;
use mrlr::mapreduce::job::{partition_by_hash, Emitter, MapReduceJob};

fn main() {
    // A synthetic corpus with a skewed word distribution.
    let corpus: Vec<String> = (0..5000)
        .map(|i| {
            format!(
                "the quick fox{} jumps over dog{} and cat{}",
                i % 97,
                i % 13,
                i % 7
            )
        })
        .collect();
    println!("corpus: {} documents", corpus.len());

    let machines = 16;
    let job = MapReduceJob::new(
        |doc: &String, em: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                em.emit(w.to_string(), 1);
            }
        },
        |word: &String, counts: Vec<u64>| vec![(word.clone(), counts.iter().sum::<u64>())],
    );
    let inputs = partition_by_hash(corpus, machines, 42);
    let (outputs, metrics) = job
        .run(ClusterConfig::new(machines, 1 << 20), inputs)
        .expect("word count");

    let mut all: Vec<(String, u64)> = outputs.into_iter().flatten().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top words:");
    for (word, count) in all.iter().take(8) {
        println!("  {word:<10} {count}");
    }
    println!("\ncluster metrics:\n{metrics}");
}
