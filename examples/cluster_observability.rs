//! Cluster observability: per-round traces, model audits and fault pricing.
//!
//! Runs the weighted-matching algorithm, then exercises the simulator's
//! observability surface: the per-round [`Timeline`] (ASCII + CSV), the
//! per-superstep wall-clock/straggler trace recorded by the executor, the
//! MRC/MPC model audit of the cluster shape, and the crash/straggler cost
//! model that prices a fault plan against the completed run.
//!
//! Run with: `cargo run --release --example cluster_observability`
//! (set `MRLR_THREADS=4` to watch the same run under the thread pool —
//! identical timeline and metrics, different wall-clock trace).

use mrlr::core::api::{Instance, Registry};
use mrlr::core::mr::MrConfig;
use mrlr::graph::generators;
use mrlr::mapreduce::faults::{apply, apply_measured, FaultPlan};
use mrlr::mapreduce::trace::Timeline;
use mrlr::mapreduce::ComputeModel;

fn main() {
    // Large enough that machine memory (η = n^{1+µ} with a small µ) is
    // genuinely sublinear in the input — the audit below checks exactly
    // that — and the sampling loop runs for several real iterations.
    let n = 2000usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 3), 1.0, 10.0, 4);
    let cfg = MrConfig::auto(n, g.m(), 0.05, 42);
    let report = Registry::with_defaults()
        .solve("matching", &Instance::Graph(g.clone()), &cfg)
        .expect("matching");
    let result = report.solution.as_matching().expect("matching");
    let metrics = report.metrics.expect("Mr backend meters");
    println!(
        "matching: {} edges, weight {:.1}, {} iterations\n",
        result.matching.len(),
        result.weight,
        result.iterations
    );

    // --- Per-round timeline ---
    let timeline = Timeline::from_metrics(&metrics);
    println!(
        "timeline ({} rounds, {} words moved):",
        timeline.len(),
        timeline.total_words()
    );
    print!("{}", timeline.render_ascii(40));
    if let Some(busy) = timeline.busiest_round() {
        println!(
            "busiest: round {} ({}, {} words)\n",
            busy.round, busy.kind, busy.total
        );
    }
    println!("per-kind summary:");
    for k in timeline.summary_by_kind() {
        println!(
            "  {:<9} {:>3} rounds {:>9} words",
            k.kind.to_string(),
            k.rounds,
            k.words
        );
    }
    println!("\nfirst CSV rows (feed to any plotting tool):");
    for line in timeline.to_csv().lines().take(4) {
        println!("  {line}");
    }

    // --- Wall-clock / straggler trace (host time, not model rounds) ---
    println!(
        "\nexecutor wall-clock: {} passes, {:.2} ms total, worst straggler skew {:.2}",
        timeline.timings().len(),
        timeline.total_wall_nanos() as f64 / 1e6,
        timeline.max_straggler_skew()
    );
    println!("slowest executor passes (superstep, wall, skew):");
    let mut slowest: Vec<_> = timeline.timings().to_vec();
    slowest.sort_by_key(|t| std::cmp::Reverse(t.wall_nanos));
    for t in slowest.iter().take(3) {
        println!(
            "  superstep {:>3}: {:>9}ns over {} machines, skew {:.2}",
            t.superstep,
            t.wall_nanos,
            t.tasks,
            t.skew()
        );
    }

    // --- Model audit ---
    let input_words = 3 * g.m() + g.n();
    for (name, model) in [
        ("MPC (slack 64)", ComputeModel::Mpc { slack: 64.0 }),
        (
            "MRC (delta 0.2, slack 64)",
            ComputeModel::Mrc {
                delta: 0.2,
                slack: 64.0,
            },
        ),
    ] {
        let check = model.check(input_words, &cfg.cluster());
        println!(
            "\n{name} audit: {} (allowed capacity {} words, cluster uses {})",
            if check.ok { "conformant" } else { "VIOLATIONS" },
            check.allowed_capacity,
            cfg.capacity
        );
        for v in &check.violations {
            println!("  - {v}");
        }
    }

    // --- Fault pricing ---
    println!("\nfault pricing (crash 5%, straggle 10% at 3x per machine-round):");
    let plan = FaultPlan::random(metrics.machines, metrics.rounds, 0.05, 0.10, 3.0, 7);
    let priced = apply(&metrics, &plan);
    println!(
        "  {} crashes, {} stragglers over {} machine-rounds",
        priced.crashes_applied,
        priced.stragglers_applied,
        metrics.machines * metrics.rounds
    );
    println!(
        "  rounds {} -> {} (+{} re-executions), makespan {:.1} round-units ({:.2}x slowdown)",
        priced.base_rounds,
        priced.effective_rounds,
        priced.redo_rounds,
        priced.makespan,
        priced.slowdown_factor()
    );
    println!("  (outputs are unchanged by faults: shuffle files are durable — the MapReduce recovery contract)");

    // Same plan, but stragglers priced from the run's *measured*
    // per-superstep skew instead of the synthetic 3x multiplier (which
    // remains the fallback when timings are masked).
    let empirical = apply_measured(&metrics, &plan);
    println!(
        "  measured-skew pricing: makespan {:.1} round-units ({} of {} stragglers priced \
         from observed skew, {} synthetic fallbacks, worst observed {:.2}x)",
        empirical.report.makespan,
        empirical.report.stragglers_measured,
        empirical.report.stragglers_applied,
        empirical.fallbacks().count(),
        metrics.max_straggler_skew(),
    );
}
