//! Quickstart: run the paper's two headline algorithms — 2-approximate
//! weighted vertex cover (Theorem 2.4) and 2-approximate weighted matching
//! (Theorem 5.6) — through the unified [`Registry`] API, and inspect the
//! uniform [`Report`] the theorems bound.
//!
//! Run with: `cargo run --release --example quickstart`

use mrlr::core::api::{Instance, Registry, VertexWeightedGraph};
use mrlr::core::mr::MrConfig;
use mrlr::graph::generators;
use mrlr::mapreduce::DetRng;

fn main() {
    // A graph with n = 200 vertices and m = n^{1+c} edges (c = 0.5), the
    // paper's standing density assumption, with random edge weights.
    let n = 200;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 1), 1.0, 10.0, 2);
    println!(
        "graph: n = {}, m = {} (density exponent c = {:.2}), Delta = {}",
        g.n(),
        g.m(),
        g.density_exponent(),
        g.max_degree()
    );

    // Cluster regime: machine memory eta = n^{1+mu} words, mu = 0.25.
    let cfg = MrConfig::auto(n, g.m(), 0.25, 42);
    println!(
        "cluster: {} machines x {} words (eta = {}), broadcast fan-out {}\n",
        cfg.machines, cfg.capacity, cfg.eta, cfg.fanout
    );

    // Every algorithm is one registry key; `solve` returns a uniform
    // report: solution + verification certificate + metrics + timing.
    let registry = Registry::with_defaults();

    // --- Weighted vertex cover (randomized local ratio, f = 2) ---
    let mut rng = DetRng::new(7);
    let weights: Vec<f64> = (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect();
    let instance = Instance::VertexWeighted(VertexWeightedGraph::new(g.clone(), weights));
    let report = registry
        .solve("vertex-cover", &instance, &cfg)
        .expect("vertex cover");
    let cover = report.solution.as_cover().expect("cover solution");
    assert!(
        report.certificate.feasible,
        "independently verified by the report"
    );
    println!("vertex cover (Thm 2.4, registry key \"vertex-cover\"):");
    println!(
        "  cover size {} of {} vertices, weight {:.1}",
        cover.cover.len(),
        n,
        cover.weight
    );
    println!(
        "  certified ratio {:.3} (theory: 2), {} sampling iterations, {} MapReduce rounds",
        report.certificate.certified_ratio.unwrap_or(f64::NAN),
        cover.iterations,
        report.rounds()
    );
    println!(
        "  peak machine load {} words = {:.2} x eta, solved in {:.1?}\n",
        report.peak_words(),
        report.peak_words() as f64 / cfg.eta as f64,
        report.wall
    );

    // --- Weighted matching (randomized local ratio) ---
    let report = registry
        .solve("matching", &Instance::Graph(g), &cfg)
        .expect("matching");
    let matching = report.solution.as_matching().expect("matching solution");
    assert!(report.certificate.feasible);
    let metrics = report.metrics.as_ref().expect("Mr backend meters");
    println!("maximum weight matching (Thm 5.6, registry key \"matching\"):");
    println!(
        "  {} edges, weight {:.1}, certified ratio {:.3} (theory: 2)",
        matching.matching.len(),
        matching.weight,
        report.certificate.certified_ratio.unwrap_or(f64::NAN)
    );
    println!(
        "  {} sampling iterations, {} MapReduce rounds, {} words communicated",
        matching.iterations, metrics.rounds, metrics.total_message_words
    );

    // The same driver is available on the in-memory backends too:
    // `Backend::Rlr` (bit-identical solution, no cluster) and
    // `Backend::Seq` (deterministic reference). See `Registry::solve_with`.
    println!("\nregistered algorithms: {:?}", registry.algorithms());
}
