//! Quickstart: run the paper's two headline algorithms — 2-approximate
//! weighted vertex cover (Theorem 2.4) and 2-approximate weighted matching
//! (Theorem 5.6) — on a simulated MapReduce cluster, and inspect the
//! metrics the theorems bound.
//!
//! Run with: `cargo run --release --example quickstart`

use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::verify;
use mrlr::graph::generators;
use mrlr::mapreduce::DetRng;

fn main() {
    // A graph with n = 200 vertices and m = n^{1+c} edges (c = 0.5), the
    // paper's standing density assumption, with random edge weights.
    let n = 200;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 1), 1.0, 10.0, 2);
    println!(
        "graph: n = {}, m = {} (density exponent c = {:.2}), Delta = {}",
        g.n(),
        g.m(),
        g.density_exponent(),
        g.max_degree()
    );

    // Cluster shape: machine memory eta = n^{1+mu} words, mu = 0.25.
    let cfg = MrConfig::auto(n, g.m(), 0.25, 42);
    println!(
        "cluster: {} machines x {} words (eta = {}), broadcast fan-out {}\n",
        cfg.machines, cfg.capacity, cfg.eta, cfg.fanout
    );

    // --- Weighted vertex cover (randomized local ratio, f = 2) ---
    let mut rng = DetRng::new(7);
    let weights: Vec<f64> = (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect();
    let (cover, metrics) = mr_vertex_cover(&g, &weights, cfg).expect("vertex cover");
    assert!(verify::is_vertex_cover(&g, &cover.cover));
    println!("vertex cover (Thm 2.4):");
    println!("  cover size {} of {} vertices, weight {:.1}", cover.cover.len(), n, cover.weight);
    println!(
        "  certified ratio {:.3} (theory: 2), {} sampling iterations, {} MapReduce rounds",
        cover.certified_ratio(),
        cover.iterations,
        metrics.rounds
    );
    println!(
        "  peak machine load {} words = {:.2} x eta\n",
        metrics.peak_machine_words,
        metrics.peak_machine_words as f64 / cfg.eta as f64
    );

    // --- Weighted matching (randomized local ratio) ---
    let (matching, metrics) = mr_matching(&g, cfg).expect("matching");
    assert!(verify::is_matching(&g, &matching.matching));
    println!("maximum weight matching (Thm 5.6):");
    println!(
        "  {} edges, weight {:.1}, certified ratio {:.3} (theory: 2)",
        matching.matching.len(),
        matching.weight,
        matching.certified_ratio(2.0)
    );
    println!(
        "  {} sampling iterations, {} MapReduce rounds, {} words communicated",
        matching.iterations, metrics.rounds, metrics.total_message_words
    );
}
