//! Round-complexity assertions: the paper's headline claims, as tests.
//!
//! Figure 1 promises `O(c/µ)` rounds for the randomized local ratio
//! algorithms, `O(c/µ)` for hungry-greedy MIS (Algorithm 6), `O(log n)`
//! iterations for matching at `µ = 0` (Theorem C.2) and `O(1)` rounds for
//! colouring (Theorems 6.4/6.6). These tests run parameter sweeps and
//! assert the measured iteration/round counts against the theory formulas
//! with generous constants — the point is the *growth shape*, not the
//! constant.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::colouring::group_count;
use mrlr::core::hungry::{mis_fast, MisParams};
use mrlr::core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::{approx_max_matching, approx_set_cover_f, predicted_rounds};
use mrlr::graph::generators;
use mrlr::setsys::generators as setgen;

/// Density exponent of a generated graph (measured, not nominal).
fn measured_c(n: usize, m: usize) -> f64 {
    (m as f64).ln() / (n as f64).ln() - 1.0
}

#[test]
fn set_cover_iterations_scale_as_c_over_mu() {
    // Theorem 2.3: with η = n^{1+µ} and m ≤ n^{1+c}, Algorithm 1 finishes
    // within ⌈c/µ⌉ (+1 for the final p = 1 pass) iterations w.h.p.
    for &(n_sets, c) in &[(50usize, 0.4f64), (80, 0.5)] {
        let m = (n_sets as f64).powf(1.0 + c).round() as usize;
        for &mu in &[0.2f64, 0.35] {
            let sys = setgen::bounded_frequency(n_sets, m, 3, 11);
            let eta = (n_sets as f64).powf(1.0 + mu).ceil() as usize;
            let r = approx_set_cover_f(&sys, eta, 11).unwrap();
            let bound = (c / mu).ceil() as usize + 2;
            assert!(
                r.iterations <= bound,
                "n={n_sets} c={c} mu={mu}: {} iterations > bound {bound}",
                r.iterations
            );
            // The paper's own prediction formula should agree.
            assert!(r.iterations <= predicted_rounds(n_sets, m, eta) + 2);
        }
    }
}

#[test]
fn matching_iterations_scale_as_c_over_mu() {
    // Theorem 5.5: O(c/µ) iterations with η = n^{1+µ}.
    for &n in &[60usize, 120] {
        let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 3), 1.0, 9.0, 5);
        let c = measured_c(g.n(), g.m());
        for &mu in &[0.2f64, 0.35] {
            let eta = (n as f64).powf(1.0 + mu).ceil() as usize;
            let r = approx_max_matching(&g, eta, 7).unwrap();
            let bound = (4.0 * c / mu).ceil() as usize + 6;
            assert!(
                r.iterations <= bound,
                "n={n} mu={mu}: {} iterations > bound {bound}",
                r.iterations
            );
        }
    }
}

#[test]
fn matching_mu_zero_iterations_logarithmic() {
    // Theorem C.2: with η = n the iteration count is O(log n). Measure at
    // two sizes and check both the absolute bound and that growth is far
    // slower than linear.
    let mut iters = Vec::new();
    for &n in &[50usize, 200] {
        let g = generators::with_uniform_weights(&generators::densified(n, 0.45, 9), 1.0, 5.0, 2);
        let r = approx_max_matching(&g, n, 13).unwrap();
        let bound = (20.0 * (n as f64).ln()).ceil() as usize + 10;
        assert!(r.iterations <= bound, "n={n}: {} > {bound}", r.iterations);
        iters.push(r.iterations);
    }
    // 4x the vertices must not cost anywhere near 4x the iterations.
    assert!(
        iters[1] <= iters[0].max(1) * 3,
        "iterations grew too fast: {iters:?}"
    );
}

#[test]
fn mis_fast_phases_scale_as_c_over_mu() {
    // Theorem A.3: Algorithm 6 runs O(c/µ) central iterations.
    for &n in &[80usize, 140] {
        let g = generators::densified(n, 0.45, 17);
        let c = measured_c(g.n(), g.m());
        for &mu in &[0.25f64, 0.4] {
            let r = mis_fast(&g, MisParams::mis2(n, mu, 3)).unwrap();
            let bound = (16.0 * c / mu).ceil() as usize + 6;
            assert!(
                r.iterations <= bound,
                "n={n} mu={mu}: {} iterations > bound {bound}",
                r.iterations
            );
        }
    }
}

#[test]
fn colouring_rounds_are_constant_in_n() {
    // Theorems 6.4/6.6: O(1) MapReduce rounds. Measure the full round count
    // (including broadcast-tree hops) at two sizes; it must stay under a
    // fixed constant and not grow with n.
    let mut vertex_rounds = Vec::new();
    let mut edge_rounds = Vec::new();
    for &n in &[70usize, 140] {
        let g = generators::densified(n, 0.5, 21);
        let mu = 0.3;
        let kappa = group_count(g.n(), g.m(), mu).max(1);
        let cfg = MrConfig::auto(n, g.m(), mu, 9);
        let (res, metrics) = mr_vertex_colouring(&g, kappa, None, cfg).unwrap();
        assert!(res.num_colours >= 1);
        vertex_rounds.push(metrics.rounds);
        let cfg = MrConfig::auto(n, g.m(), mu, 9);
        let (_, metrics) = mr_edge_colouring(&g, kappa, None, cfg).unwrap();
        edge_rounds.push(metrics.rounds);
    }
    for &r in vertex_rounds.iter().chain(&edge_rounds) {
        assert!(r <= 24, "colouring took {r} rounds; expected O(1)");
    }
    // Doubling n must not double the rounds.
    assert!(
        vertex_rounds[1] <= vertex_rounds[0] + 6,
        "{vertex_rounds:?}"
    );
    assert!(edge_rounds[1] <= edge_rounds[0] + 6, "{edge_rounds:?}");
}

#[test]
fn smaller_mu_means_more_iterations() {
    // The c/µ shape from the other side: shrinking µ (less memory) must not
    // shrink the iteration count, and should typically grow it.
    let n = 100usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 31), 1.0, 9.0, 8);
    let eta_hi = (n as f64).powf(1.35).ceil() as usize;
    let eta_lo = (n as f64).powf(1.05).ceil() as usize;
    let hi = approx_max_matching(&g, eta_hi, 3).unwrap();
    let lo = approx_max_matching(&g, eta_lo, 3).unwrap();
    assert!(
        lo.iterations >= hi.iterations,
        "eta {eta_lo} gave {} iterations, eta {eta_hi} gave {}",
        lo.iterations,
        hi.iterations
    );
}
