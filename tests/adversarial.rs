//! Adversarial-instance tests: families constructed to sit at the *edge* of
//! each guarantee — the tight instance where the f-approximation pays
//! exactly `f`, the greedy trap where H_Δ is real, hub graphs where
//! degree-oblivious sampling struggles, planted cliques, and the
//! cross-checks between independent code paths (vertex cover vs the f = 2
//! set-cover view; edge colouring vs vertex-colouring the line graph).
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::hungry::{maximal_clique, MisParams};
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::{approx_max_matching, approx_set_cover_f};
use mrlr::core::seq::{
    greedy_colouring, greedy_set_cover, local_ratio_set_cover, misra_gries_edge_colouring,
};
use mrlr::core::verify;
use mrlr::graph::{generators, line_graph};
use mrlr::setsys::generators as setgen;
use mrlr::setsys::SetSystem;

/// On the tight-f instance the local ratio method takes *every* copy of the
/// universe: the certified ratio meets its bound with equality.
#[test]
fn tight_f_instance_realizes_the_f_ratio() {
    for f in [2usize, 3, 5] {
        let sys = setgen::tight_f_instance(12, f);
        let r = local_ratio_set_cover(&sys).unwrap();
        assert_eq!(r.cover.len(), f, "all {f} copies taken");
        assert!((r.weight - f as f64).abs() < 1e-9);
        // OPT = 1 (any single copy), so the realized ratio is exactly f.
        assert!((r.certified_ratio() - f as f64).abs() < 1e-9);
        // The randomized variant inherits the same behaviour.
        let rr = approx_set_cover_f(&sys, 4, 7).unwrap();
        assert_eq!(rr.cover.len(), f);
    }
}

/// The greedy trap: greedy pays ~H_m while local ratio pays ≤ f·OPT = 2·OPT;
/// the gap must grow with m (it is Θ(log m)).
#[test]
fn greedy_trap_gap_grows_logarithmically() {
    let mut gaps = Vec::new();
    for m in [16usize, 64, 256] {
        let sys = setgen::greedy_trap(m, 0.1);
        let greedy = greedy_set_cover(&sys).unwrap();
        let lr = local_ratio_set_cover(&sys).unwrap();
        assert!(sys.covers(&greedy.cover));
        assert!(sys.covers(&lr.cover));
        gaps.push(greedy.weight / lr.weight);
    }
    assert!(gaps[0] > 1.2, "trap did not trap: {gaps:?}");
    assert!(
        gaps[2] > gaps[1] && gaps[1] > gaps[0],
        "gap not growing: {gaps:?}"
    );
}

/// The two vertex-cover code paths (the dedicated f = 2 fast path and the
/// general dual-representation driver on the set-cover view) must both be
/// feasible, 2-approximate, and of comparable quality on the same graph.
#[test]
fn vertex_cover_paths_cross_validate() {
    for seed in 0..4 {
        let g = generators::densified(50, 0.5, seed);
        let weights: Vec<f64> = (0..g.n()).map(|i| 1.0 + (i % 7) as f64).collect();
        let cfg = MrConfig::auto(50, g.m(), 0.3, seed);
        let (fast, _) = mr_vertex_cover(&g, &weights, cfg).unwrap();
        assert!(verify::is_vertex_cover(&g, &fast.cover));

        let sys = SetSystem::vertex_cover_of(&g, weights.clone());
        let cfg_sc = MrConfig::auto(50, sys.total_size(), 0.3, seed);
        let (general, _) = mr_set_cover_f(&sys, cfg_sc).unwrap();
        assert!(sys.covers(&general.cover));
        let general_weight: f64 = {
            let mut picked = vec![false; g.n()];
            let mut w = 0.0;
            for &i in &general.cover {
                if !picked[i as usize] {
                    picked[i as usize] = true;
                    w += weights[i as usize];
                }
            }
            w
        };
        // Both are 2-approximations of the same optimum, so they are within
        // a factor 2 of each other.
        assert!(
            fast.weight <= 2.0 * general_weight + 1e-9
                && general_weight <= 2.0 * fast.weight + 1e-9,
            "seed {seed}: fast {} vs general {general_weight}",
            fast.weight
        );
    }
}

/// Edge colouring G is vertex colouring L(G): Misra–Gries on G must use no
/// more colours than greedy on the explicit line graph, and both must be
/// proper under their respective views.
#[test]
fn edge_colouring_agrees_with_line_graph_view() {
    for seed in 0..4 {
        let g = generators::gnm(30, 90, seed);
        let mg = misra_gries_edge_colouring(&g);
        assert!(verify::is_proper_edge_colouring(&g, &mg.colours));
        let lg = line_graph(&g);
        let lv = greedy_colouring(&lg);
        assert!(verify::is_proper_colouring(&lg, &lv.colours));
        // An edge colouring of G *is* a vertex colouring of L(G).
        assert!(verify::is_proper_colouring(&lg, &mg.colours));
        // Vizing (≤ Δ+1) beats the line-graph greedy bound (≤ 2Δ−1).
        assert!(mg.num_colours <= g.max_degree() + 1);
        assert!(lv.num_colours <= 2 * g.max_degree());
    }
}

/// Planted cliques: the hungry-greedy maximal clique must be at least as
/// large as a planted clique when noise is low (any maximal clique that
/// intersects a planted block extends to the whole block unless noise edges
/// interfere — at 2% noise the planted blocks dominate).
#[test]
fn planted_cliques_are_found_at_low_noise() {
    for seed in 0..3 {
        let size = 10usize;
        let g = generators::planted_cliques(4, size, 0.02, seed);
        let params = MisParams::mis2(g.n(), 0.4, seed);
        let r = maximal_clique(&g, params).unwrap();
        assert!(verify::is_maximal_clique(&g, &r.vertices));
        assert!(
            r.vertices.len() >= size - 2,
            "seed {seed}: found clique of {} << planted {size}",
            r.vertices.len()
        );
    }
}

/// Hub graphs with degree-correlated weights: the heavy edges all touch the
/// hub, so a matching can take at most one of them — an adversarial shape
/// for samplers. Validity and the 2-approximation must survive.
#[test]
fn hub_graphs_do_not_break_matching() {
    for seed in 0..4 {
        // Star of stars: one global hub plus local hubs.
        let star = generators::star(40);
        let extra = generators::gnm(40, 100, seed);
        // Merge: star edges (hub structure) + random edges, dedup via map.
        let mut pairs: Vec<(u32, u32)> = star.edges().iter().map(|e| e.key()).collect();
        for e in extra.edges() {
            let k = e.key();
            if !pairs.contains(&k) {
                pairs.push(k);
            }
        }
        let g0 = mrlr::graph::Graph::from_pairs(40, &pairs);
        let g = generators::with_degree_weights(&g0, 1.0);
        let r = approx_max_matching(&g, 20, seed).unwrap();
        assert!(verify::is_matching(&g, &r.matching));
        assert!(r.certified_ratio(2.0) <= 2.0 + 1e-9);
        // The hub can be matched at most once.
        let hub_edges = r.matching.iter().filter(|&&e| g.edge(e).touches(0)).count();
        assert!(hub_edges <= 1);
    }
}

/// Interval covers: strong locality (f grows with overlap). The randomized
/// f-approximation must stay within its certified bound and the realized
/// frequency bound of the instance.
#[test]
fn interval_covers_respect_frequency_bound() {
    for seed in 0..4 {
        let sys = setgen::interval_cover(40, 200, 15, seed);
        let f = sys.max_frequency() as f64;
        let r = approx_set_cover_f(&sys, 60, seed).unwrap();
        assert!(sys.covers(&r.cover));
        assert!(r.certified_ratio() <= f + 1e-9, "seed {seed}");
    }
}
