//! Driver-level detail tests for every MapReduce implementation: metrics
//! structure invariants, degenerate instances, per-driver capacity
//! failures, single-machine behaviour and the paper's explicit guard
//! branches (the Lemma 6.2 `|E_i| > 13n^{1+µ}` edge limit, `η = 0`
//! rejection, infeasibility).
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::hungry::{HungryScParams, MisParams};
use mrlr::core::mr::bmatching::mr_b_matching;
use mrlr::core::mr::clique::mr_maximal_clique;
use mrlr::core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::mis::{mr_mis_fast, mr_mis_simple};
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::BMatchingParams;
use mrlr::graph::{generators, Graph};
use mrlr::mapreduce::{Metrics, MrError};
use mrlr::setsys::generators as setgen;
use mrlr::setsys::SetSystem;

fn structural_invariants(m: &Metrics, cfg: &MrConfig) {
    // Per-round records agree with the aggregates.
    assert_eq!(m.per_round.len(), m.rounds);
    let (ex, ga, br, ag) = m.rounds_by_kind();
    assert_eq!(ex + ga + br + ag, m.rounds);
    // Tree rounds record per-hop volume upper bounds; the aggregate total
    // is corrected to the true delivered volume, so it never exceeds the
    // per-round sum.
    let total: usize = m.per_round.iter().map(|r| r.total).sum();
    assert!(m.total_message_words <= total);
    for (i, r) in m.per_round.iter().enumerate() {
        assert_eq!(r.round, i + 1);
        assert!(r.max_out <= r.total || r.total == 0);
    }
    // Strict-mode runs never exceed capacity anywhere.
    assert!(m.peak_machine_words <= cfg.capacity);
    assert!(m.peak_central_words <= cfg.capacity);
    assert!(m.peak_out_words <= cfg.capacity);
    assert!(m.peak_in_words <= cfg.capacity);
    assert!(m.violations.is_empty(), "strict mode recorded violations");
    assert_eq!(m.machines, cfg.machines);
    assert_eq!(m.capacity, cfg.capacity);
    assert!(m.supersteps >= 1);
}

#[test]
fn metrics_invariants_hold_for_every_driver() {
    let n = 80usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 3), 1.0, 9.0, 4);
    let w: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
    let cfg = MrConfig::auto(n, g.m(), 0.3, 7);

    let (_, m) = mr_matching(&g, cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_vertex_cover(&g, &w, cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_mis_simple(&g, MisParams::mis1(n, 0.3, 7), cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_mis_fast(&g, MisParams::mis2(n, 0.3, 7), cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_maximal_clique(&g, MisParams::mis2(n, 0.3, 7), cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_vertex_colouring(&g, 3, None, cfg).unwrap();
    structural_invariants(&m, &cfg);
    let (_, m) = mr_edge_colouring(&g, 3, None, cfg).unwrap();
    structural_invariants(&m, &cfg);
    let b: Vec<u32> = vec![2; n];
    let params = BMatchingParams {
        eps: 0.25,
        n_mu: 2.0,
        eta: 300,
        seed: 7,
    };
    let (_, m) = mr_b_matching(&g, &b, params, cfg).unwrap();
    structural_invariants(&m, &cfg);

    let sys = setgen::bounded_frequency(n, 600, 3, 5);
    let cfg_sc = MrConfig::auto(n, 600, 0.3, 7);
    let (_, m) = mr_set_cover_f(&sys, cfg_sc).unwrap();
    structural_invariants(&m, &cfg_sc);

    let sys2 = setgen::bounded_set_size(300, 60, 8, 5);
    let hs = HungryScParams::new(60, 0.4, 0.2, 7);
    let cfg_h = MrConfig::auto(60, sys2.total_size(), 0.4, 7);
    let (_, _, m) = mr_hungry_set_cover(&sys2, hs, cfg_h).unwrap();
    structural_invariants(&m, &cfg_h);
}

#[test]
fn single_machine_runs_have_no_tree_hops() {
    // With one machine, broadcast/aggregation trees have depth 0: those
    // primitives cost no rounds at all.
    let n = 50usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 1), 1.0, 5.0, 2);
    let cfg = MrConfig::auto(n, g.m(), 0.3, 3).with_machines(1);
    let (_, m) = mr_matching(&g, cfg).unwrap();
    let (_, _, br, ag) = m.rounds_by_kind();
    assert_eq!(
        br + ag,
        0,
        "1-machine cluster charged {} tree rounds",
        br + ag
    );
}

#[test]
fn degenerate_instances_run_cleanly() {
    // Edgeless graph: matching/cover/MIS/colouring are all trivial.
    let g = Graph::new(10, vec![]);
    let cfg = MrConfig::auto(10, 1, 0.3, 1);
    let (r, _) = mr_matching(&g, cfg).unwrap();
    assert!(r.matching.is_empty());
    let (r, _) = mr_vertex_cover(&g, &[1.0; 10], cfg).unwrap();
    assert!(r.cover.is_empty());
    let (r, _) = mr_mis_fast(&g, MisParams::mis2(10, 0.3, 1), cfg).unwrap();
    assert_eq!(
        r.vertices.len(),
        10,
        "all isolated vertices are independent"
    );
    // Colours are (group, within-group colour) pairs, so κ groups use up
    // to κ colours even on an edgeless graph.
    let (r, _) = mr_vertex_colouring(&g, 2, None, cfg).unwrap();
    assert!(r.num_colours <= 2);
    let (r, _) = mr_edge_colouring(&g, 2, None, cfg).unwrap();
    assert_eq!(r.num_colours, 0);

    // One-edge graph.
    let g1 = Graph::from_pairs(2, &[(0, 1)]);
    let (r, _) = mr_matching(&g1, MrConfig::auto(2, 1, 0.3, 1)).unwrap();
    assert_eq!(r.matching.len(), 1);

    // Single-set cover.
    let sys = SetSystem::unit(3, vec![vec![0, 1, 2]]);
    let (r, _) = mr_set_cover_f(&sys, MrConfig::auto(1, 3, 0.3, 1)).unwrap();
    assert_eq!(r.cover, vec![0]);
}

#[test]
fn every_driver_rejects_zero_eta() {
    let g = generators::densified(20, 0.4, 1);
    let mut cfg = MrConfig::auto(20, g.m(), 0.3, 1);
    cfg.eta = 0;
    assert!(matches!(mr_matching(&g, cfg), Err(MrError::BadConfig(_))));
    assert!(matches!(
        mr_vertex_cover(&g, &[1.0; 20], cfg),
        Err(MrError::BadConfig(_))
    ));
    let sys = setgen::bounded_frequency(20, 100, 2, 1);
    assert!(matches!(
        mr_set_cover_f(&sys, cfg),
        Err(MrError::BadConfig(_))
    ));
}

#[test]
fn infeasible_cover_rejected_as_infeasible() {
    let sys = SetSystem::unit(4, vec![vec![0], vec![1]]);
    let cfg = MrConfig::auto(2, 4, 0.3, 1);
    assert!(matches!(
        mr_set_cover_f(&sys, cfg),
        Err(MrError::Infeasible(_))
    ));
}

#[test]
fn colouring_edge_limit_guard_fires() {
    // Lemma 6.2's guard: if some group receives more than the limit of
    // edges, the algorithm fails (w.h.p. it never happens at the paper's
    // parameters; with an adversarially tiny limit it must).
    let g = generators::densified(60, 0.5, 9);
    let cfg = MrConfig::auto(60, g.m(), 0.3, 9);
    let err = mr_vertex_colouring(&g, 2, Some(3), cfg).unwrap_err();
    assert!(
        matches!(err, MrError::AlgorithmFailed { .. }),
        "expected the Lemma 6.2 guard, got {err:?}"
    );
    let err = mr_edge_colouring(&g, 2, Some(3), cfg).unwrap_err();
    assert!(matches!(err, MrError::AlgorithmFailed { .. }));
    // With the paper's 13 n^{1+mu} limit the guard never fires.
    let limit = (13.0 * (60f64).powf(1.3)).ceil() as usize;
    assert!(mr_vertex_colouring(&g, 2, Some(limit), cfg).is_ok());
}

#[test]
fn capacity_failures_name_the_offending_budget() {
    let n = 70usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 5), 1.0, 9.0, 6);
    let good = MrConfig::auto(n, g.m(), 0.3, 5);
    for cap in [10usize, 100, 400] {
        let tiny = good.with_capacity(cap);
        match mr_matching(&g, tiny) {
            Err(MrError::CapacityExceeded { used, capacity, .. }) => {
                assert_eq!(capacity, cap);
                assert!(used > cap);
            }
            other => panic!("capacity {cap}: expected CapacityExceeded, got {other:?}"),
        }
    }
}

#[test]
fn more_machines_never_changes_iteration_count() {
    // Iterations are a property of the algorithm + seed, not the layout.
    let n = 90usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 2), 1.0, 9.0, 3);
    let base = MrConfig::auto(n, g.m(), 0.2, 11);
    let reference = mr_matching(&g, base).unwrap().0.iterations;
    for machines in [2usize, 5, 13] {
        let (r, _) = mr_matching(&g, base.with_machines(machines)).unwrap();
        assert_eq!(r.iterations, reference);
    }
}

#[test]
fn communication_grows_with_machines_but_rounds_stay_put() {
    // More machines = deeper broadcast trees (more rounds is allowed to a
    // point) but per-machine peaks drop; the iteration count is fixed. This
    // pins the direction of each trade-off.
    let n = 90usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 2), 1.0, 9.0, 3);
    let base = MrConfig::auto(n, g.m(), 0.2, 11);
    let (_, few) = mr_matching(&g, base.with_machines(2)).unwrap();
    let (_, many) = mr_matching(&g, base.with_machines(13)).unwrap();
    assert!(
        many.peak_machine_words <= few.peak_machine_words,
        "{} machines should lower per-machine load: {} vs {}",
        13,
        many.peak_machine_words,
        few.peak_machine_words
    );
}
