//! Determinism guarantees beyond the equivalence suite: identical output
//! across repeated runs, across rayon thread-pool sizes (the simulator runs
//! machines in parallel threads), and across machine counts for the drivers
//! the equivalence suite does not cover (vertex cover, b-matching, clique,
//! colouring).
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::hungry::MisParams;
use mrlr::core::mr::bmatching::mr_b_matching;
use mrlr::core::mr::clique::mr_maximal_clique;
use mrlr::core::mr::colouring::mr_vertex_colouring;
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::BMatchingParams;
use mrlr::graph::generators;

#[test]
fn vertex_cover_equivalent_across_machine_counts() {
    let g = generators::densified(60, 0.5, 5);
    let weights: Vec<f64> = (0..g.n()).map(|i| 1.0 + (i % 5) as f64).collect();
    let base = MrConfig::auto(60, g.m(), 0.3, 7);
    let reference = mr_vertex_cover(&g, &weights, base).unwrap().0;
    for machines in [1usize, 4, 9] {
        let cfg = base.with_machines(machines);
        let (r, _) = mr_vertex_cover(&g, &weights, cfg).unwrap();
        assert_eq!(r.cover, reference.cover, "machines = {machines}");
        assert_eq!(r.iterations, reference.iterations);
    }
}

#[test]
fn b_matching_equivalent_across_machine_counts() {
    let g = generators::with_uniform_weights(&generators::densified(50, 0.5, 2), 1.0, 7.0, 3);
    let b: Vec<u32> = (0..g.n() as u32).map(|v| 1 + v % 3).collect();
    let params = BMatchingParams {
        eps: 0.25,
        n_mu: 3.0,
        eta: 400,
        seed: 11,
    };
    let base = MrConfig::auto(50, g.m(), 0.3, 11);
    let reference = mr_b_matching(&g, &b, params, base).unwrap().0;
    for machines in [1usize, 3, 8] {
        let cfg = base.with_machines(machines);
        let (r, _) = mr_b_matching(&g, &b, params, cfg).unwrap();
        assert_eq!(r.matching, reference.matching, "machines = {machines}");
    }
}

#[test]
fn clique_equivalent_across_machine_counts() {
    let g = generators::gnp(60, 0.5, 9);
    let params = MisParams::mis1(60, 0.35, 13);
    let base = MrConfig::auto(60, g.m().max(1), 0.35, 13);
    let reference = mr_maximal_clique(&g, params, base).unwrap().0;
    for machines in [1usize, 5] {
        let cfg = base.with_machines(machines);
        let (r, _) = mr_maximal_clique(&g, params, cfg).unwrap();
        assert_eq!(r.vertices, reference.vertices, "machines = {machines}");
    }
}

#[test]
fn colouring_equivalent_across_machine_counts() {
    let g = generators::densified(70, 0.45, 4);
    let base = MrConfig::auto(70, g.m(), 0.3, 17);
    let reference = mr_vertex_colouring(&g, 4, None, base).unwrap().0;
    for machines in [1usize, 6] {
        let cfg = base.with_machines(machines);
        let (r, _) = mr_vertex_colouring(&g, 4, None, cfg).unwrap();
        assert_eq!(r.colours, reference.colours, "machines = {machines}");
        assert_eq!(r.num_colours, reference.num_colours);
    }
}

#[test]
fn identical_runs_are_bit_identical_including_metrics() {
    let g = generators::with_uniform_weights(&generators::densified(60, 0.5, 8), 1.0, 9.0, 2);
    let cfg = MrConfig::auto(60, g.m(), 0.3, 23);
    let (a, ma) = mr_matching(&g, cfg).unwrap();
    let (b, mb) = mr_matching(&g, cfg).unwrap();
    assert_eq!(a, b);
    assert_eq!(ma.rounds, mb.rounds);
    assert_eq!(ma.total_message_words, mb.total_message_words);
    assert_eq!(ma.peak_machine_words, mb.peak_machine_words);
    assert_eq!(ma.per_round.len(), mb.per_round.len());
}

#[test]
fn output_independent_of_execution_schedule() {
    // The same job under the sequential executor and 2/4-thread pools
    // (genuinely concurrent machine supersteps since the Executor seam
    // landed) must be bit-identical: solution, rounds, volumes, per-round
    // detail. Repeated runs additionally catch per-process nondeterminism
    // leaking into observables — e.g. a driver iterating a `HashMap`
    // (whose hasher is randomly seeded per instance) in arbitrary order.
    let g = generators::with_uniform_weights(&generators::densified(60, 0.5, 8), 1.0, 9.0, 2);
    let cfg = MrConfig::auto(60, g.m(), 0.3, 29);
    let run = |threads: usize| {
        let (r, m) = mr_matching(&g, cfg.with_threads(threads)).unwrap();
        (r, m.rounds, m.total_message_words, m.per_round)
    };
    let reference = run(1);
    assert_eq!(run(1), reference, "repeated sequential run diverged");
    for threads in [2usize, 4] {
        assert_eq!(run(threads), reference, "{threads}-thread run diverged");
    }
}

#[test]
fn seed_changes_propagate() {
    // A different seed must (on this instance) change the run — guards
    // against a driver accidentally ignoring cfg.seed. The instance must be
    // large relative to η so the sampling path actually runs.
    let g = generators::with_uniform_weights(&generators::densified(100, 0.5, 8), 1.0, 9.0, 2);
    let a = mr_matching(&g, MrConfig::auto(100, g.m(), 0.1, 1))
        .unwrap()
        .0;
    let b = mr_matching(&g, MrConfig::auto(100, g.m(), 0.1, 2))
        .unwrap()
        .0;
    assert!(
        a.matching != b.matching || a.iterations != b.iterations,
        "two seeds produced identical matchings — suspicious"
    );
}
