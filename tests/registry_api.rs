//! Registry round-trip guarantees: every registered `Mr` driver returns
//! bit-identical solutions and identical `Metrics` to its legacy
//! free-function entry point on fixed seeds, and the `Rlr`/`Mr` backends of
//! the same driver agree wherever the paper guarantees equivalence (they
//! share the same hash-derived coin streams).
#![allow(deprecated)] // the legacy entry points are the comparison targets

use mrlr::core::api::{
    BMatchingInstance, Backend, ColouringDriver, Instance, Registry, VertexWeightedGraph,
    DEFAULT_GREEDY_SC_EPS,
};
use mrlr::core::colouring::group_count;
use mrlr::core::hungry::{HungryScParams, MisParams};
use mrlr::core::mr::bmatching::mr_b_matching;
use mrlr::core::mr::clique::mr_maximal_clique;
use mrlr::core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::mis::{mr_mis_fast, mr_mis_simple};
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::BMatchingParams;
use mrlr::graph::{generators, Graph};
use mrlr::mapreduce::DetRng;
use mrlr::setsys::generators as setgen;
use mrlr::setsys::SetSystem;

const SEED: u64 = 42;
const MU: f64 = 0.3;

fn graph(n: usize) -> Graph {
    generators::with_uniform_weights(&generators::densified(n, 0.45, SEED), 1.0, 9.0, SEED ^ 0x77)
}

fn vertex_weights(n: usize) -> Vec<f64> {
    let mut rng = DetRng::derive(SEED, &[0x0076_7773]);
    (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect()
}

fn set_system() -> SetSystem {
    setgen::with_uniform_weights(setgen::bounded_frequency(40, 600, 3, SEED), 1.0, 8.0, SEED)
}

/// Every `(algorithm, instance, cfg)` triple the default registry covers,
/// with instances sized so each Mr run takes milliseconds.
fn workloads() -> Vec<(&'static str, Instance, MrConfig)> {
    let g = graph(60);
    let gcfg = MrConfig::auto(60, g.m(), MU, SEED);
    let gu = g.unweighted();
    let sys = set_system();
    let scfg = MrConfig::auto(40, 600, 0.5, SEED);
    let dense = generators::gnp(50, 0.5, SEED);
    let dcfg = MrConfig::auto(50, dense.m(), 0.35, SEED);
    vec![
        ("set-cover-f", Instance::SetSystem(sys.clone()), scfg),
        ("set-cover-greedy", Instance::SetSystem(sys), scfg),
        (
            "vertex-cover",
            Instance::VertexWeighted(VertexWeightedGraph::new(g.clone(), vertex_weights(60))),
            gcfg,
        ),
        ("matching", Instance::Graph(g.clone()), gcfg),
        (
            "b-matching",
            Instance::BMatching(BMatchingInstance::new(
                g.clone(),
                (0..60u32).map(|v| 1 + v % 3).collect(),
                0.25,
            )),
            gcfg,
        ),
        ("mis1", Instance::Graph(gu.clone()), gcfg),
        ("mis2", Instance::Graph(gu), gcfg),
        ("clique", Instance::Graph(dense), dcfg),
        ("vertex-colouring", Instance::Graph(g.clone()), gcfg),
        ("edge-colouring", Instance::Graph(g), gcfg),
    ]
}

#[test]
fn every_mr_driver_is_bit_identical_to_its_legacy_entry_point() {
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let report = registry
            .get(name)
            .unwrap_or_else(|| panic!("{name} not registered"))
            .solve(&instance, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.backend, Backend::Mr);
        let metrics = report.metrics.as_ref().expect("Mr backend reports metrics");

        // Invoke the legacy free function with the identically-derived
        // parameters and demand bit-identical output.
        match name {
            "set-cover-f" => {
                let sys = match &instance {
                    Instance::SetSystem(s) => s,
                    _ => unreachable!(),
                };
                let (legacy, lm) = mr_set_cover_f(sys, cfg).unwrap();
                assert_eq!(report.solution.as_cover().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "set-cover-greedy" => {
                let sys = match &instance {
                    Instance::SetSystem(s) => s,
                    _ => unreachable!(),
                };
                let params =
                    HungryScParams::new(sys.universe(), cfg.mu, DEFAULT_GREEDY_SC_EPS, cfg.seed);
                let (legacy, _trace, lm) = mr_hungry_set_cover(sys, params, cfg).unwrap();
                assert_eq!(report.solution.as_cover().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "vertex-cover" => {
                let vw = match &instance {
                    Instance::VertexWeighted(vw) => vw,
                    _ => unreachable!(),
                };
                let (legacy, lm) = mr_vertex_cover(&vw.graph, &vw.weights, cfg).unwrap();
                assert_eq!(report.solution.as_cover().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "matching" => {
                let g = instance.graph().unwrap();
                let (legacy, lm) = mr_matching(g, cfg).unwrap();
                assert_eq!(report.solution.as_matching().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "b-matching" => {
                let bm = match &instance {
                    Instance::BMatching(bm) => bm,
                    _ => unreachable!(),
                };
                let params = BMatchingParams {
                    eps: bm.eps,
                    n_mu: (bm.graph.n() as f64).powf(cfg.mu),
                    eta: cfg.eta,
                    seed: cfg.seed,
                };
                let (legacy, lm) = mr_b_matching(&bm.graph, &bm.b, params, cfg).unwrap();
                assert_eq!(report.solution.as_matching().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "mis1" => {
                let g = instance.graph().unwrap();
                let params = MisParams::mis1(g.n(), cfg.mu, cfg.seed);
                let (legacy, lm) = mr_mis_simple(g, params, cfg).unwrap();
                assert_eq!(report.solution.as_selection().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "mis2" => {
                let g = instance.graph().unwrap();
                let params = MisParams::mis2(g.n(), cfg.mu, cfg.seed);
                let (legacy, lm) = mr_mis_fast(g, params, cfg).unwrap();
                assert_eq!(report.solution.as_selection().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "clique" => {
                let g = instance.graph().unwrap();
                let params = MisParams::mis2(g.n(), cfg.mu, cfg.seed);
                let (legacy, lm) = mr_maximal_clique(g, params, cfg).unwrap();
                assert_eq!(report.solution.as_selection().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "vertex-colouring" => {
                let g = instance.graph().unwrap();
                let kappa = group_count(g.n(), g.m(), cfg.mu);
                let limit = Some(ColouringDriver::paper_edge_limit(g.n(), cfg.mu));
                let (legacy, lm) = mr_vertex_colouring(g, kappa, limit, cfg).unwrap();
                assert_eq!(report.solution.as_colouring().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            "edge-colouring" => {
                let g = instance.graph().unwrap();
                let kappa = group_count(g.n(), g.m(), cfg.mu);
                let limit = Some(ColouringDriver::paper_edge_limit(g.n(), cfg.mu));
                let (legacy, lm) = mr_edge_colouring(g, kappa, limit, cfg).unwrap();
                assert_eq!(report.solution.as_colouring().unwrap(), &legacy, "{name}");
                assert_eq!(metrics, &lm, "{name} metrics");
            }
            other => panic!("workload for unknown algorithm {other}"),
        }
    }
}

#[test]
fn rlr_and_mr_backends_of_the_same_driver_agree() {
    // The paper's equivalence: the cluster run shares the in-memory
    // driver's coin streams, so for identical seeds the solutions are
    // bit-identical (the Mr report additionally carries metrics).
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let rlr = registry
            .solve_with(name, Backend::Rlr, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} rlr: {e}"));
        let mr = registry
            .solve_with(name, Backend::Mr, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} mr: {e}"));
        assert_eq!(rlr.solution, mr.solution, "{name}: rlr vs mr diverged");
        assert!(rlr.metrics.is_none(), "{name}: rlr backend has no cluster");
        assert!(mr.metrics.is_some(), "{name}: mr backend must meter");
    }
}

#[test]
fn shard_backend_matches_mr_bit_for_bit() {
    // `Backend::Shard` runs the same drivers with the same coins on the
    // sharded runtime; per key, its Report must equal the Mr one in
    // every model-level observable (the legacy-equivalence test above
    // then transitively ties Shard to the free-function entry points).
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let mr = registry
            .solve_with(name, Backend::Mr, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} mr: {e}"));
        let shard = registry
            .solve_with(name, Backend::Shard, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} shard: {e}"));
        assert_eq!(shard.solution, mr.solution, "{name}: shard vs mr diverged");
        assert_eq!(
            shard.certificate.witness, mr.certificate.witness,
            "{name}: witnesses diverged"
        );
        assert_eq!(shard.metrics, mr.metrics, "{name}: metrics diverged");
        assert_eq!(shard.backend, Backend::Shard);
    }
}

#[test]
fn seq_backend_is_feasible_everywhere() {
    // Seq twins run different (deterministic reference) algorithms, so no
    // bit-equivalence — but every solution must pass the same validator.
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let seq = registry
            .solve_with(name, Backend::Seq, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} seq: {e}"));
        assert!(seq.certificate.feasible, "{name}: seq solution infeasible");
    }
}

#[test]
fn reports_are_uniform_across_the_registry() {
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let report = registry.solve(name, &instance, &cfg).unwrap();
        assert_eq!(report.algorithm, name);
        assert!(report.certificate.feasible, "{name}");
        assert!(report.certificate.objective >= 0.0, "{name}");
        if let Some(ratio) = report.certificate.certified_ratio {
            // Every certified ratio upper-bounds an approximation factor;
            // structural-guarantee problems (MIS, clique, colourings)
            // report None instead.
            assert!(ratio.is_finite() && ratio >= 1.0 - 1e-9, "{name}: {ratio}");
        }
        assert!(report.rounds() > 0, "{name}: cluster run took no rounds");
        assert!(!report.certificate.detail.is_empty(), "{name}");
    }
}
