//! Head-to-head comparisons against the Figure 1 baseline rows: the paper's
//! claims about *who wins and by roughly what factor* (the shape of the
//! table), asserted on concrete instances.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::baselines::{
    coreset_matching, crouch_stubbs_matching, filtering_vertex_cover, greedy_weighted_matching,
    layered_weighted_matching, luby_mis,
};
use mrlr::core::hungry::{mis_fast, MisParams};
use mrlr::core::rlr::approx_max_matching;
use mrlr::core::rlr::approx_set_cover_f;
use mrlr::core::seq::greedy_set_cover;
use mrlr::core::verify::{is_matching, matching_weight};
use mrlr::graph::generators;
use mrlr::setsys::generators as setgen;
use mrlr::setsys::SetSystem;

/// Our 2-approximate weighted matching should dominate the 8-approximate
/// layered filtering of [27] on weight-spread instances (Figure 1: row
/// "Theorem 5.6" vs row "[26] Y 8").
#[test]
fn randomized_local_ratio_beats_layered_filtering_on_weight() {
    let mut wins = 0usize;
    let trials = 6u64;
    for seed in 0..trials {
        let g = generators::with_log_uniform_weights(
            &generators::densified(80, 0.5, seed),
            0.5,
            256.0,
            seed + 40,
        );
        let ours = approx_max_matching(&g, 700, seed).unwrap();
        let layered = layered_weighted_matching(&g, 700, seed).unwrap();
        let lw = matching_weight(&g, &layered.matching);
        if ours.weight >= lw {
            wins += 1;
        }
        // Even when losing a coin flip, never by the 4x the guarantees
        // would allow.
        assert!(
            ours.weight * 4.0 >= lw,
            "seed {seed}: ours {} vs layered {lw}",
            ours.weight
        );
    }
    assert!(
        (wins as u64) * 2 >= trials,
        "won only {wins}/{trials} against an 8-approximation"
    );
}

/// Crouch–Stubbs (4+ε) sits between layered filtering (8) and us (2) in
/// guarantee; verify the three are all valid and our certified quality is
/// the best of the trio on average.
#[test]
fn weighted_matching_quality_ordering() {
    let mut ours_total = 0.0;
    let mut cs_total = 0.0;
    let mut layered_total = 0.0;
    for seed in 0..6 {
        let g = generators::with_log_uniform_weights(
            &generators::densified(70, 0.5, seed + 100),
            0.5,
            128.0,
            seed + 7,
        );
        let ours = approx_max_matching(&g, 600, seed).unwrap();
        let cs = crouch_stubbs_matching(&g, 0.5, 600, seed).unwrap();
        let layered = layered_weighted_matching(&g, 600, seed).unwrap();
        assert!(is_matching(&g, &ours.matching));
        assert!(is_matching(&g, &cs.matching));
        assert!(is_matching(&g, &layered.matching));
        ours_total += ours.weight;
        cs_total += cs.weight;
        layered_total += matching_weight(&g, &layered.matching);
    }
    assert!(
        ours_total >= 0.95 * cs_total,
        "ours {ours_total} vs crouch-stubbs {cs_total}"
    );
    assert!(
        ours_total >= 0.95 * layered_total,
        "ours {ours_total} vs layered {layered_total}"
    );
}

/// The 2-round coreset baseline uses few rounds but more central space and a
/// weaker guarantee; our algorithm should match or beat its weight while
/// keeping per-iteration space at η.
#[test]
fn coreset_trades_rounds_for_quality() {
    let mut ours_wins = 0usize;
    for seed in 0..5 {
        let g = generators::with_uniform_weights(
            &generators::densified(60, 0.5, seed + 200),
            1.0,
            9.0,
            seed,
        );
        let ours = approx_max_matching(&g, 500, seed).unwrap();
        let coreset = coreset_matching(&g, 6, seed).unwrap();
        assert!(is_matching(&g, &coreset.matching));
        if ours.weight >= coreset.weight {
            ours_wins += 1;
        }
        // Sanity: the coreset union really was bigger than one matching.
        assert!(coreset.union_size >= coreset.matching.len());
    }
    assert!(
        ours_wins >= 3,
        "ours won only {ours_wins}/5 vs 2-round coreset"
    );
}

/// Luby's MIS takes Θ(log n) rounds; hungry-greedy (Algorithm 6) takes
/// O(c/µ). Both must be valid; for dense-ish graphs and constant µ the
/// hungry-greedy iteration count should not exceed Luby's by more than a
/// constant, and both sides must produce maximal independent sets.
#[test]
fn mis_iteration_comparison() {
    use mrlr::core::verify::is_maximal_independent_set;
    for seed in 0..4 {
        let g = generators::densified(100, 0.5, seed + 300);
        let luby = luby_mis(&g, seed);
        let ours = mis_fast(&g, MisParams::mis2(100, 0.35, seed)).unwrap();
        assert!(
            is_maximal_independent_set(&g, &luby.vertices),
            "luby seed {seed}"
        );
        assert!(
            is_maximal_independent_set(&g, &ours.vertices),
            "ours seed {seed}"
        );
        // O(c/µ) with c = 0.5, µ = 0.35 ⇒ a handful of iterations.
        assert!(
            ours.iterations <= 30,
            "hungry-greedy took {}",
            ours.iterations
        );
    }
}

/// Weighted vertex cover: our f-approximation handles weights; the
/// filtering baseline is unweighted-only, so on skew-weighted instances our
/// cover should be substantially cheaper.
#[test]
fn weighted_vertex_cover_beats_unweighted_baseline_on_skew() {
    use mrlr::core::mr::vertex_cover::mr_vertex_cover;
    use mrlr::core::mr::MrConfig;
    let mut ours_total = 0.0;
    let mut baseline_total = 0.0;
    for seed in 0..4 {
        // Bipartite with a cheap left side and a costly right side: the
        // weighted optimum is (close to) the left side alone, which an
        // unweighted maximal-matching cover cannot see.
        let g = generators::bipartite(30, 30, 220, seed + 400);
        let weights: Vec<f64> = (0..g.n())
            .map(|i| if i < 30 { 0.1 } else { 10.0 })
            .collect();
        let cfg = MrConfig::auto(60, g.m(), 0.3, seed);
        let (ours, _) = mr_vertex_cover(&g, &weights, cfg).unwrap();
        let (baseline_cover, _) = filtering_vertex_cover(&g, 500, seed).unwrap();
        let baseline_w: f64 = baseline_cover.iter().map(|&v| weights[v as usize]).sum();
        ours_total += ours.weight;
        baseline_total += baseline_w;
    }
    assert!(
        ours_total < 0.5 * baseline_total,
        "weighted LR {ours_total} vs unweighted filtering {baseline_total}"
    );
}

/// Set cover: the f-approximation (Algorithm 1) and the greedy H_Δ bound
/// behave as Figure 1 predicts on the greedy trap — greedy pays ~ln m,
/// local ratio pays ≤ f.
#[test]
fn greedy_trap_separates_the_two_set_cover_algorithms() {
    let m = 64usize;
    let sys = setgen::greedy_trap(m, 0.05);
    let opt = 1.05;
    let greedy = greedy_set_cover(&sys).unwrap();
    // Greedy falls into the trap: pays Θ(H_m) ≈ ln 64 ≈ 4.16.
    assert!(
        greedy.weight > 3.0,
        "greedy escaped the trap: {}",
        greedy.weight
    );
    // The local-ratio f-approximation: f = 2 here (big set + singleton per
    // element), so its cover costs at most 2·OPT ≈ 2.1.
    let f = sys.max_frequency() as f64;
    let lr = approx_set_cover_f(&sys, 32, 3).unwrap();
    assert!(
        lr.weight <= f * opt + 1e-9,
        "local ratio paid {} > f·OPT = {}",
        lr.weight,
        f * opt
    );
    assert!(lr.weight < greedy.weight);
}

/// Sequential greedy matching is the quality reference: our randomized
/// algorithm's *certified* ratio must be ≤ 2 while staying within a factor
/// of greedy's realized weight.
#[test]
fn certified_ratios_hold_against_greedy_reference() {
    for seed in 0..5 {
        let g = generators::with_uniform_weights(
            &generators::densified(70, 0.45, seed + 500),
            1.0,
            9.0,
            seed,
        );
        let ours = approx_max_matching(&g, 600, seed).unwrap();
        assert!(
            ours.certified_ratio(2.0) <= 2.0 + 1e-9,
            "seed {seed}: certified ratio {}",
            ours.certified_ratio(2.0)
        );
        let greedy = greedy_weighted_matching(&g);
        let gw = matching_weight(&g, &greedy);
        assert!(2.0 * ours.weight + 1e-9 >= gw, "seed {seed}");
    }
}

/// The f = 1 extreme: on a partition system the f-approximation is exact.
#[test]
fn partition_systems_are_solved_exactly() {
    let sys: SetSystem = setgen::partition_system(40, 8, 9);
    let r = approx_set_cover_f(&sys, 16, 1).unwrap();
    // Every set must be taken (each is the sole cover of its elements), and
    // the certified ratio collapses to 1.
    assert_eq!(r.cover.len(), 8);
    assert!((r.certified_ratio() - 1.0).abs() < 1e-9);
}
