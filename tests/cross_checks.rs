//! Cross-algorithm consistency checks and failure-injection tests.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::hungry::MisParams;
use mrlr::core::mr::colouring::mr_vertex_colouring;
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::mis::mr_mis_fast;
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::MrConfig;
use mrlr::core::verify;
use mrlr::graph::{generators, Graph, VertexId};
use mrlr::mapreduce::MrError;
use mrlr::setsys::generators as setgen;

/// Appendix B's premise, checked directly: our maximal clique is a maximal
/// independent set of the explicitly complemented graph (which we *can*
/// build at test scale).
#[test]
fn clique_is_mis_of_complement() {
    for seed in 0..6 {
        let g = generators::gnp(30, 0.5, seed);
        let params = MisParams::mis2(30, 0.4, seed);
        let clique = mrlr::core::hungry::maximal_clique(&g, params).unwrap();
        assert!(verify::is_maximal_clique(&g, &clique.vertices));

        // Build the complement explicitly.
        let mut pairs = Vec::new();
        let adj = g.neighbours();
        for u in 0..30u32 {
            for v in (u + 1)..30u32 {
                if !adj[u as usize].contains(&v) {
                    pairs.push((u, v));
                }
            }
        }
        let complement = Graph::from_pairs(30, &pairs);
        assert!(
            verify::is_maximal_independent_set(&complement, &clique.vertices),
            "seed {seed}"
        );
    }
}

/// Weak LP duality on the same unweighted graph: any matching size is a
/// lower bound for any vertex cover size.
#[test]
fn matching_lower_bounds_vertex_cover() {
    for seed in 0..6 {
        let g = generators::densified(60, 0.4, seed);
        let cfg = MrConfig::auto(60, g.m(), 0.3, seed);
        let (matching, _) = mr_matching(&g.unweighted(), cfg).unwrap();
        let w = vec![1.0; 60];
        let (cover, _) = mrlr::core::mr::vertex_cover::mr_vertex_cover(&g, &w, cfg).unwrap();
        assert!(
            matching.matching.len() <= cover.cover.len(),
            "seed {seed}: matching {} > cover {}",
            matching.matching.len(),
            cover.cover.len()
        );
    }
}

/// An independent set never collides with a colour class boundary: all
/// vertices of a colour class form an independent set, and the MIS must be
/// at least as large as n / num_colours for some class.
#[test]
fn colour_classes_are_independent_sets() {
    let g = generators::densified(80, 0.4, 3);
    let cfg = MrConfig::auto(80, g.m(), 0.3, 3);
    let (colouring, _) = mr_vertex_colouring(&g, 4, None, cfg).unwrap();
    let max_colour = *colouring.colours.iter().max().unwrap();
    for colour in 0..=max_colour {
        let class: Vec<VertexId> = (0..80u32)
            .filter(|&v| colouring.colours[v as usize] == colour)
            .collect();
        assert!(verify::is_independent_set(&g, &class), "colour {colour}");
    }
    let (mis, _) = mr_mis_fast(&g, MisParams::mis2(80, 0.3, 3), cfg).unwrap();
    // A maximal IS is at least as large as the biggest class-lower-bound
    // argument requires at least one vertex; sanity-check non-triviality.
    assert!(!mis.vertices.is_empty());
}

#[test]
fn capacity_failures_are_typed_not_wrong() {
    let g = generators::densified(60, 0.5, 1);
    let cramped = MrConfig::auto(60, g.m(), 0.3, 1).with_capacity(25);
    match mr_matching(&g, cramped) {
        Err(MrError::CapacityExceeded { capacity, used, .. }) => {
            assert_eq!(capacity, 25);
            assert!(used > 25);
        }
        other => panic!("expected capacity failure, got {other:?}"),
    }

    let sys = setgen::bounded_frequency(40, 700, 2, 2);
    let cramped = MrConfig::auto(40, 700, 0.3, 2).with_capacity(10);
    assert!(matches!(
        mr_set_cover_f(&sys, cramped),
        Err(MrError::CapacityExceeded { .. })
    ));
}

#[test]
fn infeasible_instances_are_rejected_before_any_rounds() {
    let sys = mrlr::setsys::SetSystem::unit(5, vec![vec![0, 1], vec![2]]);
    let cfg = MrConfig::auto(5, 5, 0.3, 1);
    assert!(matches!(
        mr_set_cover_f(&sys, cfg),
        Err(MrError::Infeasible(_))
    ));
}

/// Record-mode lets the same run continue and report violations instead of
/// failing — used by the space-measurement experiments.
#[test]
fn record_mode_measures_instead_of_failing() {
    let g = generators::densified(60, 0.5, 1);
    let cramped = MrConfig::auto(60, g.m(), 0.3, 1)
        .with_capacity(25)
        .recording();
    let (r, metrics) = mr_matching(&g, cramped).unwrap();
    assert!(verify::is_matching(&g, &r.matching));
    assert!(!metrics.violations.is_empty());
    assert!(metrics.peak_machine_words > 25);
}
