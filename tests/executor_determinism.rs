//! The executor contract, asserted end-to-end over the whole registry:
//! for every algorithm key, `Backend::Mr` under the threaded executor (1,
//! 2 and 8 threads) returns **bit-identical** solutions, certificates and
//! model-level `Metrics` to the sequential executor on fixed seeds. Only
//! host wall-clock (`superstep_timings`, `Report::wall`) may differ —
//! and `Metrics`/`Timeline` equality deliberately exclude it.
//!
//! `MrConfig::with_threads(1)` resolves to the sequential executor;
//! pools of 1..=8 threads driving a raw `Cluster` are covered by the
//! substrate's own tests (`mrlr_mapreduce::cluster`), so here the
//! interesting legs are the multi-thread pools behind the full drivers.

use mrlr::core::api::{BMatchingInstance, Backend, Instance, Registry, VertexWeightedGraph};
use mrlr::core::mr::MrConfig;
use mrlr::graph::{generators, Graph};
use mrlr::mapreduce::{executor_for, DetRng, Timeline};
use mrlr::setsys::generators as setgen;

const SEED: u64 = 42;
const MU: f64 = 0.3;

fn graph(n: usize) -> Graph {
    generators::with_uniform_weights(&generators::densified(n, 0.45, SEED), 1.0, 9.0, SEED ^ 0x77)
}

fn vertex_weights(n: usize) -> Vec<f64> {
    let mut rng = DetRng::derive(SEED, &[0x0076_7773]);
    (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect()
}

/// One workload per registry key, sized so every run takes milliseconds.
fn workloads() -> Vec<(&'static str, Instance, MrConfig)> {
    let g = graph(60);
    let gcfg = MrConfig::auto(60, g.m(), MU, SEED);
    let gu = g.unweighted();
    let sys =
        setgen::with_uniform_weights(setgen::bounded_frequency(40, 600, 3, SEED), 1.0, 8.0, SEED);
    let scfg = MrConfig::auto(40, 600, 0.5, SEED);
    let dense = generators::gnp(50, 0.5, SEED);
    let dcfg = MrConfig::auto(50, dense.m(), 0.35, SEED);
    vec![
        ("set-cover-f", Instance::SetSystem(sys.clone()), scfg),
        ("set-cover-greedy", Instance::SetSystem(sys), scfg),
        (
            "vertex-cover",
            Instance::VertexWeighted(VertexWeightedGraph::new(g.clone(), vertex_weights(60))),
            gcfg,
        ),
        ("matching", Instance::Graph(g.clone()), gcfg),
        (
            "b-matching",
            Instance::BMatching(BMatchingInstance::new(
                g.clone(),
                (0..60u32).map(|v| 1 + v % 3).collect(),
                0.25,
            )),
            gcfg,
        ),
        ("mis1", Instance::Graph(gu.clone()), gcfg),
        ("mis2", Instance::Graph(gu), gcfg),
        ("clique", Instance::Graph(dense), dcfg),
        ("vertex-colouring", Instance::Graph(g.clone()), gcfg),
        ("edge-colouring", Instance::Graph(g), gcfg),
    ]
}

#[test]
fn every_registry_key_is_bit_identical_across_thread_counts() {
    let registry = Registry::with_defaults();
    let mut keys_checked = 0usize;
    for (name, instance, cfg) in workloads() {
        let reference = registry
            .solve(name, &instance, &cfg.with_threads(1))
            .unwrap_or_else(|e| panic!("{name} seq: {e}"));
        let ref_metrics = reference.metrics.as_ref().expect("Mr backend meters");
        for threads in [2usize, 8] {
            let threaded = registry
                .solve(name, &instance, &cfg.with_threads(threads))
                .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
            assert_eq!(
                threaded.solution, reference.solution,
                "{name}: solution diverged at {threads} threads"
            );
            assert_eq!(
                threaded.certificate, reference.certificate,
                "{name}: certificate diverged at {threads} threads"
            );
            let tm = threaded.metrics.as_ref().expect("Mr backend meters");
            assert_eq!(
                tm, ref_metrics,
                "{name}: metrics diverged at {threads} threads"
            );
            // The model-level timeline is equal too (its equality, like
            // Metrics', excludes wall-clock)...
            assert_eq!(
                Timeline::from_metrics(tm),
                Timeline::from_metrics(ref_metrics),
                "{name}: timeline diverged at {threads} threads"
            );
            // ...while the threaded run really did execute on a pool and
            // recorded host timings for every executor pass.
            assert_eq!(
                tm.superstep_timings.len(),
                ref_metrics.superstep_timings.len(),
                "{name}: pass count diverged at {threads} threads"
            );
            assert!(tm.total_wall_nanos() > 0, "{name}: nothing was timed");
        }
        keys_checked += 1;
    }
    // All ten registry keys must have been exercised.
    assert_eq!(keys_checked, Registry::with_defaults().algorithms().len());
}

#[test]
fn shard_backend_is_bit_identical_to_mr_for_every_key() {
    // The fourth backend's contract: `Backend::Shard` (static
    // shard→thread scheduling + per-destination batched routing) returns
    // bit-identical Reports — solution, certificate (witness included)
    // and model-level Metrics — to `Backend::Mr`, per registry key, at
    // 1 and 4 executor threads.
    let registry = Registry::with_defaults();
    let mut keys_checked = 0usize;
    for (name, instance, cfg) in workloads() {
        for threads in [1usize, 4] {
            let cfg = cfg.with_threads(threads);
            let mr = registry
                .solve_with(name, Backend::Mr, &instance, &cfg)
                .unwrap_or_else(|e| panic!("{name} mr x{threads}: {e}"));
            let shard = registry
                .solve_with(name, Backend::Shard, &instance, &cfg)
                .unwrap_or_else(|e| panic!("{name} shard x{threads}: {e}"));
            assert_eq!(shard.backend, Backend::Shard, "{name}");
            assert_eq!(
                shard.solution, mr.solution,
                "{name}: solution diverged on the shard runtime x{threads}"
            );
            assert_eq!(
                shard.certificate, mr.certificate,
                "{name}: certificate/witness diverged on the shard runtime x{threads}"
            );
            assert_eq!(
                shard.metrics, mr.metrics,
                "{name}: metrics diverged on the shard runtime x{threads}"
            );
        }
        keys_checked += 1;
    }
    assert_eq!(keys_checked, Registry::with_defaults().algorithms().len());
}

#[test]
fn repeated_threaded_runs_are_bit_identical_to_each_other() {
    // Beyond seq-vs-threaded: two runs on the same 4-thread pool (whose
    // schedules certainly differ) must also agree exactly.
    let registry = Registry::with_defaults();
    let g = graph(80);
    let cfg = MrConfig::auto(80, g.m(), 0.2, 7).with_threads(4);
    let inst = Instance::Graph(g);
    let a = registry.solve("matching", &inst, &cfg).unwrap();
    let b = registry.solve("matching", &inst, &cfg).unwrap();
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn rlr_mr_equivalence_survives_the_thread_pool() {
    // The paper's Rlr/Mr bit-equivalence is seed-based; the executor must
    // not perturb it.
    let registry = Registry::with_defaults();
    for (name, instance, cfg) in workloads() {
        let rlr = registry
            .solve_with(name, Backend::Rlr, &instance, &cfg)
            .unwrap_or_else(|e| panic!("{name} rlr: {e}"));
        let mr = registry
            .solve(name, &instance, &cfg.with_threads(8))
            .unwrap_or_else(|e| panic!("{name} mr x8: {e}"));
        assert_eq!(rlr.solution, mr.solution, "{name}");
    }
}

#[test]
fn executor_selection_resolves_threads() {
    assert_eq!(executor_for(1).name(), "seq");
    assert_eq!(executor_for(4).name(), "threads(4)");
    let cfg = MrConfig::auto(20, 100, 0.3, 1);
    // Unset MRLR_THREADS (the test environment default) = sequential.
    assert!(cfg.exec.threads >= 1);
}
