//! Model-conformance and observability integration: every algorithm's
//! cluster shape is audited against the MRC/MPC side conditions of §1.3,
//! the per-round timeline agrees with the metrics, and the fault model
//! prices real runs sensibly.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::graph::generators;
use mrlr::mapreduce::faults::{apply, FaultPlan};
use mrlr::mapreduce::trace::Timeline;
use mrlr::mapreduce::{ComputeModel, Enforcement};
use mrlr::setsys::generators as setgen;

/// The matching driver's auto-configuration must satisfy the MPC space
/// regime (`S = O(N/M)` with constant slack, sublinear per-machine memory).
/// Sublinearity is asymptotic — `MrConfig::auto`'s constant slack dominates
/// toy inputs — so the audit runs at production scale (counts only; no
/// graph is materialized) and the execution check runs at test scale.
#[test]
fn matching_cluster_shape_is_mpc_conformant() {
    // Audit at scale: n = 200k vertices, c = 0.5, µ = 0.1.
    let n = 200_000usize;
    let m = (n as f64).powf(1.5) as usize;
    let cfg = MrConfig::auto(n, m, 0.1, 5);
    let input_words = 3 * m + n;
    let model = ComputeModel::Mpc { slack: 80.0 };
    let check = model.check(input_words, &cfg.cluster());
    assert!(check.ok, "violations: {:?}", check.violations);

    // Execute at test scale: the run must fit its Strict capacity.
    let n = 90usize;
    let g = generators::with_uniform_weights(&generators::densified(n, 0.5, 7), 1.0, 9.0, 1);
    let cfg = MrConfig::auto(n, g.m(), 0.3, 5);
    let (r, metrics) = mr_matching(&g, cfg).unwrap();
    assert!(!r.matching.is_empty());
    assert!(metrics.peak_machine_words <= cfg.capacity);
    assert!(metrics.peak_central_words <= cfg.capacity);
}

/// The MRC audit (machines ≤ slack·N^δ, capacity ≤ slack·N^{1−δ}) holds
/// for the paper's standing graph regime across a (c, µ) sweep.
#[test]
fn paper_regime_is_mrc_conformant_across_sweep() {
    use mrlr::mapreduce::paper_graph_regime;
    for &(n, c, mu) in &[
        (500usize, 0.5f64, 0.2f64),
        (1000, 0.4, 0.15),
        (2000, 0.3, 0.1),
    ] {
        let (machines, capacity, fanout) = paper_graph_regime(n, c, mu);
        let records = (n as f64).powf(1.0 + c) as usize;
        let delta = (c - mu) / (1.0 + c);
        let cfg = mrlr::mapreduce::ClusterConfig::new(machines, capacity).with_fanout(fanout);
        let check = ComputeModel::Mrc { delta, slack: 4.0 }.check(records, &cfg);
        assert!(
            check.ok,
            "n={n} c={c} mu={mu}: violations {:?}",
            check.violations
        );
    }
}

/// Timelines are a faithful view of the metrics: same round count, same
/// total volume, CSV row per round, and kind summaries that add up.
#[test]
fn timeline_agrees_with_metrics() {
    let sys = setgen::bounded_frequency(50, 700, 3, 3);
    let cfg = MrConfig::auto(50, 700, 0.3, 9);
    let (_, metrics) = mr_set_cover_f(&sys, cfg).unwrap();
    let t = Timeline::from_metrics(&metrics);
    assert_eq!(t.len(), metrics.rounds);
    assert_eq!(t.total_words(), metrics.total_message_words);
    assert_eq!(t.to_csv().lines().count(), metrics.rounds + 1);
    let by_kind = t.summary_by_kind();
    assert_eq!(
        by_kind.iter().map(|k| k.rounds).sum::<usize>(),
        metrics.rounds
    );
    assert_eq!(
        by_kind.iter().map(|k| k.words).sum::<usize>(),
        metrics.total_message_words
    );
    // The ASCII render exists for every round.
    assert_eq!(t.render_ascii(30).lines().count(), metrics.rounds);
}

/// Fault pricing on a real run: crashes extend rounds, stragglers extend
/// makespan, and a fault-free plan is the identity.
#[test]
fn fault_model_prices_real_runs() {
    let g = generators::densified(70, 0.5, 3);
    let weights: Vec<f64> = (0..g.n()).map(|i| 1.0 + (i % 3) as f64).collect();
    let cfg = MrConfig::auto(70, g.m(), 0.3, 2);
    let (_, metrics) = mr_vertex_cover(&g, &weights, cfg).unwrap();
    assert!(metrics.rounds > 0);

    let clean = apply(&metrics, &FaultPlan::none());
    assert_eq!(clean.effective_rounds, metrics.rounds);
    assert!((clean.slowdown_factor() - 1.0).abs() < 1e-12);

    let stormy = FaultPlan::random(metrics.machines, metrics.rounds, 0.2, 0.2, 3.0, 4);
    let priced = apply(&metrics, &stormy);
    assert!(priced.effective_rounds >= metrics.rounds);
    assert!(priced.makespan >= metrics.rounds as f64);
    assert_eq!(priced.effective_rounds, metrics.rounds + priced.redo_rounds);
    // With 20% crash probability per machine-round, some round crashed.
    assert!(priced.crashes_applied > 0);
}

/// Record-enforcement runs of a deliberately undersized cluster must report
/// violations while still computing the correct answer (the simulator's
/// measurement mode), and the violation count must appear in the metrics.
#[test]
fn record_mode_reports_but_does_not_corrupt() {
    let g = generators::with_uniform_weights(&generators::densified(60, 0.5, 12), 1.0, 9.0, 3);
    let good = MrConfig::auto(60, g.m(), 0.3, 7);
    let (reference, _) = mr_matching(&g, good).unwrap();
    let tiny = good.with_capacity(50).recording();
    let (r, metrics) = mr_matching(&g, tiny).unwrap();
    assert_eq!(
        r.matching, reference.matching,
        "record mode changed the answer"
    );
    assert!(
        !metrics.violations.is_empty(),
        "50-word machines must violate"
    );
    assert_eq!(metrics.capacity, 50);
    assert!(metrics.space_utilization() > 1.0);
    // Strict mode on the same shape fails instead.
    let strict = good.with_capacity(50);
    assert_eq!(strict.enforcement, Enforcement::Strict);
    assert!(mr_matching(&g, strict).is_err());
}
