//! The headline property of the implementation: for identical seeds, the
//! MapReduce implementations and the in-memory randomized drivers produce
//! bit-identical solutions — all randomness is hash-derived and
//! partition-stable, so distributing the data changes *where* work happens
//! but not *what* is computed.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::hungry::{hungry_set_cover, mis_fast, HungryScParams, MisParams};
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::mis::mr_mis_fast;
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::{approx_max_matching, approx_set_cover_f};
use mrlr::graph::generators;
use mrlr::setsys::generators as setgen;

#[test]
fn matching_equivalence_across_machine_counts() {
    // The same instance distributed over 1, 3 and 7 machines must give the
    // same matching as the in-memory driver.
    let g = generators::with_uniform_weights(&generators::densified(70, 0.45, 3), 1.0, 9.0, 4);
    let base = MrConfig::auto(70, g.m(), 0.3, 5);
    let seq = approx_max_matching(&g, base.eta, 5).unwrap();
    for machines in [1usize, 3, 7] {
        let cfg = base.with_machines(machines);
        let (mr, _) = mr_matching(&g, cfg).unwrap();
        assert_eq!(mr.matching, seq.matching, "machines = {machines}");
        assert_eq!(mr.iterations, seq.iterations);
    }
}

#[test]
fn set_cover_equivalence_across_machine_counts() {
    let sys = setgen::with_uniform_weights(setgen::bounded_frequency(50, 900, 3, 1), 1.0, 6.0, 2);
    let base = MrConfig::auto(50, 900, 0.35, 9);
    let seq = approx_set_cover_f(&sys, base.eta, 9).unwrap();
    for machines in [1usize, 4, 9] {
        let cfg = base.with_machines(machines);
        let (mr, _) = mr_set_cover_f(&sys, cfg).unwrap();
        assert_eq!(mr.cover, seq.cover, "machines = {machines}");
    }
}

#[test]
fn mis_equivalence_across_machine_counts() {
    let g = generators::densified(80, 0.4, 7);
    let params = MisParams::mis2(80, 0.3, 7);
    let seq = mis_fast(&g, params).unwrap();
    for machines in [1usize, 2, 5] {
        let cfg = MrConfig::auto(80, g.m(), 0.3, 7).with_machines(machines);
        let (mr, _) = mr_mis_fast(&g, params, cfg).unwrap();
        assert_eq!(mr.vertices, seq.vertices, "machines = {machines}");
    }
}

#[test]
fn hungry_set_cover_equivalence() {
    let sys = setgen::with_uniform_weights(setgen::bounded_set_size(300, 80, 10, 3), 1.0, 5.0, 3);
    let params = HungryScParams::new(80, 0.45, 0.2, 31);
    let (seq, _) = hungry_set_cover(&sys, params).unwrap();
    for machines in [1usize, 6] {
        let cfg = MrConfig::auto(80, sys.total_size(), 0.45, 31).with_machines(machines);
        let (mr, _, _) = mr_hungry_set_cover(&sys, params, cfg).unwrap();
        assert_eq!(mr.cover, seq.cover, "machines = {machines}");
    }
}

#[test]
fn different_seeds_usually_differ() {
    let g = generators::with_uniform_weights(&generators::densified(70, 0.45, 3), 1.0, 9.0, 4);
    // eta small enough that the sampling path runs (m = 474 >> 4*eta).
    let a = approx_max_matching(&g, 30, 1).unwrap();
    let b = approx_max_matching(&g, 30, 2).unwrap();
    // Not a hard guarantee, but over this instance the samples diverge.
    assert!(
        a.matching != b.matching || a.iterations != b.iterations,
        "two seeds produced identical runs — suspicious"
    );
}
