//! End-to-end pipelines: generator → MapReduce algorithm → verifier →
//! metrics, for every algorithm in the paper, through the facade crate.
// The legacy free-function entry points are deliberately exercised here;
// new code dispatches through `mrlr::core::api` (see tests/registry_api.rs).
#![allow(deprecated)]

use mrlr::core::colouring::group_count;
use mrlr::core::hungry::{HungryScParams, MisParams};
use mrlr::core::mr::bmatching::mr_b_matching;
use mrlr::core::mr::clique::mr_maximal_clique;
use mrlr::core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr::core::mr::matching::mr_matching;
use mrlr::core::mr::mis::{mr_mis_fast, mr_mis_simple};
use mrlr::core::mr::set_cover::mr_set_cover_f;
use mrlr::core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr::core::mr::vertex_cover::mr_vertex_cover;
use mrlr::core::mr::MrConfig;
use mrlr::core::rlr::BMatchingParams;
use mrlr::core::seq::{b_matching_multiplier, harmonic};
use mrlr::core::verify;
use mrlr::graph::generators;
use mrlr::mapreduce::DetRng;
use mrlr::setsys::generators as setgen;

const N: usize = 120;
const C: f64 = 0.45;
const MU: f64 = 0.3;
const SEED: u64 = 2024;

fn workload() -> mrlr::graph::Graph {
    generators::with_uniform_weights(&generators::densified(N, C, SEED), 1.0, 10.0, SEED)
}

#[test]
fn vertex_cover_pipeline() {
    let g = workload();
    let mut rng = DetRng::new(SEED);
    let w: Vec<f64> = (0..N).map(|_| rng.f64_range(1.0, 10.0)).collect();
    let cfg = MrConfig::auto(N, g.m(), MU, SEED);
    let (r, metrics) = mr_vertex_cover(&g, &w, cfg).unwrap();
    assert!(verify::is_vertex_cover(&g, &r.cover));
    assert!(r.certified_ratio() <= 2.0 + 1e-9);
    assert!(metrics.rounds >= 1);
    assert!(metrics.peak_machine_words <= cfg.capacity);
    assert!(metrics.violations.is_empty());
}

#[test]
fn set_cover_f_pipeline() {
    let sys =
        setgen::with_uniform_weights(setgen::bounded_frequency(N, 1500, 4, SEED), 1.0, 8.0, SEED);
    let cfg = MrConfig::auto(N, 1500, MU, SEED);
    let (r, metrics) = mr_set_cover_f(&sys, cfg).unwrap();
    assert!(sys.covers(&r.cover));
    assert!(r.certified_ratio() <= sys.max_frequency() as f64 + 1e-9);
    assert!(metrics.total_message_words > 0);
}

#[test]
fn hungry_set_cover_pipeline() {
    let sys =
        setgen::with_uniform_weights(setgen::bounded_set_size(600, 150, 12, SEED), 1.0, 8.0, SEED);
    let params = HungryScParams::new(150, 0.4, 0.25, SEED);
    let cfg = MrConfig::auto(150, sys.total_size(), 0.4, SEED);
    let (r, trace, metrics) = mr_hungry_set_cover(&sys, params, cfg).unwrap();
    assert!(sys.covers(&r.cover));
    let bound = (1.0 + 0.25) * harmonic(sys.max_set_size());
    assert!(r.weight <= bound * r.lower_bound * (1.0 + 1e-9) + 1e-9);
    assert!(!trace.potentials.is_empty());
    // Lemma 4.3 direction: the potential ends below where it started.
    assert!(trace.potentials.last().unwrap() <= &trace.potentials[0]);
    assert!(metrics.rounds >= trace.potentials.len());
}

#[test]
fn matching_pipeline() {
    let g = workload();
    let cfg = MrConfig::auto(N, g.m(), MU, SEED);
    let (r, metrics) = mr_matching(&g, cfg).unwrap();
    assert!(verify::is_matching(&g, &r.matching));
    assert!(r.weight + 1e-6 >= r.stack_gain);
    assert!(r.certified_ratio(2.0) <= 2.0 + 1e-6);
    assert!(metrics.peak_central_words <= cfg.capacity);
}

#[test]
fn b_matching_pipeline() {
    let g = workload();
    let b: Vec<u32> = (0..N).map(|v| 1 + (v % 4) as u32).collect();
    let params = BMatchingParams {
        eps: 0.3,
        n_mu: 2.0,
        eta: 40,
        seed: SEED,
    };
    let mut cfg = MrConfig::auto(N, g.m(), MU, SEED);
    cfg.eta = params.eta;
    let (r, _) = mr_b_matching(&g, &b, params, cfg).unwrap();
    assert!(verify::is_b_matching(&g, &b, &r.matching));
    let mult = b_matching_multiplier(&b, params.eps);
    assert!(r.certified_ratio(mult) <= mult + 1e-6);
}

#[test]
fn mis_pipelines() {
    let g = workload().unweighted();
    let cfg = MrConfig::auto(N, g.m(), MU, SEED);
    let (r1, m1) = mr_mis_simple(&g, MisParams::mis1(N, MU, SEED), cfg).unwrap();
    assert!(verify::is_maximal_independent_set(&g, &r1.vertices));
    let (r2, m2) = mr_mis_fast(&g, MisParams::mis2(N, MU, SEED), cfg).unwrap();
    assert!(verify::is_maximal_independent_set(&g, &r2.vertices));
    // The Alg 6 schedule should not be slower than Alg 2 in rounds here.
    assert!(m2.rounds <= m1.rounds + 2, "{} vs {}", m2.rounds, m1.rounds);
}

#[test]
fn clique_pipeline() {
    let g = generators::gnp(80, 0.6, SEED);
    let cfg = MrConfig::auto(80, g.m(), MU, SEED);
    let (r, _) = mr_maximal_clique(&g, MisParams::mis2(80, MU, SEED), cfg).unwrap();
    assert!(verify::is_maximal_clique(&g, &r.vertices));
    assert!(r.vertices.len() >= 2);
}

#[test]
fn colouring_pipelines() {
    let g = workload();
    let kappa = group_count(N, g.m(), MU).max(2);
    let cfg = MrConfig::auto(N, g.m(), MU, SEED);
    let (rv, mv) = mr_vertex_colouring(&g, kappa, None, cfg).unwrap();
    assert!(verify::is_proper_colouring(&g, &rv.colours));
    assert!(mv.rounds <= 3, "vertex colouring took {} rounds", mv.rounds);
    let (re, me) = mr_edge_colouring(&g, kappa, None, cfg).unwrap();
    assert!(verify::is_proper_edge_colouring(&g, &re.colours));
    assert!(me.rounds <= 3);
    // Colour budget: far below the trivial kappa * (Delta + 1).
    assert!(rv.num_colours <= kappa * (g.max_degree() + 1));
}
