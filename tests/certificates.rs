//! Approximation guarantees against *exact* optima on small instances —
//! every guarantee in Figure 1's "our results" rows, measured.

use mrlr::core::exact;
use mrlr::core::hungry::{hungry_set_cover, HungryScParams};
use mrlr::core::rlr::{
    approx_b_matching, approx_max_matching, approx_set_cover_f, BMatchingParams,
};
use mrlr::core::seq::{
    b_matching_multiplier, harmonic, local_ratio_matching, local_ratio_set_cover,
};
use mrlr::core::verify;
use mrlr::graph::generators;
use mrlr::mapreduce::DetRng;
use mrlr::setsys::SetSystem;

fn small_graph(seed: u64) -> mrlr::graph::Graph {
    generators::with_uniform_weights(&generators::gnm(12, 24, seed), 1.0, 9.0, seed ^ 0xab)
}

#[test]
fn matching_within_two_of_optimum() {
    for seed in 0..25 {
        let g = small_graph(seed);
        let (opt, _) = exact::max_weight_matching(&g);
        let seq = local_ratio_matching(&g);
        assert!(2.0 * seq.weight + 1e-9 >= opt, "seq seed {seed}");
        let rand = approx_max_matching(&g, 8, seed).unwrap();
        assert!(2.0 * rand.weight + 1e-9 >= opt, "rand seed {seed}");
    }
}

#[test]
fn vertex_cover_within_two_of_optimum() {
    for seed in 0..25 {
        let g = small_graph(seed);
        let mut rng = DetRng::new(seed);
        let w: Vec<f64> = (0..g.n()).map(|_| rng.f64_range(1.0, 9.0)).collect();
        let (opt, _) = exact::min_weight_vertex_cover(&g, &w);
        let sys = SetSystem::vertex_cover_of(&g, w.clone());
        let r = approx_set_cover_f(&sys, 6, seed).unwrap();
        assert!(sys.covers(&r.cover));
        assert!(
            r.weight <= 2.0 * opt + 1e-9,
            "seed {seed}: {} > 2x{}",
            r.weight,
            opt
        );
    }
}

#[test]
fn set_cover_within_f_of_optimum() {
    for seed in 0..15 {
        let sys = mrlr::setsys::generators::with_uniform_weights(
            mrlr::setsys::generators::bounded_frequency(10, 18, 3, seed),
            1.0,
            5.0,
            seed,
        );
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        let f = sys.max_frequency() as f64;
        let lr = local_ratio_set_cover(&sys).unwrap();
        assert!(lr.weight <= f * opt + 1e-9, "seq seed {seed}");
        let r = approx_set_cover_f(&sys, 4, seed).unwrap();
        assert!(r.weight <= f * opt + 1e-9, "rand seed {seed}");
    }
}

#[test]
fn hungry_set_cover_within_ln_delta() {
    for seed in 0..15 {
        let sys = mrlr::setsys::generators::with_uniform_weights(
            mrlr::setsys::generators::bounded_set_size(14, 16, 6, seed),
            1.0,
            4.0,
            seed,
        );
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        let eps = 0.2;
        let (r, _) = hungry_set_cover(&sys, HungryScParams::new(16, 0.5, eps, seed)).unwrap();
        let bound = (1.0 + eps) * harmonic(sys.max_set_size());
        assert!(
            r.weight <= bound * opt + 1e-9,
            "seed {seed}: {} > {:.3} x {}",
            r.weight,
            bound,
            opt
        );
    }
}

#[test]
fn b_matching_within_bound_of_optimum() {
    for seed in 0..15 {
        let g = generators::with_uniform_weights(&generators::gnm(9, 16, seed), 1.0, 7.0, seed);
        let b: Vec<u32> = (0..g.n()).map(|v| 1 + (v % 2) as u32).collect();
        let (opt, _) = exact::max_weight_b_matching(&g, &b);
        let params = BMatchingParams {
            eps: 0.25,
            n_mu: 2.0,
            eta: 4,
            seed,
        };
        let r = approx_b_matching(&g, &b, params).unwrap();
        assert!(verify::is_b_matching(&g, &b, &r.matching));
        let mult = b_matching_multiplier(&b, params.eps);
        assert!(mult * r.weight + 1e-9 >= opt, "seed {seed}");
    }
}

#[test]
fn lower_bound_certificates_are_sound() {
    // The duals we report really are lower bounds on OPT.
    for seed in 0..10 {
        let sys = mrlr::setsys::generators::with_uniform_weights(
            mrlr::setsys::generators::bounded_frequency(10, 18, 2, seed),
            1.0,
            5.0,
            seed,
        );
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        let lr = local_ratio_set_cover(&sys).unwrap();
        assert!(
            lr.lower_bound <= opt + 1e-9,
            "dual exceeded OPT, seed {seed}"
        );
        let g = small_graph(seed);
        let (opt_m, _) = exact::max_weight_matching(&g);
        let m = local_ratio_matching(&g);
        assert!(
            2.0 * m.stack_gain + 1e-9 >= opt_m,
            "stack bound violated, seed {seed}"
        );
    }
}
