//! `mrlr` — the file-based front end over the algorithm registry.
//!
//! Every run in the workspace used to be compiled in; this binary drives
//! the whole system through [`mrlr_core::api::Registry`] from files on
//! disk instead:
//!
//! ```text
//! mrlr list                         # algorithms × backends, gen families
//! mrlr gen densified --n 80 --out g.inst
//! mrlr solve matching --input g.inst --format json --out r.json
//! mrlr solve matching --input g.inst --backend shard   # bit-identical
//! mrlr verify g.inst r.json         # re-check the stored certificate
//! mrlr batch runs.manifest --format json --out b.json
//! mrlr verify b.json                # audit every slot of the batch
//! ```
//!
//! Instance files use the unified format of [`mrlr_core::io::instance`];
//! manifests the format of [`mrlr_core::io::manifest`]; reports serialize
//! via [`mrlr_core::io::report`] (`--mask-timings` zeroes host wall-clock
//! so outputs are bit-identical across `MRLR_THREADS` settings — the CI
//! smoke matrix diffs them against golden files). JSON reports embed the
//! certificate witness by default (`--certificates full`); `mrlr verify`
//! replays it offline via [`mrlr_core::api::witness::audit`] — no solver
//! re-run.
//!
//! Exit codes: 0 success, 1 runtime failure (unreadable file, infeasible
//! instance, solver error, failed verification), 2 usage error.

use std::process::ExitCode;

use mrlr_bench::sweep::SweepSpec;
use mrlr_bench::workloads::{self, GenParams};
use mrlr_core::api::{self, witness, Backend, Instance, Registry, Solution, Witness};
use mrlr_core::io::{self, CertificateMode, Json, TimingMode};
use mrlr_core::mr::MrConfig;
use mrlr_mapreduce::{SpawnKind, Timeline, WorkerKill};

const USAGE: &str = "mrlr — greedy and local ratio algorithms in the MapReduce model

USAGE:
    mrlr list  [--format text|json]
    mrlr gen   <family> [--n N] [--m M] [--c C] [--gamma G] [--f F]
               [--delta D] [--max-len L] [--left L] [--w-min W] [--w-max W]
               [--unweighted] [--eps E] [--b-max B] [--seed S]
               [--out PATH | --pipe]
    mrlr gen   --sweep SPEC [--out-dir DIR]
    mrlr solve <algorithm> (--input PATH|- | --gen FAMILY[:knob=v,...])
               [--stream] [--backend seq|rlr|mr|shard|dist]
               [--mu MU] [--seed S] [--threads N] [--machines M]
               [--workers N] [--kill W@S]
               [--format text|json|csv]
               [--certificates full|summary|committed]
               [--chunk-len N] [--witness-out PATH]
               [--mask-timings] [--timings-csv PATH] [--out PATH]
    mrlr verify <instance> <report.json> [--witness TRANSCRIPT [--chunk K]]
               [--quiet]
    mrlr verify <batch.json> [--instances-dir DIR] [--quiet]
    mrlr batch <manifest> [--backend seq|rlr|mr|shard|dist] [--format json|csv]
               [--certificates full|summary] [--mask-timings] [--out PATH]
    mrlr serve --socket PATH [--max-inflight N] [--queue N]
               [--timeout-millis T] [--hold-millis H]
    mrlr client solve <algorithm> --socket PATH --input PATH
               [--backend seq|rlr|mr|shard|dist] [--mu MU] [--seed S]
               [--threads N] [--machines M] [--workers N]
               [--format text|json|csv] [--certificates full|summary]
               [--mask-timings] [--timeout-millis T] [--out PATH]
    mrlr client batch <manifest> --socket PATH [--backend seq|rlr|mr|shard|dist]
               [--format json|csv] [--certificates full|summary]
               [--mask-timings] [--timeout-millis T] [--out PATH]
    mrlr client verify <instance> <report.json> --socket PATH [--quiet]
    mrlr client ping|stats|shutdown --socket PATH

Run `mrlr list` for the algorithm keys and generator families (with the
backends each key supports). The cluster shape is auto-derived from the
instance and `--mu` exactly as the paper parameterizes it; `--threads`
(default: MRLR_THREADS, else sequential) changes wall-clock only, and the
three cluster backends (`mr` on the classic engine, `shard` on the
sharded runtime, `dist` on the master/worker control plane over real
processes; MRLR_BACKEND sets the default engine for `mr`) return
bit-identical solutions, metrics and witnesses. Under `--backend dist`,
`--workers` sets the worker-process count (default: MRLR_DIST_WORKERS,
else 2) and `--kill W@S` kills worker W at superstep S to demonstrate
fault-tolerant recovery — the report is bit-identical anyway.

Out-of-core runs never materialize the instance centrally: `mrlr gen
--pipe` streams a generated instance to stdout line by line, `--gen
FAMILY:knob=v,...` solves straight from the generator, `--input -`
reads stdin, and `--stream` (key `matching`, cluster backends) feeds
records directly into per-machine blocks as they parse — the report is
bit-identical to the materialized path. `gen --sweep SPEC` expands a
TOML-ish sweep file (one swept knob over a value list) into one
instance file per point. `--certificates committed` replaces a large
witness with a chunked Merkle commitment in the report and writes the
full transcript to `--witness-out`; `mrlr verify --witness TRANSCRIPT`
re-authenticates every chunk and replays the opened witness, and
`--chunk K` audits one chunk alone against its authentication path.

JSON reports embed a re-checkable certificate witness (dual vectors,
local-ratio stack transcripts, maximality blockers) unless
`--certificates summary` trims it. `mrlr verify` replays a stored report
against its instance — feasibility, witness, lower bound and ratio —
without re-running the solver, exiting 1 with a located error on any
mismatch. Given a batch document it audits every report slot against the
instances the document names (manifest-relative paths, resolved against
the document's directory — or --instances-dir when the document was
written away from its manifest), skips slots that recorded an error
(they claim nothing, matching `batch`'s exit-code semantics), and exits
1 if any audited slot fails.

`mrlr serve` runs the solver as a persistent daemon on a Unix socket:
thread pools and distribution snapshots stay warm across requests, at
most --max-inflight requests solve concurrently (--queue more may wait,
further arrivals are rejected with a `busy` error, exit 1), every wait
is bounded by --timeout-millis, and identical concurrent solves are
coalesced onto one solver run. `mrlr client` is the matching front end:
`client solve`/`client batch` read local files, solve on the daemon, and
print documents byte-identical to the offline commands; `client verify`
audits a stored report on the daemon; `ping`/`stats`/`shutdown` manage
it. Progress and serve statistics arrive as `note:` lines on stderr.
";

fn main() -> ExitCode {
    // Dist-worker re-entry: when a master spawned this process as a
    // worker, the rendezvous socket variable is set and the process
    // serves the shuffle-region protocol instead of parsing a command.
    if std::env::var_os(mrlr_mapreduce::dist::worker::SOCKET_ENV).is_some() {
        std::process::exit(mrlr_mapreduce::dist::worker::worker_main());
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command {
        "list" => cmd_list(rest),
        "gen" => cmd_gen(rest),
        "solve" => cmd_solve(rest),
        "verify" => cmd_verify(rest),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mrlr {command}: {}", e.message);
            if e.usage {
                eprint!("\n{USAGE}");
            }
            ExitCode::from(if e.usage { 2 } else { 1 })
        }
    }
}

struct CliError {
    message: String,
    usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: true,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: false,
        }
    }
}

/// Parsed `--flag value` / `--switch` arguments plus positionals.
struct Flags {
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

impl Flags {
    /// `switches` are value-less flags; every other `--flag` consumes the
    /// next token as its value.
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, CliError> {
        let mut positional = Vec::new();
        let mut named = Vec::new();
        let mut it = args.iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if switches.contains(&name) {
                    named.push((name.to_string(), "true".to_string()));
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?;
                    named.push((name.to_string(), value.clone()));
                }
            } else {
                positional.push(tok.clone());
            }
        }
        Ok(Flags { positional, named })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let idx = self.named.iter().position(|(n, _)| n == name)?;
        Some(self.named.remove(idx).1)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, CliError> {
        match self.take(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("bad value `{raw}` for --{name}"))),
        }
    }

    fn finish(self) -> Result<Vec<String>, CliError> {
        if let Some((name, _)) = self.named.first() {
            return Err(CliError::usage(format!("unknown flag --{name}")));
        }
        Ok(self.positional)
    }
}

fn write_output(out: Option<String>, content: &str) -> Result<(), CliError> {
    match out {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(&path, content)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}"))),
    }
}

fn timing_mode(flags: &mut Flags) -> TimingMode {
    if flags.take("mask-timings").is_some() {
        TimingMode::Masked
    } else {
        TimingMode::Real
    }
}

/// `--backend` for `solve` and `batch`, parsed against [`Backend::ALL`]
/// (the single source of truth for backend names — `mrlr list` and the
/// README table derive from the same slice); `mr` is the default, and
/// the cluster backends (`mr`/`shard`/`dist`) are bit-identical.
fn parse_backend(flags: &mut Flags) -> Result<Backend, CliError> {
    match flags.take("backend") {
        None => Ok(Backend::Mr),
        Some(raw) => Backend::ALL
            .into_iter()
            .find(|b| b.to_string() == raw)
            .ok_or_else(|| {
                let names: Vec<String> = Backend::ALL.iter().map(Backend::to_string).collect();
                CliError::usage(format!(
                    "unknown backend `{raw}` (expected one of: {})",
                    names.join(", ")
                ))
            }),
    }
}

/// `--kill W@S`: kill worker `W` when it acknowledges superstep `S`
/// (dist backend only — the master recovers it and the run completes
/// bit-identically).
fn parse_kill(flags: &mut Flags) -> Result<Option<WorkerKill>, CliError> {
    let Some(raw) = flags.take("kill") else {
        return Ok(None);
    };
    let parsed = raw.split_once('@').and_then(|(w, s)| {
        Some(WorkerKill {
            worker: w.parse().ok()?,
            superstep: s.parse().ok()?,
        })
    });
    parsed.map(Some).ok_or_else(|| {
        CliError::usage(format!(
            "bad value `{raw}` for --kill (expected <worker>@<superstep>, e.g. 1@3)"
        ))
    })
}

fn certificate_mode(flags: &mut Flags) -> Result<CertificateMode, CliError> {
    match flags.take("certificates").as_deref() {
        None | Some("full") => Ok(CertificateMode::Full),
        Some("summary") => Ok(CertificateMode::Summary),
        Some(other) => Err(CliError::usage(format!(
            "unknown certificate mode `{other}` (expected full or summary)"
        ))),
    }
}

/// Default chunk length for `--certificates committed`.
const DEFAULT_CHUNK_LEN: usize = 256;

/// `--certificates committed`: replace the report's witness with a
/// chunked Merkle commitment and write the openable transcript sidecar
/// to `witness_out`.
struct CommitRequest {
    chunk_len: usize,
    witness_out: String,
}

/// `--certificates full|summary|committed` plus the commitment knobs
/// (`solve` only — `batch` and the client keep the two-mode
/// [`certificate_mode`]).
fn solve_certificate_flags(
    flags: &mut Flags,
) -> Result<(CertificateMode, Option<CommitRequest>), CliError> {
    let chunk_len = flags.take_parsed::<usize>("chunk-len")?;
    let witness_out = flags.take("witness-out");
    let mode = flags.take("certificates");
    match mode.as_deref() {
        Some("committed") => {
            let witness_out = witness_out.ok_or_else(|| {
                CliError::usage(
                    "--certificates committed needs --witness-out <path> for the \
                     transcript sidecar (without it the commitment could never be opened)",
                )
            })?;
            let chunk_len = chunk_len.unwrap_or(DEFAULT_CHUNK_LEN);
            if chunk_len == 0 {
                return Err(CliError::usage("--chunk-len must be at least 1"));
            }
            Ok((
                CertificateMode::Full,
                Some(CommitRequest {
                    chunk_len,
                    witness_out,
                }),
            ))
        }
        None | Some("full") | Some("summary") => {
            if chunk_len.is_some() || witness_out.is_some() {
                return Err(CliError::usage(
                    "--chunk-len/--witness-out require --certificates committed",
                ));
            }
            match mode.as_deref() {
                Some("summary") => Ok((CertificateMode::Summary, None)),
                _ => Ok((CertificateMode::Full, None)),
            }
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown certificate mode `{other}` (expected full, summary or committed)"
        ))),
    }
}

// ---------------------------------------------------------------- list --

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &[])?;
    let format = flags.take("format").unwrap_or_else(|| "text".into());
    if !flags.finish()?.is_empty() {
        return Err(CliError::usage("list takes no positional arguments"));
    }
    let registry = Registry::with_defaults();
    match format.as_str() {
        "text" => {
            println!("algorithms (mrlr solve <key>):");
            for name in registry.algorithms() {
                let driver = registry.get(name).expect("Mr driver registered");
                let backends: Vec<String> = registry
                    .backends(name)
                    .into_iter()
                    .map(|b| b.to_string())
                    .collect();
                let info = registry.info(name).expect("paper key has an info row");
                println!(
                    "  {name:<18} {:<22} backends: {:<10} {} (ratio {}, rounds {})",
                    driver.instance_kind().to_string(),
                    backends.join(","),
                    info.theorem,
                    info.ratio,
                    info.rounds,
                );
            }
            println!("\ngenerator families (mrlr gen <family>):");
            for spec in workloads::FAMILIES {
                println!(
                    "  {:<18} {:<22} {}",
                    spec.name,
                    spec.kind.to_string(),
                    spec.description
                );
            }
            Ok(())
        }
        "json" => {
            let algorithms = registry
                .algorithms()
                .into_iter()
                .map(|name| {
                    let driver = registry.get(name).expect("Mr driver registered");
                    let info = registry.info(name).expect("paper key has an info row");
                    Json::Obj(vec![
                        ("key", Json::str(name)),
                        (
                            "instance_kind",
                            Json::str(driver.instance_kind().to_string()),
                        ),
                        (
                            "backends",
                            Json::Arr(
                                registry
                                    .backends(name)
                                    .into_iter()
                                    .map(|b| Json::str(b.to_string()))
                                    .collect(),
                            ),
                        ),
                        ("theorem", Json::str(info.theorem)),
                        ("rounds", Json::str(info.rounds)),
                        ("space", Json::str(info.space)),
                        ("ratio", Json::str(info.ratio)),
                        ("witness", Json::str(info.witness)),
                    ])
                })
                .collect();
            let families = workloads::FAMILIES
                .iter()
                .map(|spec| {
                    Json::Obj(vec![
                        ("name", Json::str(spec.name)),
                        ("kind", Json::str(spec.kind.to_string())),
                        ("description", Json::str(spec.description)),
                    ])
                })
                .collect();
            print!(
                "{}",
                Json::Obj(vec![
                    ("algorithms", Json::Arr(algorithms)),
                    ("families", Json::Arr(families)),
                ])
                .render()
            );
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown format `{other}`"))),
    }
}

// ----------------------------------------------------------------- gen --

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["unweighted", "pipe"])?;
    let pipe = flags.take("pipe").is_some();
    if let Some(spec_path) = flags.take("sweep") {
        if pipe {
            return Err(CliError::usage(
                "--sweep writes one file per point; it cannot combine with --pipe",
            ));
        }
        let out_dir = flags.take("out-dir").unwrap_or_else(|| ".".into());
        if !flags.finish()?.is_empty() {
            return Err(CliError::usage(
                "gen --sweep takes no positional arguments (family and knobs live in the spec)",
            ));
        }
        return gen_sweep(&spec_path, &out_dir);
    }
    let mut params = GenParams::default();
    if let Some(n) = flags.take_parsed("n")? {
        params.n = n;
    }
    params.m = flags.take_parsed("m")?;
    if let Some(c) = flags.take_parsed("c")? {
        params.c = c;
    }
    if let Some(g) = flags.take_parsed("gamma")? {
        params.gamma = g;
    }
    if let Some(f) = flags.take_parsed("f")? {
        params.f = f;
    }
    if let Some(d) = flags.take_parsed("delta")? {
        params.delta = d;
    }
    if let Some(l) = flags.take_parsed("max-len")? {
        params.max_len = l;
    }
    params.left = flags.take_parsed("left")?;
    if let Some(w) = flags.take_parsed("w-min")? {
        params.w_min = w;
    }
    if let Some(w) = flags.take_parsed("w-max")? {
        params.w_max = w;
    }
    params.unweighted = flags.take("unweighted").is_some();
    if let Some(e) = flags.take_parsed("eps")? {
        params.eps = e;
    }
    if let Some(b) = flags.take_parsed("b-max")? {
        params.b_max = b;
    }
    if let Some(s) = flags.take_parsed("seed")? {
        params.seed = s;
    }
    let out = flags.take("out");
    if pipe && out.is_some() {
        return Err(CliError::usage("--pipe streams to stdout; drop --out"));
    }
    let positional = flags.finish()?;
    let [family] = positional.as_slice() else {
        return Err(CliError::usage("gen needs exactly one <family> argument"));
    };
    let instance = workloads::build(family, &params).map_err(CliError::usage)?;
    if pipe {
        // Stream line-by-line — byte-identical to the --out rendering
        // (write_instance is render_instance's underlying writer), but
        // without ever holding the whole document in memory.
        let stdout = std::io::stdout();
        let mut w = std::io::BufWriter::new(stdout.lock());
        io::write_instance(&mut w, &instance)
            .and_then(|()| std::io::Write::flush(&mut w))
            .map_err(|e| CliError::runtime(format!("cannot write to stdout: {e}")))
    } else {
        write_output(out, &io::render_instance(&instance))
    }
}

/// `gen --sweep`: expands a sweep-spec file into one instance file per
/// swept value, streamed straight to disk.
fn gen_sweep(spec_path: &str, out_dir: &str) -> Result<(), CliError> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError::runtime(format!("cannot read {spec_path}: {e}")))?;
    let spec =
        SweepSpec::parse(&text).map_err(|e| CliError::runtime(format!("{spec_path}: {e}")))?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError::runtime(format!("cannot create {out_dir}: {e}")))?;
    for point in spec.points() {
        let instance = spec.build(&point).map_err(CliError::runtime)?;
        let path = std::path::Path::new(out_dir).join(&point.out);
        let file = std::fs::File::create(&path)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        let mut w = std::io::BufWriter::new(file);
        io::write_instance(&mut w, &instance)
            .and_then(|()| std::io::Write::flush(&mut w))
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote {} ({} = {})", path.display(), spec.knob, point.value);
    }
    Ok(())
}

// --------------------------------------------------------------- solve --

fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    io::parse_instance(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn configure(
    instance: &Instance,
    mu: f64,
    seed: u64,
    threads: Option<usize>,
    machines: Option<usize>,
) -> MrConfig {
    let mut cfg = instance.auto_config(mu, seed);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    if let Some(m) = machines {
        cfg = cfg.with_machines(m);
    }
    cfg
}

/// Where `solve` takes its instance from.
enum Source {
    /// `--input <path>`.
    File(String),
    /// `--input -`.
    Stdin,
    /// `--gen FAMILY[:knob=v,...]` — built in memory, never on disk.
    Gen(String),
}

fn cmd_solve(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["mask-timings", "stream"])?;
    let timing = timing_mode(&mut flags);
    let (certificates, commit_request) = solve_certificate_flags(&mut flags)?;
    let source = match (flags.take("input"), flags.take("gen")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage("--input and --gen are mutually exclusive"))
        }
        (Some(path), None) if path == "-" => Source::Stdin,
        (Some(path), None) => Source::File(path),
        (None, Some(spec)) => Source::Gen(spec),
        (None, None) => {
            return Err(CliError::usage(
                "solve needs --input <path|-> or --gen <family[:knob=v,...]>",
            ))
        }
    };
    let stream = flags.take("stream").is_some();
    let backend = parse_backend(&mut flags)?;
    let mu = flags.take_parsed("mu")?.unwrap_or(io::manifest::DEFAULT_MU);
    if !(mu.is_finite() && mu > 0.0) {
        return Err(CliError::usage(format!(
            "--mu must be positive and finite (got {mu})"
        )));
    }
    let seed = flags
        .take_parsed("seed")?
        .unwrap_or(io::manifest::DEFAULT_SEED);
    let threads = flags.take_parsed("threads")?;
    let machines = flags.take_parsed("machines")?;
    let workers = flags.take_parsed("workers")?;
    let kill = parse_kill(&mut flags)?;
    let format = flags.take("format").unwrap_or_else(|| "text".into());
    let timings_csv = flags.take("timings-csv");
    let out = flags.take("out");
    let positional = flags.finish()?;
    let [algorithm] = positional.as_slice() else {
        return Err(CliError::usage(
            "solve needs exactly one <algorithm> argument",
        ));
    };

    let report = if stream {
        if algorithm != "matching" {
            return Err(CliError::usage(format!(
                "--stream supports the `matching` key only (got `{algorithm}`); \
                 other keys use the materialized path"
            )));
        }
        // The cluster shape derives from the header counts (n, m) —
        // exactly the numbers `Instance::auto_config` would use — so the
        // streamed report is bit-identical to the materialized one.
        let configure = move |n: usize, m: usize| {
            let mut cfg = MrConfig::auto(n, m.max(1), mu, seed);
            if let Some(t) = threads {
                cfg = cfg.with_threads(t);
            }
            if let Some(m) = machines {
                cfg = cfg.with_machines(m);
            }
            if backend == Backend::Dist {
                cfg = cfg.with_spawn(SpawnKind::Process);
            }
            if let Some(w) = workers {
                cfg = cfg.with_workers(w);
            }
            if let Some(k) = kill {
                cfg = cfg.with_worker_kill(k);
            }
            cfg
        };
        let streamed = match source {
            Source::File(path) => {
                let file = std::fs::File::open(&path)
                    .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
                api::solve_matching_stream(file, io::DEFAULT_BUF_LEN, backend, configure)
                    .map_err(|e| CliError::runtime(format!("{path}: {e}")))?
            }
            Source::Stdin => api::solve_matching_stream(
                std::io::stdin().lock(),
                io::DEFAULT_BUF_LEN,
                backend,
                configure,
            )
            .map_err(|e| CliError::runtime(format!("<stdin>: {e}")))?,
            Source::Gen(spec) => {
                let instance = workloads::build_spec(&spec).map_err(CliError::usage)?;
                let Instance::Graph(g) = &instance else {
                    return Err(CliError::runtime(format!(
                        "--stream needs a `graph` instance; `{spec}` generates {}",
                        instance.kind()
                    )));
                };
                api::solve_matching_stream_from_graph(g, backend, configure)
                    .map_err(|e| CliError::runtime(format!("{spec}: {e}")))?
            }
        };
        streamed.map(Solution::Matching)
    } else {
        let instance = match source {
            Source::File(path) => load_instance(&path)?,
            Source::Stdin => {
                let mut text = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut text)
                    .map_err(|e| CliError::runtime(format!("cannot read stdin: {e}")))?;
                io::parse_instance(&text).map_err(|e| CliError::runtime(format!("<stdin>: {e}")))?
            }
            Source::Gen(spec) => workloads::build_spec(&spec).map_err(CliError::usage)?,
        };
        let mut cfg = configure(&instance, mu, seed, threads, machines);
        if backend == Backend::Dist {
            // An explicit dist solve exercises the real thing: worker
            // processes over Unix sockets (this binary re-enters as the
            // worker; see the hook at the top of `main`).
            cfg = cfg.with_spawn(SpawnKind::Process);
        }
        if let Some(w) = workers {
            cfg = cfg.with_workers(w);
        }
        if let Some(k) = kill {
            cfg = cfg.with_worker_kill(k);
        }
        Registry::with_defaults()
            .solve_with(algorithm, backend, &instance, &cfg)
            .map_err(|e| CliError::runtime(e.to_string()))?
    };
    let mut report = report;

    if let Some(request) = &commit_request {
        let commitment = api::commit_witness(&report.certificate.witness, request.chunk_len)
            .map_err(|e| CliError::runtime(format!("cannot commit witness: {e}")))?;
        std::fs::write(&request.witness_out, &commitment.transcript)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", request.witness_out)))?;
        report.certificate.witness = commitment.witness;
    }

    // Fault recoveries are host-level observables (never serialized into
    // the report, which stays bit-identical to a clean run): narrate
    // them on stderr so operators — and the fault-injection smoke — can
    // see the kill actually fired.
    if let Some(metrics) = report.metrics.as_ref() {
        for line in Timeline::from_metrics(metrics).annotations() {
            eprintln!("note: {line}");
        }
    }

    if let Some(path) = timings_csv {
        let csv = report
            .metrics
            .as_ref()
            .map(|m| Timeline::from_metrics(m).timing_csv())
            .unwrap_or_else(|| {
                "pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew\n"
                    .to_string()
            });
        std::fs::write(&path, csv)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }

    let content = match format.as_str() {
        "json" => io::report_json_with(&report, timing, certificates).render(),
        "csv" => format!(
            "{}\n{}\n",
            io::REPORT_CSV_HEADER,
            io::report_csv_row(&report, timing)
        ),
        "text" => io::report_text(&report, timing),
        other => return Err(CliError::usage(format!("unknown format `{other}`"))),
    };
    write_output(out, &content)
}

// -------------------------------------------------------------- verify --

/// Audits one stored report against its instance, returning the check
/// descriptions. `location` prefixes every error (a path, or a batch
/// grid position).
fn audit_stored(
    instance: &Instance,
    stored: &io::StoredReport,
    location: &str,
) -> Result<Vec<String>, CliError> {
    let Some(witness) = &stored.witness else {
        return Err(CliError::runtime(format!(
            "{location}: certificate has no witness — re-solve with --certificates full \
             to produce a re-verifiable report"
        )));
    };
    witness::audit(
        instance,
        &stored.algorithm,
        &stored.solution,
        &stored.claims,
        witness,
    )
    .map_err(|e| CliError::runtime(format!("{location}: {e}")))
}

fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["quiet"])?;
    let quiet = flags.take("quiet").is_some();
    let instances_dir = flags.take("instances-dir");
    let witness_path = flags.take("witness");
    let chunk = flags.take_parsed::<usize>("chunk")?;
    if chunk.is_some() && witness_path.is_none() {
        return Err(CliError::usage("--chunk needs --witness <transcript>"));
    }
    let positional = flags.finish()?;
    match positional.as_slice() {
        [instance_path, report_path] => {
            if instances_dir.is_some() {
                return Err(CliError::usage(
                    "--instances-dir only applies to batch documents",
                ));
            }
            let instance = load_instance(instance_path)?;
            let text = std::fs::read_to_string(report_path)
                .map_err(|e| CliError::runtime(format!("cannot read {report_path}: {e}")))?;
            let stored = io::parse_report(&text)
                .map_err(|e| CliError::runtime(format!("{report_path}: {e}")))?;
            let checks = match &witness_path {
                Some(transcript_path) => {
                    audit_committed_stored(&instance, &stored, report_path, transcript_path, chunk)?
                }
                None => audit_stored(&instance, &stored, report_path)?,
            };
            if !quiet {
                for check in &checks {
                    println!("ok: {check}");
                }
                println!(
                    "verified: {} ({}) report against {}",
                    stored.algorithm, stored.backend, instance_path
                );
            }
            Ok(())
        }
        [batch_path] => {
            if witness_path.is_some() {
                return Err(CliError::usage(
                    "--witness applies to single-report verification, not batch documents",
                ));
            }
            verify_batch(batch_path, instances_dir.as_deref(), quiet)
        }
        _ => Err(CliError::usage(
            "verify needs <instance> and <report.json> arguments (or one <batch.json>)",
        )),
    }
}

/// `verify --witness`: audits a committed-witness report against its
/// transcript sidecar — the full open-and-replay audit, or (with
/// `--chunk K`) a single chunk against its authentication path.
fn audit_committed_stored(
    instance: &Instance,
    stored: &io::StoredReport,
    report_path: &str,
    transcript_path: &str,
    chunk: Option<usize>,
) -> Result<Vec<String>, CliError> {
    let Some(witness @ Witness::Committed { .. }) = &stored.witness else {
        return Err(CliError::runtime(format!(
            "{report_path}: --witness only applies to a committed-witness report \
             (this report stores a plain witness — verify it without --witness)"
        )));
    };
    let transcript = std::fs::read_to_string(transcript_path)
        .map_err(|e| CliError::runtime(format!("cannot read {transcript_path}: {e}")))?;
    match chunk {
        Some(index) => api::audit_chunk(witness, &transcript, index)
            .map(|check| vec![check])
            .map_err(|e| CliError::runtime(format!("{transcript_path}: {e}"))),
        None => api::audit_committed(
            instance,
            &stored.algorithm,
            &stored.solution,
            &stored.claims,
            witness,
            &transcript,
        )
        .map_err(|e| CliError::runtime(format!("{transcript_path}: {e}"))),
    }
}

/// Audits every report slot of a batch document against the instances it
/// names. The document records manifest-relative paths, so they resolve
/// relative to the document's directory by default (the natural layout:
/// the document written next to its manifest); when the document was
/// written elsewhere (`batch --out` into another directory),
/// `--instances-dir` points resolution at the manifest's directory
/// instead. Error slots are skipped — the batch already isolated them
/// and they make no claims — mirroring `batch`'s exit-code semantics;
/// any *failing* audit exits 1 with its grid location.
fn verify_batch(
    batch_path: &str,
    instances_dir: Option<&str>,
    quiet: bool,
) -> Result<(), CliError> {
    let text = std::fs::read_to_string(batch_path)
        .map_err(|e| CliError::runtime(format!("cannot read {batch_path}: {e}")))?;
    let root =
        io::parse_json(&text).map_err(|e| CliError::runtime(format!("{batch_path}: {e}")))?;
    if !io::is_batch_document(&root) {
        return Err(CliError::runtime(format!(
            "{batch_path} is a single report, not a batch document — pass its instance: \
             mrlr verify <instance> {batch_path}"
        )));
    }
    let batch =
        io::parse_batch(&text).map_err(|e| CliError::runtime(format!("{batch_path}: {e}")))?;
    let base = match instances_dir {
        Some(dir) => std::path::Path::new(dir),
        None => std::path::Path::new(batch_path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new(".")),
    };
    let instances: Vec<Instance> = batch
        .instances
        .iter()
        .map(|rel| load_instance(&base.join(rel).to_string_lossy()))
        .collect::<Result<_, _>>()?;

    let mut audited = 0usize;
    let mut skipped = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (i, per_instance) in batch.results.iter().enumerate() {
        for (j, slot) in per_instance.iter().enumerate() {
            let location = format!("{batch_path}: results[{i}][{j}]");
            match slot {
                io::BatchSlot::Error(e) => {
                    skipped += 1;
                    if !quiet {
                        println!("skip: results[{i}][{j}] recorded error: {e}");
                    }
                }
                io::BatchSlot::Report(stored) => {
                    match audit_stored(&instances[i], stored, &location) {
                        Ok(checks) => {
                            audited += 1;
                            if !quiet {
                                for check in &checks {
                                    println!("ok: results[{i}][{j}] {check}");
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("mrlr verify: {}", e.message);
                            failures.push(format!("results[{i}][{j}] ({})", stored.algorithm));
                        }
                    }
                }
            }
        }
    }
    if !failures.is_empty() {
        return Err(CliError::runtime(format!(
            "{} of {} report slots failed verification: {}",
            failures.len(),
            audited + failures.len(),
            failures.join(", ")
        )));
    }
    if !quiet {
        println!(
            "verified: {audited} report slots against {} instances ({skipped} error slots skipped)",
            batch.instances.len()
        );
    }
    Ok(())
}

// --------------------------------------------------------------- batch --

fn job_cfg(instance: &Instance, job: &io::JobSpec, backend: Backend) -> MrConfig {
    let cfg = configure(instance, job.mu, job.seed, job.threads, None);
    if backend == Backend::Dist {
        cfg.with_spawn(SpawnKind::Process)
    } else {
        cfg
    }
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["mask-timings"])?;
    let timing = timing_mode(&mut flags);
    let certificates = certificate_mode(&mut flags)?;
    let backend = parse_backend(&mut flags)?;
    let format = flags.take("format").unwrap_or_else(|| "json".into());
    let out = flags.take("out");
    let positional = flags.finish()?;
    let [manifest_path] = positional.as_slice() else {
        return Err(CliError::usage(
            "batch needs exactly one <manifest> argument",
        ));
    };

    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::runtime(format!("cannot read {manifest_path}: {e}")))?;
    let manifest = io::parse_manifest(&text)
        .map_err(|e| CliError::runtime(format!("{manifest_path}: {e}")))?;

    // Instance paths resolve relative to the manifest's directory, so a
    // manifest and its workload files travel together.
    let base = std::path::Path::new(manifest_path)
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."));
    let instances: Vec<Instance> = manifest
        .instances
        .iter()
        .map(|rel| load_instance(&base.join(rel).to_string_lossy()))
        .collect::<Result<_, _>>()?;

    let registry = Registry::with_defaults();
    // One solve_batch per instance: job cluster shapes are auto-derived
    // from each instance, and the batch scope still amortizes executor
    // warm-up and distribution across the jobs that share a shape.
    let results: io::BatchResults = instances
        .iter()
        .map(|instance| {
            let jobs: Vec<(&str, MrConfig)> = manifest
                .jobs
                .iter()
                .map(|job| (job.algorithm.as_str(), job_cfg(instance, job, backend)))
                .collect();
            registry
                .solve_batch_with(backend, std::slice::from_ref(instance), &jobs)
                .remove(0)
                .into_iter()
                .map(|slot| slot.map_err(|e| e.to_string()))
                .collect()
        })
        .collect();

    // The renderers are shared with `mrlr serve`, which is what keeps
    // served batch documents byte-identical to these offline ones.
    let content = match format.as_str() {
        "json" => io::batch_json(
            &manifest.instances,
            &manifest.jobs,
            &results,
            timing,
            certificates,
        )
        .render(),
        "csv" => io::batch_csv(&manifest.instances, &manifest.jobs, &results, timing),
        other => return Err(CliError::usage(format!("unknown format `{other}`"))),
    };
    write_output(out, &content)
}

// --------------------------------------------------------------- serve --

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &[])?;
    let socket = flags
        .take("socket")
        .ok_or_else(|| CliError::usage("serve needs --socket <path>"))?;
    let mut cfg = mrlr_serve::ServeConfig::new(socket);
    if let Some(n) = flags.take_parsed("max-inflight")? {
        if n == 0 {
            return Err(CliError::usage("--max-inflight must be at least 1"));
        }
        cfg.max_inflight = n;
    }
    if let Some(n) = flags.take_parsed("queue")? {
        cfg.queue = n;
    }
    if let Some(t) = flags.take_parsed::<u64>("timeout-millis")? {
        cfg.timeout = std::time::Duration::from_millis(t);
    }
    if let Some(h) = flags.take_parsed::<u64>("hold-millis")? {
        cfg.hold = std::time::Duration::from_millis(h);
    }
    // The daemon is this binary, so dist solves get real worker
    // processes via the same re-entry hook `mrlr solve --backend dist`
    // uses (workers are spawned and reaped per solve).
    cfg.dist_spawn = SpawnKind::Process;
    if !flags.finish()?.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    mrlr_serve::serve(cfg)
        .map(|_| ())
        .map_err(|e| CliError::runtime(e.to_string()))
}

// -------------------------------------------------------------- client --

/// `--format`/`--mask-timings`/`--certificates` for the remote
/// commands, translated into the wire-level rendering options the
/// daemon applies server-side.
fn render_opts(
    flags: &mut Flags,
    default_format: &str,
) -> Result<mrlr_serve::RenderOpts, CliError> {
    let mask = flags.take("mask-timings").is_some();
    let certificates = certificate_mode(&mut *flags)?;
    let format = match flags
        .take("format")
        .unwrap_or_else(|| default_format.into())
        .as_str()
    {
        "text" => mrlr_serve::ReportFormat::Text,
        "json" => mrlr_serve::ReportFormat::Json,
        "csv" => mrlr_serve::ReportFormat::Csv,
        other => return Err(CliError::usage(format!("unknown format `{other}`"))),
    };
    Ok(mrlr_serve::RenderOpts {
        format,
        mask_timings: mask,
        certificates_full: certificates == CertificateMode::Full,
    })
}

fn connect(flags: &mut Flags) -> Result<mrlr_serve::Client, CliError> {
    let socket = flags
        .take("socket")
        .ok_or_else(|| CliError::usage("client needs --socket <path>"))?;
    mrlr_serve::Client::connect(&socket)
        .map_err(|e| CliError::runtime(format!("cannot connect to {socket}: {e}")))
}

/// Runs a remote solve/batch conversation to its document, narrating
/// `note:` frames on stderr exactly like the offline commands narrate
/// their Timeline annotations.
fn run_served(
    client: &mut mrlr_serve::Client,
    request: &mrlr_serve::Request,
    out: Option<String>,
) -> Result<(), CliError> {
    let served = client
        .solve(request, &mut |line| eprintln!("note: {line}"))
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if served.coalesced {
        eprintln!("note: coalesced onto a concurrent identical request");
    }
    write_output(out, &served.content)
}

fn client_solve(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["mask-timings"])?;
    let render = render_opts(&mut flags, "text")?;
    let mut client = connect(&mut flags)?;
    let input = flags
        .take("input")
        .ok_or_else(|| CliError::usage("client solve needs --input <path>"))?;
    let backend = parse_backend(&mut flags)?;
    let mu = flags.take_parsed("mu")?.unwrap_or(io::manifest::DEFAULT_MU);
    if !(mu.is_finite() && mu > 0.0) {
        return Err(CliError::usage(format!(
            "--mu must be positive and finite (got {mu})"
        )));
    }
    let seed = flags
        .take_parsed("seed")?
        .unwrap_or(io::manifest::DEFAULT_SEED);
    let threads = flags.take_parsed::<u64>("threads")?;
    let machines = flags.take_parsed::<u64>("machines")?;
    let workers = flags.take_parsed::<u64>("workers")?;
    let timeout_millis = flags.take_parsed::<u64>("timeout-millis")?.unwrap_or(0);
    let out = flags.take("out");
    let positional = flags.finish()?;
    let [algorithm] = positional.as_slice() else {
        return Err(CliError::usage(
            "client solve needs exactly one <algorithm> argument",
        ));
    };
    let instance_text = std::fs::read_to_string(&input)
        .map_err(|e| CliError::runtime(format!("cannot read {input}: {e}")))?;
    let request = mrlr_serve::Request::Solve {
        spec: mrlr_serve::SolveSpec {
            algorithm: algorithm.clone(),
            backend: backend.to_string(),
            instance_text,
            mu_bits: mu.to_bits(),
            seed,
            threads,
            machines,
            workers,
        },
        render,
        timeout_millis,
    };
    run_served(&mut client, &request, out)
}

fn client_batch(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["mask-timings"])?;
    let render = render_opts(&mut flags, "json")?;
    let mut client = connect(&mut flags)?;
    let backend = parse_backend(&mut flags)?;
    let timeout_millis = flags.take_parsed::<u64>("timeout-millis")?.unwrap_or(0);
    let out = flags.take("out");
    let positional = flags.finish()?;
    let [manifest_path] = positional.as_slice() else {
        return Err(CliError::usage(
            "client batch needs exactly one <manifest> argument",
        ));
    };
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::runtime(format!("cannot read {manifest_path}: {e}")))?;
    let manifest = io::parse_manifest(&text)
        .map_err(|e| CliError::runtime(format!("{manifest_path}: {e}")))?;
    // The client reads the instance files (manifest-relative, like
    // `mrlr batch`) and ships their text; the daemon never touches the
    // local filesystem.
    let base = std::path::Path::new(manifest_path)
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."));
    let instances = manifest
        .instances
        .iter()
        .map(|rel| {
            let path = base.join(rel);
            std::fs::read_to_string(&path)
                .map(|text| (rel.clone(), text))
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let jobs = manifest
        .jobs
        .iter()
        .map(|j| mrlr_serve::BatchJob {
            algorithm: j.algorithm.clone(),
            mu_bits: j.mu.to_bits(),
            seed: j.seed,
            threads: j.threads.map(|t| t as u64),
        })
        .collect();
    let request = mrlr_serve::Request::Batch {
        instances,
        jobs,
        backend: backend.to_string(),
        render,
        timeout_millis,
    };
    run_served(&mut client, &request, out)
}

fn client_verify(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::parse(args, &["quiet"])?;
    let quiet = flags.take("quiet").is_some();
    let mut client = connect(&mut flags)?;
    let positional = flags.finish()?;
    let [instance_path, report_path] = positional.as_slice() else {
        return Err(CliError::usage(
            "client verify needs <instance> and <report.json> arguments",
        ));
    };
    let instance_text = std::fs::read_to_string(instance_path)
        .map_err(|e| CliError::runtime(format!("cannot read {instance_path}: {e}")))?;
    let report_json = std::fs::read_to_string(report_path)
        .map_err(|e| CliError::runtime(format!("cannot read {report_path}: {e}")))?;
    let (algorithm, backend, checks) = client
        .verify(instance_text, report_json)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if !quiet {
        for check in &checks {
            println!("ok: {check}");
        }
        println!("verified: {algorithm} ({backend}) report against {instance_path}");
    }
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let (action, rest) = match args.split_first() {
        Some((a, rest)) => (a.as_str(), rest),
        None => {
            return Err(CliError::usage(
                "client needs an action: solve, batch, verify, ping, stats or shutdown",
            ))
        }
    };
    match action {
        "solve" => client_solve(rest),
        "batch" => client_batch(rest),
        "verify" => client_verify(rest),
        "ping" => {
            let mut flags = Flags::parse(rest, &[])?;
            let mut client = connect(&mut flags)?;
            let nonce = flags.take_parsed::<u64>("nonce")?.unwrap_or(0);
            flags.finish()?;
            let echoed = client
                .ping(nonce)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if echoed != nonce {
                return Err(CliError::runtime(format!(
                    "daemon echoed nonce {echoed}, expected {nonce}"
                )));
            }
            println!("pong {echoed}");
            Ok(())
        }
        "stats" => {
            let mut flags = Flags::parse(rest, &[])?;
            let mut client = connect(&mut flags)?;
            flags.finish()?;
            let stats = client
                .stats()
                .map_err(|e| CliError::runtime(e.to_string()))?;
            print!(
                "{}",
                Json::Obj(vec![
                    ("requests", Json::U64(stats.requests)),
                    ("solver_runs", Json::U64(stats.solver_runs)),
                    ("coalesce_hits", Json::U64(stats.coalesce_hits)),
                    ("busy_rejects", Json::U64(stats.busy_rejects)),
                    ("timeouts", Json::U64(stats.timeouts)),
                    ("inflight_high_water", Json::U64(stats.inflight_high_water)),
                    (
                        "queue_depth_high_water",
                        Json::U64(stats.queue_depth_high_water),
                    ),
                ])
                .render()
            );
            Ok(())
        }
        "shutdown" => {
            let mut flags = Flags::parse(rest, &[])?;
            let mut client = connect(&mut flags)?;
            flags.finish()?;
            client
                .shutdown()
                .map_err(|e| CliError::runtime(e.to_string()))?;
            println!("daemon drained and exited");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown client action `{other}`"))),
    }
}
