//! Out-of-core front-end equivalences: for every registry key the
//! report solved straight from the generator (`solve --gen SPEC`), from
//! a pipe (`gen --pipe | solve --input -`), and — for `matching` — from
//! the streamed ingest path (`solve --stream`) is byte-identical
//! (witnesses included) to the report solved from the instance file, on
//! every `MRLR_BACKEND={mr,shard,dist}` × `MRLR_THREADS={1,4}` leg.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const MATRIX: &str = include_str!("smoke_matrix.txt");

fn workdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrlr-genpipe-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One smoke-matrix row, with its gen flags re-expressed as a
/// `family:knob=v,...` spec string (the `--gen` vocabulary).
struct Row {
    key: String,
    family: String,
    gen_args: Vec<String>,
    solve_args: Vec<String>,
    spec: String,
}

fn matrix() -> Vec<Row> {
    let rows: Vec<Row> = MATRIX
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let parts: Vec<&str> = line.split('|').collect();
            assert_eq!(parts.len(), 4, "bad matrix line: {line}");
            let family = parts[1].trim().to_string();
            let gen_args: Vec<String> = parts[2].split_whitespace().map(String::from).collect();
            // `--n 30 --m 300` → `n=30,m=300`; bare `--unweighted` stays
            // a bare knob.
            let mut knobs: Vec<String> = Vec::new();
            let mut it = gen_args.iter();
            while let Some(flag) = it.next() {
                let name = flag.strip_prefix("--").unwrap();
                if name == "unweighted" {
                    knobs.push(name.to_string());
                } else {
                    knobs.push(format!("{name}={}", it.next().unwrap()));
                }
            }
            let spec = if knobs.is_empty() {
                family.clone()
            } else {
                format!("{family}:{}", knobs.join(","))
            };
            Row {
                key: parts[0].trim().to_string(),
                family,
                gen_args,
                solve_args: parts[3].split_whitespace().map(String::from).collect(),
                spec,
            }
        })
        .collect();
    assert_eq!(rows.len(), 10, "one matrix row per registry key");
    rows
}

fn mrlr_cmd(dir: &Path, engine: &str, threads: &str, args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mrlr"));
    cmd.args(args)
        .current_dir(dir)
        .env("MRLR_BACKEND", engine)
        .env("MRLR_THREADS", threads);
    cmd
}

fn mrlr(dir: &Path, engine: &str, threads: &str, args: &[&str]) -> String {
    let output = mrlr_cmd(dir, engine, threads, args)
        .output()
        .expect("spawn mrlr");
    assert!(
        output.status.success(),
        "mrlr {args:?} failed (engine={engine}, threads={threads}):\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Runs `mrlr args…` with `stdin_bytes` piped in.
fn mrlr_stdin(dir: &Path, engine: &str, threads: &str, args: &[&str], stdin_bytes: &str) -> String {
    let mut child = mrlr_cmd(dir, engine, threads, args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mrlr");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin_bytes.as_bytes())
        .unwrap();
    let output = child.wait_with_output().expect("wait mrlr");
    assert!(
        output.status.success(),
        "mrlr {args:?} (stdin) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

const LEGS: [(&str, &str); 6] = [
    ("mr", "1"),
    ("mr", "4"),
    ("shard", "1"),
    ("shard", "4"),
    ("dist", "1"),
    ("dist", "4"),
];

#[test]
fn solve_from_generator_is_bit_identical_to_solve_from_file() {
    let dir = workdir("gen");
    for row in matrix() {
        let input = format!("{}.inst", row.key);
        let mut gen: Vec<&str> = vec!["gen", &row.family];
        gen.extend(row.gen_args.iter().map(String::as_str));
        gen.extend(["--out", &input]);
        mrlr(&dir, "mr", "1", &gen);

        let mut reference: Option<String> = None;
        for (engine, threads) in LEGS {
            let mut file_args: Vec<&str> = vec!["solve", &row.key, "--input", &input];
            file_args.extend(row.solve_args.iter().map(String::as_str));
            file_args.extend(["--format", "json", "--mask-timings"]);
            let from_file = mrlr(&dir, engine, threads, &file_args);

            let mut gen_args: Vec<&str> = vec!["solve", &row.key, "--gen", &row.spec];
            gen_args.extend(row.solve_args.iter().map(String::as_str));
            gen_args.extend(["--format", "json", "--mask-timings"]);
            let from_gen = mrlr(&dir, engine, threads, &gen_args);

            assert_eq!(
                from_gen, from_file,
                "{}: --gen diverged from --input (engine={engine}, threads={threads})",
                row.key
            );
            // The masked report is also identical across every leg.
            match &reference {
                None => reference = Some(from_file),
                Some(want) => assert_eq!(
                    &from_file, want,
                    "{}: report diverged across legs at engine={engine}, threads={threads}",
                    row.key
                ),
            }
        }
    }
}

#[test]
fn gen_pipe_into_solve_stdin_matches_file_path() {
    let dir = workdir("pipe");
    for row in matrix() {
        let input = format!("{}.inst", row.key);
        let mut gen: Vec<&str> = vec!["gen", &row.family];
        gen.extend(row.gen_args.iter().map(String::as_str));
        gen.extend(["--out", &input]);
        mrlr(&dir, "mr", "1", &gen);
        let on_disk = std::fs::read_to_string(dir.join(&input)).unwrap();

        // The piped rendering is byte-identical to the file rendering.
        let mut pipe: Vec<&str> = vec!["gen", &row.family];
        pipe.extend(row.gen_args.iter().map(String::as_str));
        pipe.push("--pipe");
        let piped = mrlr(&dir, "mr", "1", &pipe);
        assert_eq!(piped, on_disk, "{}: --pipe diverged from --out", row.family);

        // And solving from stdin is byte-identical to solving the file.
        let mut file_args: Vec<&str> = vec!["solve", &row.key, "--input", &input];
        file_args.extend(row.solve_args.iter().map(String::as_str));
        file_args.extend(["--format", "json", "--mask-timings"]);
        let from_file = mrlr(&dir, "mr", "1", &file_args);

        let mut stdin_args: Vec<&str> = vec!["solve", &row.key, "--input", "-"];
        stdin_args.extend(row.solve_args.iter().map(String::as_str));
        stdin_args.extend(["--format", "json", "--mask-timings"]);
        let from_stdin = mrlr_stdin(&dir, "mr", "1", &stdin_args, &piped);
        assert_eq!(
            from_stdin, from_file,
            "{}: stdin solve diverged from file solve",
            row.key
        );
    }
}

#[test]
fn streamed_matching_solve_is_bit_identical_on_every_backend() {
    let dir = workdir("stream");
    mrlr(
        &dir,
        "mr",
        "1",
        &["gen", "densified", "--n", "40", "--out", "m.inst"],
    );
    let rendered = std::fs::read_to_string(dir.join("m.inst")).unwrap();
    for backend in ["mr", "shard", "dist"] {
        for threads in ["1", "4"] {
            let base = [
                "solve",
                "matching",
                "--backend",
                backend,
                "--format",
                "json",
                "--mask-timings",
            ];
            let materialized = mrlr(
                &dir,
                "mr",
                threads,
                &[&base[..], &["--input", "m.inst"]].concat(),
            );
            let streamed_file = mrlr(
                &dir,
                "mr",
                threads,
                &[&base[..], &["--input", "m.inst", "--stream"]].concat(),
            );
            let streamed_gen = mrlr(
                &dir,
                "mr",
                threads,
                &[&base[..], &["--gen", "densified:n=40", "--stream"]].concat(),
            );
            let streamed_stdin = mrlr_stdin(
                &dir,
                "mr",
                threads,
                &[&base[..], &["--input", "-", "--stream"]].concat(),
                &rendered,
            );
            assert_eq!(streamed_file, materialized, "{backend}/{threads}: file");
            assert_eq!(streamed_gen, materialized, "{backend}/{threads}: gen");
            assert_eq!(streamed_stdin, materialized, "{backend}/{threads}: stdin");
        }
    }
}

#[test]
fn stream_rejects_unsupported_modes_with_usage_errors() {
    let dir = workdir("stream-errors");
    mrlr(
        &dir,
        "mr",
        "1",
        &["gen", "densified", "--n", "20", "--out", "g.inst"],
    );
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_mrlr"))
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spawn mrlr")
    };
    // Non-matching key: usage error (exit 2).
    let out = run(&["solve", "vertex-cover", "--input", "g.inst", "--stream"]);
    assert_eq!(out.status.code(), Some(2));
    // Non-cluster backend: runtime error (exit 1) from the API guard.
    let out = run(&[
        "solve",
        "matching",
        "--input",
        "g.inst",
        "--stream",
        "--backend",
        "seq",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cluster backend"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
