//! End-to-end smoke tests of the `mrlr` binary: `gen → solve → verify →
//! batch` for every registry key, with masked JSON reports (full,
//! re-verifiable certificates) diffed against golden files and asserted
//! bit-identical across `MRLR_THREADS={1,4}` — the same contract the CI
//! smoke job enforces via `scripts/cli_smoke.sh`. Every golden report is
//! additionally re-verified offline by `mrlr verify`, so the checked-in
//! artifacts stay independently auditable.
//!
//! Regenerate the golden files after an intentional format change with
//! `MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli`.

use std::path::{Path, PathBuf};
use std::process::Command;

const MATRIX: &str = include_str!("smoke_matrix.txt");

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn workdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrlr-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `mrlr args…` with `MRLR_THREADS=threads`, asserting success.
fn mrlr(dir: &Path, threads: &str, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_mrlr"))
        .args(args)
        .current_dir(dir)
        .env("MRLR_THREADS", threads)
        .output()
        .expect("spawn mrlr");
    assert!(
        output.status.success(),
        "mrlr {args:?} failed (threads={threads}):\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Compares `actual` against the checked-in golden file, or rewrites it
/// when `MRLR_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("MRLR_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with MRLR_UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate \
         with MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli"
    );
}

struct MatrixRow {
    key: String,
    family: String,
    gen_args: Vec<String>,
    solve_args: Vec<String>,
}

fn matrix() -> Vec<MatrixRow> {
    let rows: Vec<MatrixRow> = MATRIX
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let parts: Vec<&str> = line.split('|').collect();
            assert_eq!(parts.len(), 4, "bad matrix line: {line}");
            MatrixRow {
                key: parts[0].trim().to_string(),
                family: parts[1].trim().to_string(),
                gen_args: parts[2].split_whitespace().map(String::from).collect(),
                solve_args: parts[3].split_whitespace().map(String::from).collect(),
            }
        })
        .collect();
    assert_eq!(rows.len(), 10, "one matrix row per registry key");
    rows
}

/// Generates every matrix instance into `dir` as `<key>.inst`.
fn gen_all(dir: &Path) {
    for row in matrix() {
        let out = format!("{}.inst", row.key);
        let mut args: Vec<&str> = vec!["gen", &row.family];
        args.extend(row.gen_args.iter().map(String::as_str));
        args.extend(["--out", &out]);
        mrlr(dir, "1", &args);
    }
}

#[test]
fn gen_solve_matches_golden_and_is_thread_deterministic() {
    let dir = workdir("solve");
    gen_all(&dir);
    for row in matrix() {
        let input = format!("{}.inst", row.key);
        let mut args: Vec<&str> = vec!["solve", &row.key, "--input", &input];
        args.extend(row.solve_args.iter().map(String::as_str));
        args.extend(["--format", "json", "--mask-timings"]);
        let seq = mrlr(&dir, "1", &args);
        let threaded = mrlr(&dir, "4", &args);
        assert_eq!(
            seq, threaded,
            "{}: masked report diverged between MRLR_THREADS=1 and 4",
            row.key
        );
        assert_golden(&format!("{}.json", row.key), &seq);
    }
}

#[test]
fn every_golden_report_verifies_offline_at_both_thread_counts() {
    // The acceptance contract of the re-verifiable-certificate work:
    // `mrlr verify` passes on every checked-in golden report, for every
    // registry key, at MRLR_THREADS=1 and 4 (verification is read-only
    // but must be thread-agnostic like everything else).
    if std::env::var_os("MRLR_UPDATE_GOLDEN").is_some() {
        return; // regeneration pass: goldens are being rewritten in parallel
    }
    let dir = workdir("verify");
    gen_all(&dir);
    for row in matrix() {
        let golden = golden_dir().join(format!("{}.json", row.key));
        let report = format!("{}.report.json", row.key);
        std::fs::copy(&golden, dir.join(&report)).unwrap();
        let input = format!("{}.inst", row.key);
        for threads in ["1", "4"] {
            let out = mrlr(&dir, threads, &["verify", &input, &report]);
            assert!(
                out.lines().last().unwrap_or("").starts_with("verified: "),
                "{}: unexpected verify output:\n{out}",
                row.key
            );
            assert!(
                out.contains("ok: "),
                "{}: verify printed no checks:\n{out}",
                row.key
            );
        }
    }
}

/// Doubles the value of the first `[id, value]` pair in the named witness
/// array of a pretty-printed report, returning the tampered document.
fn double_first_pair_value(text: &str, key: &str) -> String {
    let arr_at = text
        .find(&format!("\"{key}\": ["))
        .unwrap_or_else(|| panic!("no `{key}` array in report"));
    // Pair layout: `[\n  <pad>id,\n  <pad>value\n<pad>],` — the value is
    // the line after the id's trailing comma.
    let val_start = text[arr_at..].find(",\n").expect("pair id") + arr_at + 2;
    let val_end = text[val_start..].find('\n').expect("pair value") + val_start;
    let line = &text[val_start..val_end];
    let value: f64 = line.trim().parse().expect("pair value parses");
    let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
    let mut out = text.to_string();
    out.replace_range(val_start..val_end, &format!("{indent}{:?}", value * 2.0));
    out
}

#[test]
fn verify_rejects_tampered_reports() {
    // Mutation coverage for the offline checker: a tampered solution, a
    // tampered dual, and a tampered stack transcript must each fail with
    // exit code 1 and a located error message.
    let dir = workdir("tamper");
    gen_all(&dir);
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_mrlr"))
            .args(args)
            .current_dir(&dir)
            .env("MRLR_THREADS", "1")
            .output()
            .expect("spawn mrlr")
    };
    let expect_rejected = |instance: &str, report: &str, needle: &str| {
        let out = run(&["verify", instance, report]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{report} must fail verification"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{report}: error not located ({needle}):\n{stderr}"
        );
    };
    mrlr(
        &dir,
        "1",
        &[
            "solve",
            "matching",
            "--input",
            "matching.inst",
            "--format",
            "json",
            "--mask-timings",
            "--out",
            "m.json",
        ],
    );
    let m = std::fs::read_to_string(dir.join("m.json")).unwrap();

    // Tampered solution: drop the first matched edge (the unwind check
    // catches the mismatch).
    let edges_at = m.find("\"edges\": [").expect("edges array");
    let first_entry_end = m[edges_at..].find(',').unwrap() + edges_at;
    let entry_start = m[..first_entry_end].rfind('\n').unwrap();
    let mut tampered = m.clone();
    tampered.replace_range(entry_start..first_entry_end + 1, "");
    std::fs::write(dir.join("m_solution.json"), tampered).unwrap();
    expect_rejected("matching.inst", "m_solution.json", "solution.");

    // Tampered transcript: double the first stack reduction.
    std::fs::write(
        dir.join("m_stack.json"),
        double_first_pair_value(&m, "stack"),
    )
    .unwrap();
    expect_rejected("matching.inst", "m_stack.json", "witness.stack");

    mrlr(
        &dir,
        "1",
        &[
            "solve",
            "set-cover-f",
            "--input",
            "set-cover-f.inst",
            "--mu",
            "0.5",
            "--format",
            "json",
            "--mask-timings",
            "--out",
            "sc.json",
        ],
    );
    let sc = std::fs::read_to_string(dir.join("sc.json")).unwrap();
    // Tampered dual: double the first dual value (breaks the sum against
    // the claimed lower bound, and possibly per-set feasibility).
    std::fs::write(
        dir.join("sc_dual.json"),
        double_first_pair_value(&sc, "dual"),
    )
    .unwrap();
    expect_rejected("set-cover-f.inst", "sc_dual.json", "witness.dual");

    // Out-of-range ids in the stored solution must be a located error,
    // not a panic (untrusted bytes reach the validators).
    let sets_at = sc.find("\"sets\": [").expect("sets array");
    let id_start = sc[sets_at..].find('\n').unwrap() + sets_at + 1;
    let id_end = sc[id_start..].find([',', '\n']).unwrap() + id_start;
    let indent: String = sc[id_start..id_end]
        .chars()
        .take_while(|c| c.is_whitespace())
        .collect();
    let mut tampered = sc.clone();
    tampered.replace_range(id_start..id_end, &format!("{indent}999999"));
    std::fs::write(dir.join("sc_oob.json"), tampered).unwrap();
    expect_rejected("set-cover-f.inst", "sc_oob.json", "solution.cover");

    // A summary report cannot be verified at all.
    mrlr(
        &dir,
        "1",
        &[
            "solve",
            "set-cover-f",
            "--input",
            "set-cover-f.inst",
            "--mu",
            "0.5",
            "--format",
            "json",
            "--certificates",
            "summary",
            "--out",
            "sc_summary.json",
        ],
    );
    let out = run(&["verify", "set-cover-f.inst", "sc_summary.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no witness"),
        "summary reports must name the missing witness"
    );
}

#[test]
fn shard_backend_output_is_bit_identical_modulo_tag() {
    // `--backend shard` runs the sharded runtime; the masked report must
    // equal the mr golden byte-for-byte except the backend tag, and the
    // stored certificate must verify offline like any other.
    let dir = workdir("shard");
    gen_all(&dir);
    for key in ["matching", "vertex-cover"] {
        let input = format!("{key}.inst");
        // Both matrix rows take no extra solve args, so the goldens are
        // directly comparable.
        let mut args = vec!["solve", key, "--input", &input];
        args.extend(["--backend", "shard", "--format", "json", "--mask-timings"]);
        let shard = mrlr(&dir, "4", &args);
        assert!(shard.contains("\"backend\": \"shard\""), "{key}");
        let golden = std::fs::read_to_string(golden_dir().join(format!("{key}.json"))).unwrap();
        assert_eq!(
            shard.replace("\"backend\": \"shard\"", "\"backend\": \"mr\""),
            golden,
            "{key}: shard payload diverged from the mr golden"
        );
        // The shard report is auditable too.
        let report = format!("{key}.shard.json");
        std::fs::write(dir.join(&report), &shard).unwrap();
        let out = mrlr(&dir, "1", &["verify", &input, &report]);
        assert!(out.lines().last().unwrap_or("").starts_with("verified: "));
    }
}

#[test]
fn verify_audits_batch_documents() {
    // The batch-verify loop: `mrlr verify <batch.json>` audits every
    // report slot against the instances the document names, skips the
    // recorded error slots, and locates any failing slot by grid
    // position with exit code 1.
    let dir = workdir("batch-verify");
    gen_all(&dir);
    std::fs::copy(
        golden_dir().join("batch.manifest"),
        dir.join("batch.manifest"),
    )
    .unwrap();
    mrlr(
        &dir,
        "1",
        &[
            "batch",
            "batch.manifest",
            "--mask-timings",
            "--out",
            "batch.json",
        ],
    );
    let out = mrlr(&dir, "1", &["verify", "batch.json"]);
    assert!(
        out.contains("skip: results["),
        "deliberate error slots must be skipped:\n{out}"
    );
    assert!(out.contains("ok: results[0][0]"), "{out}");
    assert!(
        out.lines().last().unwrap_or("").starts_with("verified: "),
        "{out}"
    );
    // --quiet stays quiet on success.
    assert_eq!(mrlr(&dir, "1", &["verify", "batch.json", "--quiet"]), "");

    // A document written away from its manifest resolves instances via
    // --instances-dir (without it, resolution against the document's own
    // directory finds nothing).
    std::fs::create_dir_all(dir.join("out")).unwrap();
    mrlr(
        &dir,
        "1",
        &[
            "batch",
            "batch.manifest",
            "--mask-timings",
            "--out",
            "out/batch.json",
        ],
    );
    assert_eq!(
        mrlr(
            &dir,
            "1",
            &[
                "verify",
                "out/batch.json",
                "--instances-dir",
                ".",
                "--quiet"
            ],
        ),
        ""
    );

    // A lone single-report path gets a pointed hint, not a confusing
    // batch parse error.
    mrlr(
        &dir,
        "1",
        &[
            "solve",
            "matching",
            "--input",
            "matching.inst",
            "--format",
            "json",
            "--out",
            "single.json",
        ],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mrlr"))
        .args(["verify", "single.json"])
        .current_dir(&dir)
        .env("MRLR_THREADS", "1")
        .output()
        .expect("spawn mrlr");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("single report"),
        "missing-instance hint expected:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Tamper one matched edge inside the first report slot: the audit
    // must fail, name the slot, and exit 1.
    let doc = std::fs::read_to_string(dir.join("batch.json")).unwrap();
    let edges_at = doc.find("\"edges\": [").expect("edges array");
    let first_entry_end = doc[edges_at..].find(',').unwrap() + edges_at;
    let entry_start = doc[..first_entry_end].rfind('\n').unwrap();
    let mut tampered = doc.clone();
    tampered.replace_range(entry_start..first_entry_end + 1, "");
    std::fs::write(dir.join("batch_tampered.json"), tampered).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mrlr"))
        .args(["verify", "batch_tampered.json"])
        .current_dir(&dir)
        .env("MRLR_THREADS", "1")
        .output()
        .expect("spawn mrlr");
    assert_eq!(out.status.code(), Some(1), "tampered batch must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("results[0][0]"),
        "failure not located by grid position:\n{stderr}"
    );
}

#[test]
fn gen_output_is_deterministic_and_reparseable() {
    let dir = workdir("gen");
    for row in matrix() {
        let mut args: Vec<&str> = vec!["gen", &row.family];
        args.extend(row.gen_args.iter().map(String::as_str));
        let a = mrlr(&dir, "1", &args);
        let b = mrlr(&dir, "4", &args);
        assert_eq!(a, b, "{}: gen must not depend on threads", row.family);
        assert!(
            a.starts_with("p "),
            "{}: not the unified format",
            row.family
        );
    }
}

#[test]
fn batch_matches_golden_with_isolated_error_slots() {
    let dir = workdir("batch");
    gen_all(&dir);
    std::fs::copy(
        golden_dir().join("batch.manifest"),
        dir.join("batch.manifest"),
    )
    .unwrap();
    let args = ["batch", "batch.manifest", "--mask-timings"];
    let seq = mrlr(&dir, "1", &args);
    let threaded = mrlr(&dir, "4", &args);
    assert_eq!(seq, threaded, "masked batch diverged across thread counts");
    // Kind mismatches land as per-slot errors, not process failures.
    assert!(seq.contains("\"error\""), "expected mismatch slots:\n{seq}");
    assert_golden("batch.json", &seq);

    let csv = mrlr(
        &dir,
        "1",
        &[
            "batch",
            "batch.manifest",
            "--mask-timings",
            "--format",
            "csv",
        ],
    );
    assert_golden("batch.csv", &csv);
}

#[test]
fn list_json_matches_golden() {
    let dir = workdir("list");
    assert_golden("list.json", &mrlr(&dir, "1", &["list", "--format", "json"]));
}

#[test]
fn solve_writes_timing_csv() {
    let dir = workdir("timings");
    gen_all(&dir);
    mrlr(
        &dir,
        "4",
        &[
            "solve",
            "matching",
            "--input",
            "matching.inst",
            "--format",
            "csv",
            "--timings-csv",
            "timings.csv",
        ],
    );
    let csv = std::fs::read_to_string(dir.join("timings.csv")).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew"
    );
    assert!(
        lines.next().is_some(),
        "no executor passes recorded:\n{csv}"
    );
}

#[test]
fn usage_and_runtime_errors_have_distinct_exit_codes() {
    let dir = workdir("errors");
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_mrlr"))
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spawn mrlr")
    };
    // Usage errors: exit 2.
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["gen", "no-such-family"]).status.code(), Some(2));
    assert_eq!(
        run(&["solve", "matching"]).status.code(),
        Some(2),
        "missing --input"
    );
    // Runtime errors: exit 1, with a positioned parse message.
    std::fs::write(dir.join("bad.inst"), "p graph 3 1\ne 0 9\n").unwrap();
    let out = run(&["solve", "matching", "--input", "bad.inst"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2, column 5"),
        "parse errors must carry line/column: {stderr}"
    );
    // Unknown algorithm on a good file is a runtime error too.
    mrlr(
        &dir,
        "1",
        &["gen", "densified", "--n", "20", "--out", "g.inst"],
    );
    assert_eq!(
        run(&["solve", "max-cut", "--input", "g.inst"])
            .status
            .code(),
        Some(1)
    );
}
