//! End-to-end smoke tests of the `mrlr` binary: `gen → solve → batch` for
//! every registry key, with masked JSON reports diffed against golden
//! files and asserted bit-identical across `MRLR_THREADS={1,4}` — the
//! same contract the CI smoke job enforces via `scripts/cli_smoke.sh`.
//!
//! Regenerate the golden files after an intentional format change with
//! `MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli`.

use std::path::{Path, PathBuf};
use std::process::Command;

const MATRIX: &str = include_str!("smoke_matrix.txt");

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn workdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrlr-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `mrlr args…` with `MRLR_THREADS=threads`, asserting success.
fn mrlr(dir: &Path, threads: &str, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_mrlr"))
        .args(args)
        .current_dir(dir)
        .env("MRLR_THREADS", threads)
        .output()
        .expect("spawn mrlr");
    assert!(
        output.status.success(),
        "mrlr {args:?} failed (threads={threads}):\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Compares `actual` against the checked-in golden file, or rewrites it
/// when `MRLR_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("MRLR_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with MRLR_UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate \
         with MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli"
    );
}

struct MatrixRow {
    key: String,
    family: String,
    gen_args: Vec<String>,
    solve_args: Vec<String>,
}

fn matrix() -> Vec<MatrixRow> {
    let rows: Vec<MatrixRow> = MATRIX
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let parts: Vec<&str> = line.split('|').collect();
            assert_eq!(parts.len(), 4, "bad matrix line: {line}");
            MatrixRow {
                key: parts[0].trim().to_string(),
                family: parts[1].trim().to_string(),
                gen_args: parts[2].split_whitespace().map(String::from).collect(),
                solve_args: parts[3].split_whitespace().map(String::from).collect(),
            }
        })
        .collect();
    assert_eq!(rows.len(), 10, "one matrix row per registry key");
    rows
}

/// Generates every matrix instance into `dir` as `<key>.inst`.
fn gen_all(dir: &Path) {
    for row in matrix() {
        let out = format!("{}.inst", row.key);
        let mut args: Vec<&str> = vec!["gen", &row.family];
        args.extend(row.gen_args.iter().map(String::as_str));
        args.extend(["--out", &out]);
        mrlr(dir, "1", &args);
    }
}

#[test]
fn gen_solve_matches_golden_and_is_thread_deterministic() {
    let dir = workdir("solve");
    gen_all(&dir);
    for row in matrix() {
        let input = format!("{}.inst", row.key);
        let mut args: Vec<&str> = vec!["solve", &row.key, "--input", &input];
        args.extend(row.solve_args.iter().map(String::as_str));
        args.extend(["--format", "json", "--mask-timings"]);
        let seq = mrlr(&dir, "1", &args);
        let threaded = mrlr(&dir, "4", &args);
        assert_eq!(
            seq, threaded,
            "{}: masked report diverged between MRLR_THREADS=1 and 4",
            row.key
        );
        assert_golden(&format!("{}.json", row.key), &seq);
    }
}

#[test]
fn gen_output_is_deterministic_and_reparseable() {
    let dir = workdir("gen");
    for row in matrix() {
        let mut args: Vec<&str> = vec!["gen", &row.family];
        args.extend(row.gen_args.iter().map(String::as_str));
        let a = mrlr(&dir, "1", &args);
        let b = mrlr(&dir, "4", &args);
        assert_eq!(a, b, "{}: gen must not depend on threads", row.family);
        assert!(
            a.starts_with("p "),
            "{}: not the unified format",
            row.family
        );
    }
}

#[test]
fn batch_matches_golden_with_isolated_error_slots() {
    let dir = workdir("batch");
    gen_all(&dir);
    std::fs::copy(
        golden_dir().join("batch.manifest"),
        dir.join("batch.manifest"),
    )
    .unwrap();
    let args = ["batch", "batch.manifest", "--mask-timings"];
    let seq = mrlr(&dir, "1", &args);
    let threaded = mrlr(&dir, "4", &args);
    assert_eq!(seq, threaded, "masked batch diverged across thread counts");
    // Kind mismatches land as per-slot errors, not process failures.
    assert!(seq.contains("\"error\""), "expected mismatch slots:\n{seq}");
    assert_golden("batch.json", &seq);

    let csv = mrlr(
        &dir,
        "1",
        &[
            "batch",
            "batch.manifest",
            "--mask-timings",
            "--format",
            "csv",
        ],
    );
    assert_golden("batch.csv", &csv);
}

#[test]
fn list_json_matches_golden() {
    let dir = workdir("list");
    assert_golden("list.json", &mrlr(&dir, "1", &["list", "--format", "json"]));
}

#[test]
fn solve_writes_timing_csv() {
    let dir = workdir("timings");
    gen_all(&dir);
    mrlr(
        &dir,
        "4",
        &[
            "solve",
            "matching",
            "--input",
            "matching.inst",
            "--format",
            "csv",
            "--timings-csv",
            "timings.csv",
        ],
    );
    let csv = std::fs::read_to_string(dir.join("timings.csv")).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew"
    );
    assert!(
        lines.next().is_some(),
        "no executor passes recorded:\n{csv}"
    );
}

#[test]
fn usage_and_runtime_errors_have_distinct_exit_codes() {
    let dir = workdir("errors");
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_mrlr"))
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spawn mrlr")
    };
    // Usage errors: exit 2.
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["gen", "no-such-family"]).status.code(), Some(2));
    assert_eq!(
        run(&["solve", "matching"]).status.code(),
        Some(2),
        "missing --input"
    );
    // Runtime errors: exit 1, with a positioned parse message.
    std::fs::write(dir.join("bad.inst"), "p graph 3 1\ne 0 9\n").unwrap();
    let out = run(&["solve", "matching", "--input", "bad.inst"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2, column 5"),
        "parse errors must carry line/column: {stderr}"
    );
    // Unknown algorithm on a good file is a runtime error too.
    mrlr(
        &dir,
        "1",
        &["gen", "densified", "--n", "20", "--out", "g.inst"],
    );
    assert_eq!(
        run(&["solve", "max-cut", "--input", "g.inst"])
            .status
            .code(),
        Some(1)
    );
}
