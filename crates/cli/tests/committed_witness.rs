//! End-to-end committed-witness flow through the binary: `solve
//! --certificates committed` writes a compact report plus a transcript
//! sidecar; `mrlr verify --witness` re-authenticates and replays it —
//! in full and chunk by chunk — and rejects every tampered variant with
//! a located error and exit code 1.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrlr-committed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mrlr"))
        .args(args)
        .current_dir(dir)
        .env("MRLR_THREADS", "1")
        .output()
        .expect("spawn mrlr")
}

fn ok(dir: &Path, args: &[&str]) -> String {
    let out = run(dir, args);
    assert!(
        out.status.success(),
        "mrlr {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn rejected(dir: &Path, args: &[&str], needle: &str) {
    let out = run(dir, args);
    assert_eq!(out.status.code(), Some(1), "mrlr {args:?} must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "mrlr {args:?}: expected `{needle}` in:\n{stderr}"
    );
}

#[test]
fn committed_report_round_trips_and_rejects_tampering() {
    let dir = workdir();
    ok(
        &dir,
        &[
            "gen",
            "densified",
            "--n",
            "40",
            "--seed",
            "5",
            "--out",
            "g.inst",
        ],
    );
    ok(
        &dir,
        &[
            "solve",
            "matching",
            "--input",
            "g.inst",
            "--format",
            "json",
            "--mask-timings",
            "--certificates",
            "committed",
            "--chunk-len",
            "8",
            "--witness-out",
            "w.txt",
            "--out",
            "r.json",
        ],
    );
    let report = std::fs::read_to_string(dir.join("r.json")).unwrap();
    assert!(report.contains("\"kind\": \"committed\""), "{report}");
    // The commitment is compact: no stack pairs inline.
    assert!(!report.contains("\"stack\": ["), "{report}");

    // Full audit: commitment check first, then the ordinary replay.
    let out = ok(&dir, &["verify", "g.inst", "r.json", "--witness", "w.txt"]);
    assert!(out.contains("ok: commitment:"), "{out}");
    assert!(out.contains("ok: transcript:"), "{out}");
    assert!(
        out.lines().last().unwrap().starts_with("verified: "),
        "{out}"
    );

    // Every chunk audits individually.
    let transcript = std::fs::read_to_string(dir.join("w.txt")).unwrap();
    let chunks = transcript
        .lines()
        .filter(|l| l.starts_with("chunk "))
        .count();
    assert!(chunks >= 2, "want a multi-chunk transcript, got {chunks}");
    for i in 0..chunks {
        let idx = i.to_string();
        let out = ok(
            &dir,
            &[
                "verify",
                "g.inst",
                "r.json",
                "--witness",
                "w.txt",
                "--chunk",
                &idx,
            ],
        );
        assert!(out.contains(&format!("ok: chunk {i}:")), "{out}");
    }

    // Without the sidecar, the bare commitment cannot be audited — the
    // error says exactly what to do.
    rejected(&dir, &["verify", "g.inst", "r.json"], "--witness");

    // Tamper each way; every audit fails located, and the chunk-level
    // audit localizes the damage to the tampered chunk only.
    let lines: Vec<&str> = transcript.lines().collect();

    // 1. Flip a data byte of the last entry line (chunk `chunks-1`).
    let mut t = lines.clone();
    let victim = t.pop().unwrap();
    let flipped = format!("{}9", &victim[..victim.len() - 1]);
    let tampered: String = t
        .iter()
        .map(|l| format!("{l}\n"))
        .chain([format!("{flipped}\n")])
        .collect();
    std::fs::write(dir.join("w_flip.txt"), tampered).unwrap();
    rejected(
        &dir,
        &["verify", "g.inst", "r.json", "--witness", "w_flip.txt"],
        "transcript.chunk[",
    );
    // The untampered chunk 0 still authenticates alone.
    let out = ok(
        &dir,
        &[
            "verify",
            "g.inst",
            "r.json",
            "--witness",
            "w_flip.txt",
            "--chunk",
            "0",
        ],
    );
    assert!(out.contains("ok: chunk 0:"), "{out}");
    let last = (chunks - 1).to_string();
    rejected(
        &dir,
        &[
            "verify",
            "g.inst",
            "r.json",
            "--witness",
            "w_flip.txt",
            "--chunk",
            &last,
        ],
        "transcript.chunk[",
    );

    // 2. Drop the first chunk block: reorder/count detection.
    let first_entry = lines
        .iter()
        .position(|l| !l.starts_with("mrlr-commit") && !l.starts_with("chunk "))
        .unwrap();
    let second_chunk = lines[first_entry..]
        .iter()
        .position(|l| l.starts_with("chunk "))
        .unwrap()
        + first_entry;
    let dropped: String = lines[..1]
        .iter()
        .chain(&lines[second_chunk..])
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(dir.join("w_drop.txt"), dropped).unwrap();
    rejected(
        &dir,
        &["verify", "g.inst", "r.json", "--witness", "w_drop.txt"],
        "transcript",
    );

    // 3. Truncate the auth path of chunk 0.
    let mut t: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let cut = t[1].rfind(' ').unwrap();
    t[1].truncate(cut);
    let truncated: String = t.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(dir.join("w_auth.txt"), truncated).unwrap();
    rejected(
        &dir,
        &["verify", "g.inst", "r.json", "--witness", "w_auth.txt"],
        "transcript.chunk[0]",
    );

    // 4. --witness against a plain (uncommitted) report is rejected.
    ok(
        &dir,
        &[
            "solve",
            "matching",
            "--input",
            "g.inst",
            "--format",
            "json",
            "--mask-timings",
            "--out",
            "plain.json",
        ],
    );
    rejected(
        &dir,
        &["verify", "g.inst", "plain.json", "--witness", "w.txt"],
        "plain witness",
    );
}

#[test]
fn committed_flag_validation() {
    let dir = workdir();
    let usage = |args: &[&str]| {
        assert_eq!(
            run(&dir, args).status.code(),
            Some(2),
            "mrlr {args:?} must be a usage error"
        );
    };
    // committed needs the sidecar path.
    usage(&[
        "solve",
        "matching",
        "--input",
        "g.inst",
        "--certificates",
        "committed",
    ]);
    // The commitment knobs need committed mode.
    usage(&["solve", "matching", "--input", "g.inst", "--chunk-len", "8"]);
    // --chunk needs --witness.
    usage(&["verify", "g.inst", "r.json", "--chunk", "0"]);
}
