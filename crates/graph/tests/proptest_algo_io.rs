//! Property-based tests for the graph algorithms and the edge-list IO.

use proptest::prelude::*;

use mrlr_graph::algo::{
    bfs_distances, bipartition, complement, connected_components, core_decomposition,
    disjoint_union, line_graph, triangle_count,
};
use mrlr_graph::io::{parse_edge_list, to_edge_list};
use mrlr_graph::{Edge, Graph};

fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2usize..=nmax).prop_flat_map(move |n| {
        proptest::collection::vec(((0..n as u32), (0..n as u32), 1u32..1000), 0..=mmax).prop_map(
            move |raw| {
                let mut seen = std::collections::HashSet::new();
                let mut edges = Vec::new();
                for (a, b, w) in raw {
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    if seen.insert(key) {
                        edges.push(Edge::new(key.0, key.1, w as f64 / 16.0));
                    }
                }
                Graph::new(n, edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn io_round_trips_exactly(g in arb_graph(20, 50)) {
        let back = parse_edge_list(&to_edge_list(&g)).unwrap();
        prop_assert_eq!(back.n(), g.n());
        prop_assert_eq!(back.m(), g.m());
        for (a, b) in g.edges().iter().zip(back.edges()) {
            prop_assert_eq!(a.key(), b.key());
            prop_assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(24, 40)) {
        let (count, label) = connected_components(&g);
        prop_assert!(count >= 1);
        prop_assert!(label.iter().all(|&l| (l as usize) < count));
        // Every edge joins same-component endpoints.
        for e in g.edges() {
            prop_assert_eq!(label[e.u as usize], label[e.v as usize]);
        }
        // Component labels are contiguous 0..count.
        let mut present = vec![false; count];
        for &l in &label {
            present[l as usize] = true;
        }
        prop_assert!(present.into_iter().all(|p| p));
    }

    #[test]
    fn bfs_distances_are_metric(g in arb_graph(20, 40)) {
        let d = bfs_distances(&g, 0);
        prop_assert_eq!(d[0], Some(0));
        // Along every edge, distances differ by at most 1 (when both reachable).
        for e in g.edges() {
            if let (Some(a), Some(b)) = (d[e.u as usize], d[e.v as usize]) {
                prop_assert!(a.abs_diff(b) <= 1);
            }
        }
        // Reachability agrees with components.
        let (_, label) = connected_components(&g);
        for v in 0..g.n() {
            prop_assert_eq!(d[v].is_some(), label[v] == label[0]);
        }
    }

    #[test]
    fn complement_triangle_identity(g in arb_graph(12, 30)) {
        // Counting argument: triangles(G) + triangles(Ḡ) + mixed = C(n,3).
        let n = g.n();
        let total = n * (n - 1) * (n - 2) / 6;
        let t = triangle_count(&g) + triangle_count(&complement(&g));
        prop_assert!(t <= total);
        // Complement degree identity: d(v) + d̄(v) = n - 1.
        let d = g.degrees();
        let dc = complement(&g).degrees();
        for v in 0..n {
            prop_assert_eq!(d[v] + dc[v], n - 1);
        }
    }

    #[test]
    fn core_numbers_bounded_by_degree(g in arb_graph(24, 60)) {
        let (core, ordering, degeneracy) = core_decomposition(&g);
        let deg = g.degrees();
        prop_assert_eq!(ordering.len(), g.n());
        for v in 0..g.n() {
            prop_assert!(core[v] <= deg[v]);
            prop_assert!(core[v] <= degeneracy);
        }
        prop_assert_eq!(core.iter().copied().max().unwrap_or(0), degeneracy);
        // Degeneracy lower bound: every subgraph's min degree ≤ degeneracy —
        // in particular the whole graph's.
        prop_assert!(deg.iter().copied().min().unwrap_or(0) <= degeneracy);
    }

    #[test]
    fn line_graph_size_identity(g in arb_graph(14, 30)) {
        let lg = line_graph(&g);
        prop_assert_eq!(lg.n(), g.m());
        let expect: usize = g.degrees().iter().map(|&d| d * (d.saturating_sub(1)) / 2).sum();
        prop_assert_eq!(lg.m(), expect);
        // An edge colouring of G is a vertex colouring of L(G): check via
        // max degree bound Δ(L) ≤ 2Δ(G) − 2 when G has an edge.
        if g.m() > 0 && g.max_degree() >= 1 {
            prop_assert!(lg.max_degree() + 2 <= 2 * g.max_degree().max(1) || lg.max_degree() == 0);
        }
    }

    #[test]
    fn bipartition_is_proper_when_found(g in arb_graph(20, 40)) {
        if let Some(side) = bipartition(&g) {
            for e in g.edges() {
                prop_assert_ne!(side[e.u as usize], side[e.v as usize]);
            }
        } else {
            // Odd cycle exists ⇒ not bipartite ⇒ some component has an odd
            // cycle; a triangle certificate is not guaranteed, but at least
            // one edge must exist.
            prop_assert!(g.m() >= 3);
        }
    }

    #[test]
    fn disjoint_union_adds_sizes(a in arb_graph(10, 20), b in arb_graph(10, 20)) {
        let u = disjoint_union(&[a.clone(), b.clone()]);
        prop_assert_eq!(u.n(), a.n() + b.n());
        prop_assert_eq!(u.m(), a.m() + b.m());
        let (ca, _) = connected_components(&a);
        let (cb, _) = connected_components(&b);
        let (cu, _) = connected_components(&u);
        prop_assert_eq!(cu, ca + cb);
    }
}
