//! Property-based tests of the graph substrate: generators always produce
//! valid simple graphs with the promised parameters.

use proptest::prelude::*;

use mrlr_graph::{degree_stats, generators, weight_spread};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnm_exact(n in 2usize..80, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let max_m = n * (n - 1) / 2;
        let m = (frac * max_m as f64) as usize;
        let g = generators::gnm(n, m, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), m);
        // Graph::new validated simplicity on construction.
        let stats = degree_stats(&g);
        prop_assert!(stats.max < n);
    }

    #[test]
    fn densified_clamps(n in 2usize..60, c in 0.0f64..2.0, seed in any::<u64>()) {
        let g = generators::densified(n, c, seed);
        prop_assert!(g.m() <= n * (n - 1) / 2);
        if g.m() > 2 && (g.m() as f64) < (n * (n - 1) / 2) as f64 * 0.9 {
            prop_assert!((g.density_exponent() - c).abs() < 0.25);
        }
    }

    #[test]
    fn bipartite_no_internal_edges(l in 1usize..20, r in 1usize..20, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let m = (frac * (l * r) as f64) as usize;
        let g = generators::bipartite(l, r, m, seed);
        prop_assert_eq!(g.m(), m);
        for e in g.edges() {
            let (a, b) = e.key();
            prop_assert!((a as usize) < l && (b as usize) >= l);
        }
    }

    #[test]
    fn weights_bounded(n in 2usize..40, seed in any::<u64>(), lo in 0.1f64..5.0, span in 1.1f64..10.0) {
        let hi = lo * span;
        let base = generators::gnm(n, (n * (n - 1) / 4).min(60), seed);
        let g = generators::with_uniform_weights(&base, lo, hi, seed);
        for e in g.edges() {
            prop_assert!(e.w >= lo && e.w < hi);
        }
        if g.m() > 0 {
            prop_assert!(weight_spread(&g) <= span + 1e-9);
        }
        let glog = generators::with_log_uniform_weights(&base, lo, hi, seed);
        for e in glog.edges() {
            prop_assert!(e.w >= lo * 0.999 && e.w < hi * 1.001);
        }
    }

    #[test]
    fn chung_lu_valid(n in 20usize..80, seed in any::<u64>()) {
        let m = n; // sparse enough for rejection headroom
        let g = generators::chung_lu(n, m, 2.5, seed);
        prop_assert_eq!(g.m(), m);
        prop_assert_eq!(g.n(), n);
    }
}
