//! Weighted simple graphs with edge-identity.
//!
//! The paper's graph algorithms treat edges as first-class records that are
//! partitioned across machines, so [`Graph`] is edge-list centred: each edge
//! has a stable [`EdgeId`] (its index), endpoints, and a positive weight.
//! Adjacency views are derived on demand.

use mrlr_mapreduce::words::WordSized;

/// Vertex identifier: `0..n`.
pub type VertexId = u32;

/// Edge identifier: index into [`Graph::edges`].
pub type EdgeId = u32;

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Positive finite weight.
    pub w: f64,
}

impl Edge {
    /// Creates an edge; endpoints are stored in the given order.
    pub fn new(u: VertexId, v: VertexId, w: f64) -> Self {
        Edge { u, v, w }
    }

    /// The endpoint other than `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint");
            self.u
        }
    }

    /// True if `x` is an endpoint.
    pub fn touches(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Canonical endpoint pair `(min, max)`.
    pub fn key(&self) -> (VertexId, VertexId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

impl WordSized for Edge {
    fn words(&self) -> usize {
        3
    }
}

/// An undirected weighted simple graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph over `n` vertices, validating simplicity (no loops,
    /// no parallel edges), endpoint ranges, and weight positivity.
    ///
    /// # Panics
    /// Panics on invalid input; generators and tests construct graphs, so a
    /// malformed graph is a programming error, not a runtime condition.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "endpoint out of range"
            );
            assert_ne!(e.u, e.v, "self-loop at {}", e.u);
            assert!(
                e.w.is_finite() && e.w > 0.0,
                "weight must be positive and finite"
            );
        }
        let mut keys: Vec<(VertexId, VertexId)> = edges.iter().map(Edge::key).collect();
        keys.sort_unstable();
        for pair in keys.windows(2) {
            assert_ne!(pair[0], pair[1], "parallel edge {:?}", pair[0]);
        }
        Graph { n, edges }
    }

    /// Builds an unweighted (unit-weight) graph from endpoint pairs.
    pub fn from_pairs(n: usize, pairs: &[(VertexId, VertexId)]) -> Self {
        Graph::new(
            n,
            pairs.iter().map(|&(u, v)| Edge::new(u, v, 1.0)).collect(),
        )
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with identifier `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Per-vertex adjacency: for each vertex, the `(neighbour, edge-id)`
    /// pairs, in edge-id order.
    pub fn adjacency(&self) -> Vec<Vec<(VertexId, EdgeId)>> {
        let mut adj: Vec<Vec<(VertexId, EdgeId)>> = vec![Vec::new(); self.n];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.u as usize].push((e.v, i as EdgeId));
            adj[e.v as usize].push((e.u, i as EdgeId));
        }
        adj
    }

    /// Per-vertex neighbour lists (no edge ids), in edge-id order.
    pub fn neighbours(&self) -> Vec<Vec<VertexId>> {
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); self.n];
        for e in &self.edges {
            adj[e.u as usize].push(e.v);
            adj[e.v as usize].push(e.u);
        }
        adj
    }

    /// Vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Maximum degree `Δ` (0 for edgeless graphs).
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Density exponent `c` such that `m = n^{1+c}` (meaningful for `n ≥ 2`,
    /// `m ≥ 1`).
    pub fn density_exponent(&self) -> f64 {
        if self.n < 2 || self.edges.is_empty() {
            return 0.0;
        }
        (self.m() as f64).ln() / (self.n as f64).ln() - 1.0
    }

    /// Replaces every weight with 1.0.
    pub fn unweighted(&self) -> Graph {
        Graph {
            n: self.n,
            edges: self
                .edges
                .iter()
                .map(|e| Edge::new(e.u, e.v, 1.0))
                .collect(),
        }
    }

    /// The subgraph induced by `keep` (a predicate on vertices). Vertex ids
    /// are preserved; edges with a dropped endpoint are removed.
    pub fn induced<F: Fn(VertexId) -> bool>(&self, keep: F) -> Graph {
        Graph {
            n: self.n,
            edges: self
                .edges
                .iter()
                .filter(|e| keep(e.u) && keep(e.v))
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degrees(), vec![2, 2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_covers_both_directions() {
        let g = Graph::from_pairs(3, &[(0, 1), (0, 2)]);
        let adj = g.adjacency();
        assert_eq!(adj[0], vec![(1, 0), (2, 1)]);
        assert_eq!(adj[1], vec![(0, 0)]);
        assert_eq!(adj[2], vec![(0, 1)]);
    }

    #[test]
    fn edge_other_and_touches() {
        let e = Edge::new(3, 7, 2.0);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
        assert!(e.touches(3) && e.touches(7) && !e.touches(5));
        assert_eq!(e.key(), (3, 7));
        assert_eq!(Edge::new(7, 3, 1.0).key(), (3, 7));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Graph::from_pairs(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn rejects_parallel_edges() {
        Graph::from_pairs(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        Graph::from_pairs(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        Graph::new(2, vec![Edge::new(0, 1, 0.0)]);
    }

    #[test]
    fn density_exponent_matches() {
        // n = 100, m = n^{1.5} = 1000: complete-ish density check via a
        // synthetic edge count (use a star-of-cliques shape irrelevant; just
        // check the formula on a generated count).
        let n = 100u32;
        let mut pairs = Vec::new();
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                pairs.push((u, v));
                if pairs.len() == 1000 {
                    break 'outer;
                }
            }
        }
        let g = Graph::from_pairs(n as usize, &pairs);
        assert!((g.density_exponent() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn induced_subgraph_filters_edges() {
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = g.induced(|v| v != 2);
        assert_eq!(h.m(), 1);
        assert_eq!(h.edges()[0].key(), (0, 1));
    }

    #[test]
    fn unweighted_resets_weights() {
        let g = Graph::new(2, vec![Edge::new(0, 1, 5.0)]);
        assert!((g.unweighted().edges()[0].w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_word_size() {
        assert_eq!(Edge::new(0, 1, 1.0).words(), 3);
    }
}
