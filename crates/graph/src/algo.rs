//! Classical graph algorithms used as substrates and test oracles.
//!
//! These are *sequential* utilities: connectivity and BFS for workload
//! sanity checks, triangle counting and core decomposition for
//! characterizing generated instances, the line-graph construction behind
//! the paper's Lemma 6.2 (Hajnal–Szemerédi over the line graph) and the
//! edge-colouring reductions, and bipartiteness testing for the bipartite
//! matching workloads of Kumar et al. that Section 1.2 discusses.

use std::collections::VecDeque;

use crate::graph::{Edge, Graph, VertexId};

/// Connected components: returns `(count, label)` where `label[v]` is the
/// 0-based component index of `v`, numbered in order of smallest vertex.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let adj = g.neighbours();
    let mut label = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..g.n() {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = count;
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v as usize] {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, label)
}

/// BFS hop distances from `src`; `None` for unreachable vertices.
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<Option<u32>> {
    assert!((src as usize) < g.n(), "source out of range");
    let adj = g.neighbours();
    let mut dist = vec![None; g.n()];
    dist[src as usize] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize].expect("queued vertices have distances");
        for &w in &adj[v as usize] {
            if dist[w as usize].is_none() {
                dist[w as usize] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Exact triangle count by degree-ordered neighbour intersection —
/// `O(m^{3/2})`, fine for test-scale graphs.
pub fn triangle_count(g: &Graph) -> usize {
    let deg = g.degrees();
    // Orient each edge from the lower-rank endpoint to the higher-rank one;
    // rank by (degree, id) so every vertex has out-degree O(sqrt m).
    let rank = |v: VertexId| (deg[v as usize], v);
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); g.n()];
    for e in g.edges() {
        let (a, b) = if rank(e.u) < rank(e.v) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        out[a as usize].push(b);
    }
    for list in &mut out {
        list.sort_unstable();
    }
    let mut triangles = 0usize;
    for e in g.edges() {
        let (a, b) = if rank(e.u) < rank(e.v) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        // Count common out-neighbours of a and b.
        let (la, lb) = (&out[a as usize], &out[b as usize]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    triangles += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    triangles
}

/// Core decomposition by repeated minimum-degree peeling. Returns
/// `(core_number, ordering, degeneracy)`: `core_number[v]` is the largest
/// `k` such that `v` lies in a subgraph of minimum degree `k`, `ordering`
/// is the peeling order (a degeneracy ordering), and `degeneracy` is the
/// maximum core number (0 for edgeless graphs).
pub fn core_decomposition(g: &Graph) -> (Vec<usize>, Vec<VertexId>, usize) {
    let n = g.n();
    let adj = g.neighbours();
    let mut degree = g.degrees();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0usize; n];
    let mut ordering = Vec::with_capacity(n);
    let mut current = 0usize;
    let mut cursor = 0usize; // lowest possibly-nonempty bucket
    for _ in 0..n {
        // Find the lowest-degree live vertex.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Stale entries may inflate buckets; pop until a live vertex whose
        // recorded degree matches its bucket.
        let v = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let cand = buckets[cursor].pop().expect("n vertices remain");
            if !removed[cand as usize] && degree[cand as usize] == cursor {
                break cand;
            }
        };
        current = current.max(cursor);
        core[v as usize] = current;
        removed[v as usize] = true;
        ordering.push(v);
        for &w in &adj[v as usize] {
            let wu = w as usize;
            if !removed[wu] {
                degree[wu] -= 1;
                buckets[degree[wu]].push(w);
                cursor = cursor.min(degree[wu]);
            }
        }
    }
    (core, ordering, current)
}

/// The degeneracy of `g` (maximum over subgraphs of the minimum degree).
pub fn degeneracy(g: &Graph) -> usize {
    core_decomposition(g).2
}

/// The line graph `L(G)`: one vertex per edge of `g` (vertex `i` is edge
/// id `i`, carrying the original edge weight as an unused attribute — line
/// graph edges are unit weight), with `L`-edges joining `g`-edges that share
/// an endpoint. Size is `Σ_v d(v)·(d(v)−1)/2` edges; callers should keep
/// `g` small.
pub fn line_graph(g: &Graph) -> Graph {
    let adj = g.adjacency();
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for nbrs in &adj {
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, b) = (nbrs[i].1, nbrs[j].1);
                pairs.push((a.min(b), a.max(b)));
            }
        }
    }
    // Two edges can share at most one endpoint in a simple graph, so no
    // duplicates arise; assert in debug builds.
    debug_assert!({
        let mut p = pairs.clone();
        p.sort_unstable();
        p.windows(2).all(|w| w[0] != w[1])
    });
    Graph::from_pairs(g.m(), &pairs)
}

/// 2-colours `g` if it is bipartite: returns `side[v] ∈ {false, true}` per
/// vertex, or `None` if an odd cycle exists.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let adj = g.neighbours();
    let mut side: Vec<Option<bool>> = vec![None; g.n()];
    let mut queue = VecDeque::new();
    for s in 0..g.n() {
        if side[s].is_some() {
            continue;
        }
        side[s] = Some(false);
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            let sv = side[v as usize].expect("queued vertices are coloured");
            for &w in &adj[v as usize] {
                match side[w as usize] {
                    None => {
                        side[w as usize] = Some(!sv);
                        queue.push_back(w);
                    }
                    Some(sw) if sw == sv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(side.into_iter().map(|s| s.expect("all coloured")).collect())
}

/// The complement graph of `g` — `Θ(n²)` edges; the construction the
/// MapReduce model *cannot afford* (the paper's motivation for the
/// Appendix B clique algorithm). Provided for test oracles only.
///
/// # Panics
/// Panics if `n > 2000` to keep accidental quadratic blow-ups out of the
/// benches.
pub fn complement(g: &Graph) -> Graph {
    assert!(g.n() <= 2000, "complement is a test oracle; n too large");
    let mut present = std::collections::HashSet::with_capacity(g.m() * 2);
    for e in g.edges() {
        let (a, b) = e.key();
        present.insert(((a as u64) << 32) | b as u64);
    }
    let mut pairs = Vec::new();
    for u in 0..g.n() as VertexId {
        for v in (u + 1)..g.n() as VertexId {
            if !present.contains(&(((u as u64) << 32) | v as u64)) {
                pairs.push((u, v));
            }
        }
    }
    Graph::from_pairs(g.n(), &pairs)
}

/// Merges vertex-disjoint graphs into one, offsetting vertex ids in input
/// order. Weights are preserved.
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(Graph::n).sum();
    let mut edges = Vec::with_capacity(parts.iter().map(Graph::m).sum());
    let mut offset = 0 as VertexId;
    for p in parts {
        for e in p.edges() {
            edges.push(Edge::new(e.u + offset, e.v + offset, e.w));
        }
        offset += p.n() as VertexId;
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, complete_bipartite, cycle, gnm, gnp, path, star};

    #[test]
    fn components_on_union() {
        let g = disjoint_union(&[path(3), cycle(4), star(2)]);
        let (count, label) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(label[0], label[2]);
        assert_eq!(label[3], label[6]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[3], label[7]);
    }

    #[test]
    fn components_isolated_vertices() {
        let g = Graph::new(4, vec![]);
        let (count, _) = connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let g2 = disjoint_union(&[path(2), path(2)]);
        let d2 = bfs_distances(&g2, 0);
        assert_eq!(d2, vec![Some(0), Some(1), None, None]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_bad_source() {
        bfs_distances(&path(3), 9);
    }

    #[test]
    fn triangles_counted_exactly() {
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(6)), 20);
        assert_eq!(triangle_count(&path(10)), 0);
        assert_eq!(triangle_count(&cycle(3)), 1);
        assert_eq!(triangle_count(&cycle(5)), 0);
        assert_eq!(triangle_count(&complete_bipartite(3, 4)), 0);
        assert_eq!(triangle_count(&star(10)), 0);
    }

    #[test]
    fn triangles_match_brute_force() {
        for seed in 0..4 {
            let g = gnp(25, 0.3, seed);
            let adj = g.neighbours();
            let mut has = vec![vec![false; g.n()]; g.n()];
            for (v, nb) in adj.iter().enumerate() {
                for &w in nb {
                    has[v][w as usize] = true;
                }
            }
            let mut brute = 0usize;
            for a in 0..g.n() {
                for b in (a + 1)..g.n() {
                    for c in (b + 1)..g.n() {
                        if has[a][b] && has[b][c] && has[a][c] {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(triangle_count(&g), brute, "seed {seed}");
        }
    }

    #[test]
    fn core_numbers_on_known_graphs() {
        let (core, ordering, d) = core_decomposition(&complete(5));
        assert_eq!(d, 4);
        assert!(core.iter().all(|&c| c == 4));
        assert_eq!(ordering.len(), 5);
        let (core, _, d) = core_decomposition(&path(6));
        assert_eq!(d, 1);
        assert!(core.iter().all(|&c| c == 1));
        let (core, _, d) = core_decomposition(&cycle(6));
        assert_eq!(d, 2);
        assert!(core.iter().all(|&c| c == 2));
        assert_eq!(degeneracy(&star(9)), 1);
        assert_eq!(degeneracy(&Graph::new(3, vec![])), 0);
    }

    #[test]
    fn degeneracy_ordering_property() {
        // In a degeneracy ordering, each vertex has at most `degeneracy`
        // neighbours later in the order.
        for seed in 0..4 {
            let g = gnm(40, 200, seed);
            let (_, ordering, d) = core_decomposition(&g);
            let mut pos = vec![0usize; g.n()];
            for (i, &v) in ordering.iter().enumerate() {
                pos[v as usize] = i;
            }
            let adj = g.neighbours();
            for &v in &ordering {
                let later = adj[v as usize]
                    .iter()
                    .filter(|&&w| pos[w as usize] > pos[v as usize])
                    .count();
                assert!(
                    later <= d,
                    "seed {seed}: vertex {v} has {later} later, degeneracy {d}"
                );
            }
        }
    }

    #[test]
    fn line_graph_shapes() {
        // L(path_4) is a path on 3 vertices; L(star_n) is complete on n-1;
        // L(cycle_n) is cycle_n; L(K3) = K3.
        assert_eq!(line_graph(&path(4)).m(), 2);
        let ls = line_graph(&star(5));
        assert_eq!(ls.n(), 4);
        assert_eq!(ls.m(), 6); // K4
        let lc = line_graph(&cycle(5));
        assert_eq!(lc.n(), 5);
        assert_eq!(lc.m(), 5);
        // Sum over v of C(d(v), 2):
        let g = complete(4);
        let lg = line_graph(&g);
        assert_eq!(lg.n(), 6);
        assert_eq!(lg.m(), 4 * 3); // 4 vertices of degree 3 → 4 · C(3,2) = 12
    }

    #[test]
    fn line_graph_max_degree_bound() {
        // Δ(L(G)) ≤ 2Δ(G) − 2, the bound behind the Hajnal–Szemerédi
        // argument in Lemma 6.2.
        for seed in 0..3 {
            let g = gnm(20, 60, seed);
            let lg = line_graph(&g);
            assert!(lg.max_degree() <= 2 * g.max_degree() - 2);
        }
    }

    #[test]
    fn bipartition_detects_odd_cycles() {
        assert!(bipartition(&cycle(4)).is_some());
        assert!(bipartition(&cycle(5)).is_none());
        assert!(bipartition(&complete_bipartite(3, 5)).is_some());
        assert!(bipartition(&complete(3)).is_none());
        let side = bipartition(&path(4)).unwrap();
        assert_eq!(side, vec![false, true, false, true]);
        // All-isolated graph is trivially bipartite.
        assert!(bipartition(&Graph::new(3, vec![])).is_some());
    }

    #[test]
    fn bipartition_proper_on_random_bipartite() {
        let g = crate::generators::bipartite(15, 20, 80, 3);
        let side = bipartition(&g).unwrap();
        for e in g.edges() {
            assert_ne!(side[e.u as usize], side[e.v as usize]);
        }
    }

    #[test]
    fn complement_involution() {
        for seed in 0..3 {
            let g = gnm(12, 30, seed);
            let cc = complement(&complement(&g));
            assert_eq!(cc.n(), g.n());
            let mut a: Vec<_> = g.edges().iter().map(Edge::key).collect();
            let mut b: Vec<_> = cc.edges().iter().map(Edge::key).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        assert_eq!(complement(&complete(5)).m(), 0);
        assert_eq!(complement(&Graph::new(5, vec![])).m(), 10);
    }

    #[test]
    fn disjoint_union_preserves_weights() {
        let g1 = Graph::new(2, vec![Edge::new(0, 1, 2.5)]);
        let g2 = Graph::new(2, vec![Edge::new(0, 1, 7.5)]);
        let u = disjoint_union(&[g1, g2]);
        assert_eq!(u.n(), 4);
        assert_eq!(u.m(), 2);
        assert!((u.edge(1).w - 7.5).abs() < 1e-12);
        assert_eq!(u.edge(1).key(), (2, 3));
        assert_eq!(disjoint_union(&[]).n(), 0);
    }
}
