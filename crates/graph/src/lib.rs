//! # mrlr-graph — weighted graph substrate
//!
//! Graph types and generators for the `mrlr` reproduction of *"Greedy and
//! Local Ratio Algorithms in the MapReduce Model"* (SPAA 2018). The paper
//! assumes graphs with `n` vertices and `m = n^{1+c}` edges; the generators
//! here are parameterized by the density exponent `c` directly
//! ([`generators::densified`]), alongside Erdős–Rényi, Chung–Lu power-law
//! ("social network") and bipartite families.
//!
//! ```
//! use mrlr_graph::generators;
//!
//! let g = generators::densified(100, 0.4, 42);
//! assert!((g.density_exponent() - 0.4).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stats;

pub use algo::{
    bfs_distances, bipartition, complement, connected_components, core_decomposition, degeneracy,
    disjoint_union, line_graph, triangle_count,
};
pub use graph::{Edge, EdgeId, Graph, VertexId};
pub use io::{parse_edge_list, to_edge_list, ParseError};
pub use stats::{
    clustering_coefficient, degree_assortativity, degree_histogram, degree_stats, weight_spread,
    DegreeStats,
};
