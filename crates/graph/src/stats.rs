//! Graph statistics used by the experiment harness.

use crate::graph::Graph;

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree `Δ`.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Degree variance.
    pub variance: f64,
}

/// Computes degree statistics. Returns zeros for the empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let deg = g.degrees();
    if deg.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            variance: 0.0,
        };
    }
    let min = *deg.iter().min().unwrap();
    let max = *deg.iter().max().unwrap();
    let mean = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
    let variance = deg.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / deg.len() as f64;
    DegreeStats {
        min,
        max,
        mean,
        variance,
    }
}

/// Histogram of degrees: `hist[d]` is the number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let deg = g.degrees();
    let max = deg.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in deg {
        hist[d] += 1;
    }
    hist
}

/// The spread `w_max / w_min` of edge weights (1.0 for the empty graph).
pub fn weight_spread(g: &Graph) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for e in g.edges() {
        min = min.min(e.w);
        max = max.max(e.w);
    }
    if g.m() == 0 {
        1.0
    } else {
        max / min
    }
}

/// Global clustering coefficient: `3 · triangles / wedges`, where a wedge
/// is an unordered pair of edges sharing a vertex (`Σ_v C(d(v), 2)`).
/// Social networks cluster strongly; Erdős–Rényi graphs of the same
/// density do not — the workload-characterization statistic behind the
/// paper's "social network" motivation. Returns 0 for wedge-free graphs.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let wedges: usize = g
        .degrees()
        .iter()
        .map(|&d| d * d.saturating_sub(1) / 2)
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * crate::algo::triangle_count(g) as f64 / wedges as f64
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges): positive when hubs attach to hubs, negative when hubs attach to
/// leaves (typical for preferential-attachment graphs). Returns 0 when the
/// degree sequence is constant or the graph has no edges.
pub fn degree_assortativity(g: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let deg = g.degrees();
    // Correlation over the 2m directed endpoint pairs (x = tail degree,
    // y = head degree), the standard Newman estimator.
    let pairs: Vec<(f64, f64)> = g
        .edges()
        .iter()
        .flat_map(|e| {
            let (du, dv) = (deg[e.u as usize] as f64, deg[e.v as usize] as f64);
            [(du, dv), (dv, du)]
        })
        .collect();
    let n = pairs.len() as f64;
    let mean_x: f64 = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let var: f64 = pairs.iter().map(|p| (p.0 - mean_x).powi(2)).sum::<f64>() / n;
    if var < 1e-12 {
        return 0.0;
    }
    let cov: f64 = pairs
        .iter()
        .map(|p| (p.0 - mean_x) * (p.1 - mean_x))
        .sum::<f64>()
        / n;
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{star, with_uniform_weights};

    #[test]
    fn star_stats() {
        let g = star(5);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(s.variance > 0.0);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new(0, Vec::new());
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max), (0, 0));
        assert_eq!(weight_spread(&g), 1.0);
        assert_eq!(degree_histogram(&g), vec![0]);
    }

    #[test]
    fn clustering_on_known_graphs() {
        use crate::generators::{complete, cycle, gnp, planted_cliques};
        // Complete graph: every wedge closes.
        assert!((clustering_coefficient(&complete(6)) - 1.0).abs() < 1e-12);
        // Long cycles have wedges but no triangles.
        assert_eq!(clustering_coefficient(&cycle(8)), 0.0);
        // Edgeless/star: no triangles.
        assert_eq!(clustering_coefficient(&Graph::new(4, vec![])), 0.0);
        assert_eq!(clustering_coefficient(&star(6)), 0.0);
        // Planted cliques cluster far more than G(n, p) of similar density.
        let cliquey = planted_cliques(6, 8, 0.02, 3);
        let random = gnp(
            cliquey.n(),
            2.0 * cliquey.m() as f64 / (cliquey.n() * (cliquey.n() - 1)) as f64,
            4,
        );
        assert!(
            clustering_coefficient(&cliquey) > 3.0 * clustering_coefficient(&random),
            "{} vs {}",
            clustering_coefficient(&cliquey),
            clustering_coefficient(&random)
        );
    }

    #[test]
    fn assortativity_signs() {
        use crate::generators::{barabasi_albert, complete};
        // Star: hubs attach only to leaves — strongly negative.
        assert!(degree_assortativity(&star(20)) < -0.9);
        // Regular graphs have constant degree: defined as 0.
        assert_eq!(degree_assortativity(&complete(6)), 0.0);
        assert_eq!(degree_assortativity(&Graph::new(3, vec![])), 0.0);
        // Preferential attachment is disassortative.
        assert!(degree_assortativity(&barabasi_albert(300, 3, 5)) < 0.0);
        // Correlation is bounded.
        let g = crate::generators::gnm(50, 200, 9);
        let a = degree_assortativity(&g);
        assert!((-1.0..=1.0).contains(&a));
    }

    #[test]
    fn spread_bounds() {
        let g = with_uniform_weights(&star(10), 2.0, 4.0, 3);
        let s = weight_spread(&g);
        assert!((1.0..2.0).contains(&s));
    }
}
