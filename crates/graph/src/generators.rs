//! Graph generators.
//!
//! The paper's model assumes `m = n^{1+c}` edges (Leskovec et al. observe
//! `c ∈ [0.08, 0.5+]` on real graphs), so the generators here are
//! parameterized by the density exponent `c` directly. All generators are
//! deterministic given their seed.

use std::collections::HashSet;

use mrlr_mapreduce::rng::DetRng;

use crate::graph::{Edge, Graph, VertexId};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
/// Panics if `m` exceeds `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "G(n={n}, m={m}) infeasible (max {max_m})");
    let mut rng = DetRng::derive(seed, &[0x0067_6e6d]);
    // Dense case: sample by shuffling all pairs; sparse case: rejection.
    if n < 2 {
        return Graph::new(n, Vec::new());
    }
    if m * 3 > max_m {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_m);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                pairs.push((u, v));
            }
        }
        rng.shuffle(&mut pairs);
        pairs.truncate(m);
        return Graph::from_pairs(n, &pairs);
    }
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    while pairs.len() < m {
        let u = rng.range_usize(n) as VertexId;
        let v = rng.range_usize(n) as VertexId;
        if u == v {
            continue;
        }
        let (a, b) = (u.min(v), u.max(v));
        let key = (a as u64) << 32 | b as u64;
        if seen.insert(key) {
            pairs.push((a, b));
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// Erdős–Rényi `G(n, p)`: each pair independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut rng = DetRng::derive(seed, &[0x0067_6e70]);
    let mut pairs = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.bernoulli(p) {
                pairs.push((u, v));
            }
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// A graph with `m ≈ n^{1+c}` edges — the paper's standing density
/// assumption. Clamps to the complete graph when `n^{1+c}` exceeds it.
pub fn densified(n: usize, c: f64, seed: u64) -> Graph {
    let target = (n as f64).powf(1.0 + c).round() as usize;
    let max_m = n * n.saturating_sub(1) / 2;
    gnm(n, target.min(max_m), seed)
}

/// Chung–Lu power-law graph: expected degree of vertex `i` proportional to
/// `(i+1)^{-1/(gamma-1)}`, scaled so the expected edge count is `m`. The
/// workhorse for the "social network" workloads of the paper's introduction.
///
/// Endpoints are drawn from the weight distribution; self-loops and
/// duplicates are rejected, so the realized `m` is exact.
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 2.0, "gamma must exceed 2 for a bounded mean");
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_m / 2,
        "Chung-Lu rejection needs headroom: m too close to complete"
    );
    let mut rng = DetRng::derive(seed, &[0x636c75]);
    let exponent = -1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    // Cumulative distribution for O(log n) endpoint sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;
    let draw = |rng: &mut DetRng| -> VertexId {
        let x = rng.f64() * total;
        cum.partition_point(|&c| c < x).min(n - 1) as VertexId
    };
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut pairs = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while pairs.len() < m {
        attempts += 1;
        assert!(
            attempts < 100 * m + 10_000,
            "Chung-Lu sampling not converging"
        );
        let u = draw(&mut rng);
        let v = draw(&mut rng);
        if u == v {
            continue;
        }
        let (a, b) = (u.min(v), u.max(v));
        let key = (a as u64) << 32 | b as u64;
        if seen.insert(key) {
            pairs.push((a, b));
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// Random bipartite graph: `left + right` vertices (left ids `0..left`),
/// exactly `m` distinct cross edges.
pub fn bipartite(left: usize, right: usize, m: usize, seed: u64) -> Graph {
    let max_m = left * right;
    assert!(m <= max_m, "bipartite({left}, {right}, m={m}) infeasible");
    let mut rng = DetRng::derive(seed, &[0x0062_6970]);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut pairs = Vec::with_capacity(m);
    if m * 3 > max_m {
        let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_m);
        for u in 0..left as VertexId {
            for v in 0..right as VertexId {
                all.push((u, left as VertexId + v));
            }
        }
        rng.shuffle(&mut all);
        all.truncate(m);
        return Graph::from_pairs(left + right, &all);
    }
    while pairs.len() < m {
        let u = rng.range_usize(left) as VertexId;
        let v = (left + rng.range_usize(right)) as VertexId;
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            pairs.push((u, v));
        }
    }
    Graph::from_pairs(left + right, &pairs)
}

/// Assigns each edge an independent uniform weight in `[lo, hi)`.
pub fn with_uniform_weights(g: &Graph, lo: f64, hi: f64, seed: u64) -> Graph {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let mut rng = DetRng::derive(seed, &[0x0077_6569]);
    Graph::new(
        g.n(),
        g.edges()
            .iter()
            .map(|e| Edge::new(e.u, e.v, rng.f64_range(lo, hi)))
            .collect(),
    )
}

/// Assigns each edge a weight `exp(U)` with `U` uniform in
/// `[ln lo, ln hi)` — a heavy-tailed spread exercising the
/// `log(w_max/w_min)` terms in the paper's bounds.
pub fn with_log_uniform_weights(g: &Graph, lo: f64, hi: f64, seed: u64) -> Graph {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let mut rng = DetRng::derive(seed, &[0x006c_7765]);
    Graph::new(
        g.n(),
        g.edges()
            .iter()
            .map(|e| Edge::new(e.u, e.v, rng.f64_range(lo.ln(), hi.ln()).exp()))
            .collect(),
    )
}

/// Path on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_pairs(
        n,
        &(0..n.saturating_sub(1))
            .map(|i| (i as VertexId, i as VertexId + 1))
            .collect::<Vec<_>>(),
    )
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut pairs: Vec<(VertexId, VertexId)> = (0..n - 1)
        .map(|i| (i as VertexId, i as VertexId + 1))
        .collect();
    pairs.push((n as VertexId - 1, 0));
    Graph::from_pairs(n, &pairs)
}

/// Star with centre 0 and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    Graph::from_pairs(n, &(1..n).map(|i| (0, i as VertexId)).collect::<Vec<_>>())
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            pairs.push((u, v));
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// Complete bipartite graph `K_{a,b}` (left ids `0..a`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut pairs = Vec::with_capacity(a * b);
    for u in 0..a as VertexId {
        for v in 0..b as VertexId {
            pairs.push((u, a as VertexId + v));
        }
    }
    Graph::from_pairs(a + b, &pairs)
}

/// `rows × cols` grid lattice (4-neighbourhood). Vertex `(r, c)` has id
/// `r · cols + c`. A bounded-degree family: the `c → 0` end of the paper's
/// density spectrum.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut pairs = Vec::with_capacity(2 * rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pairs.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                pairs.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_pairs(rows * cols, &pairs)
}

/// Random `d`-regular graph via the configuration model with resampling:
/// stubs are paired by a random shuffle, rejecting pairings with loops or
/// parallel edges.
///
/// # Panics
/// Panics if `n · d` is odd, if `d ≥ n`, or if no simple pairing is found
/// in 500 attempts (only plausible for extreme `d/n`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "regular degree must be below n");
    if d == 0 || n == 0 {
        return Graph::new(n, Vec::new());
    }
    let mut rng = DetRng::derive(seed, &[0x0072_6567]);
    'attempt: for _ in 0..500 {
        let mut stubs: Vec<VertexId> = (0..n as VertexId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        rng.shuffle(&mut stubs);
        let mut seen: HashSet<u64> = HashSet::with_capacity(n * d);
        let mut pairs = Vec::with_capacity(n * d / 2);
        for chunk in stubs.chunks_exact(2) {
            let (u, v) = (chunk[0], chunk[1]);
            if u == v {
                continue 'attempt;
            }
            let (a, b) = (u.min(v), u.max(v));
            if !seen.insert((a as u64) << 32 | b as u64) {
                continue 'attempt;
            }
            pairs.push((a, b));
        }
        return Graph::from_pairs(n, &pairs);
    }
    panic!("random_regular({n}, {d}) found no simple pairing in 500 attempts");
}

/// Barabási–Albert preferential attachment: starts from a star on `k + 1`
/// vertices, then each new vertex attaches to `k` distinct existing
/// vertices chosen with probability proportional to degree. Produces the
/// heavy-tailed degree sequences of the paper's "social network"
/// motivation with `m ≈ k·n`.
///
/// # Panics
/// Panics if `k == 0` or `n ≤ k`.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k > 0 && n > k, "need 0 < k < n");
    let mut rng = DetRng::derive(seed, &[0x6261]);
    // `endpoints` holds every edge endpoint; sampling an element uniformly
    // samples a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * k * n);
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(k * n);
    for v in 1..=k as VertexId {
        pairs.push((0, v));
        endpoints.push(0);
        endpoints.push(v);
    }
    for v in (k + 1)..n {
        let v = v as VertexId;
        let mut chosen: Vec<VertexId> = Vec::with_capacity(k);
        let mut guard = 0usize;
        while chosen.len() < k {
            guard += 1;
            assert!(guard < 100_000, "preferential attachment stalled");
            let t = endpoints[rng.range_usize(endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            pairs.push((t.min(v), t.max(v)));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// Plants `cliques` vertex-disjoint cliques of `size` vertices each, then
/// sprinkles inter-clique noise edges with probability `p_noise` per pair.
/// The workload for the Appendix B maximal-clique experiments: any maximal
/// clique must contain at least one full planted clique when `p_noise` is
/// small.
pub fn planted_cliques(cliques: usize, size: usize, p_noise: f64, seed: u64) -> Graph {
    assert!(size >= 1, "clique size must be positive");
    assert!((0.0..=1.0).contains(&p_noise));
    let n = cliques * size;
    let mut rng = DetRng::derive(seed, &[0x0070_6c63]);
    let mut pairs = Vec::new();
    for c in 0..cliques {
        let base = (c * size) as VertexId;
        for i in 0..size as VertexId {
            for j in (i + 1)..size as VertexId {
                pairs.push((base + i, base + j));
            }
        }
    }
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if (u as usize) / size != (v as usize) / size && rng.bernoulli(p_noise) {
                pairs.push((u, v));
            }
        }
    }
    Graph::from_pairs(n, &pairs)
}

/// Assigns weights correlated with endpoint degrees:
/// `w(u,v) = 1 + (d(u) + d(v)) · scale`, a deterministic weighting where
/// heavy edges concentrate on hubs — adversarial for degree-oblivious
/// sampling, used by the matching ablations.
pub fn with_degree_weights(g: &Graph, scale: f64) -> Graph {
    assert!(scale >= 0.0 && scale.is_finite());
    let deg = g.degrees();
    Graph::new(
        g.n(),
        g.edges()
            .iter()
            .map(|e| {
                let d = (deg[e.u as usize] + deg[e.v as usize]) as f64;
                Edge::new(e.u, e.v, 1.0 + d * scale)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_count_and_simple() {
        let g = gnm(50, 200, 1);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 200);
        // Graph::new would have panicked on a non-simple graph.
    }

    #[test]
    fn gnm_dense_path() {
        let g = gnm(10, 44, 2); // max 45, forces shuffle path
        assert_eq!(g.m(), 44);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(30, 100, 7), gnm(30, 100, 7));
        assert_ne!(gnm(30, 100, 7), gnm(30, 100, 8));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn gnm_infeasible_panics() {
        gnm(4, 10, 0);
    }

    #[test]
    fn gnp_edge_fraction() {
        let g = gnp(100, 0.3, 3);
        let max = 100 * 99 / 2;
        let frac = g.m() as f64 / max as f64;
        assert!((frac - 0.3).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn densified_hits_exponent() {
        let g = densified(100, 0.4, 4);
        assert!((g.density_exponent() - 0.4).abs() < 0.02);
        // Clamps rather than panicking for large c.
        let h = densified(10, 3.0, 4);
        assert_eq!(h.m(), 45);
    }

    #[test]
    fn chung_lu_skewed_degrees() {
        let g = chung_lu(200, 400, 2.5, 5);
        assert_eq!(g.m(), 400);
        let mut deg = g.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        // Power-law: the top vertex should far exceed the median.
        assert!(
            deg[0] >= 4 * deg[100].max(1),
            "top {} median {}",
            deg[0],
            deg[100]
        );
    }

    #[test]
    fn bipartite_sides_respected() {
        let g = bipartite(10, 20, 50, 6);
        assert_eq!(g.m(), 50);
        for e in g.edges() {
            let (a, b) = e.key();
            assert!((a as usize) < 10 && (10..30).contains(&(b as usize)));
        }
        let dense = bipartite(5, 5, 24, 6);
        assert_eq!(dense.m(), 24);
    }

    #[test]
    fn weights_in_range() {
        let g = with_uniform_weights(&gnm(20, 50, 1), 1.0, 10.0, 9);
        for e in g.edges() {
            assert!((1.0..10.0).contains(&e.w));
        }
        let h = with_log_uniform_weights(&gnm(20, 50, 1), 0.5, 100.0, 9);
        for e in h.edges() {
            assert!((0.5..100.0).contains(&e.w));
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        // 3 rows × 3 horizontal + 2 rows-gaps × 4 vertical = 9 + 8
        assert_eq!(g.m(), 17);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(grid(1, 5).m(), 4);
        assert_eq!(grid(1, 1).m(), 0);
        assert_eq!(grid(0, 7).n(), 0);
    }

    #[test]
    fn random_regular_degrees() {
        for (n, d, seed) in [(20usize, 3usize, 1u64), (30, 4, 2), (10, 5, 3), (16, 1, 4)] {
            let g = random_regular(n, d, seed);
            assert_eq!(g.m(), n * d / 2);
            assert!(g.degrees().iter().all(|&x| x == d), "n={n} d={d}");
        }
        assert_eq!(random_regular(5, 0, 0).m(), 0);
        assert_eq!(random_regular(20, 3, 7), random_regular(20, 3, 7));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_product() {
        random_regular(5, 3, 0);
    }

    #[test]
    fn barabasi_albert_hubs() {
        let g = barabasi_albert(300, 3, 5);
        assert_eq!(g.n(), 300);
        assert_eq!(g.m(), 3 + 3 * (300 - 4));
        let mut deg = g.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        // Preferential attachment: the top hub dwarfs the median (≈ k).
        assert!(deg[0] >= 4 * deg[150], "top {} median {}", deg[0], deg[150]);
        assert!(deg.iter().rev().take(100).all(|&d| d >= 3));
    }

    #[test]
    fn planted_cliques_contain_cliques() {
        let g = planted_cliques(4, 6, 0.05, 9);
        assert_eq!(g.n(), 24);
        // Every planted clique's edges are present.
        let adj = g.neighbours();
        for c in 0..4usize {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    let (u, v) = ((c * 6 + i) as VertexId, (c * 6 + j) as VertexId);
                    assert!(adj[u as usize].contains(&v));
                }
            }
        }
        // Noise-free case has exactly the clique edges.
        assert_eq!(planted_cliques(3, 4, 0.0, 1).m(), 3 * 6);
    }

    #[test]
    fn degree_weights_favour_hubs() {
        let g = with_degree_weights(&star(6), 0.5);
        // Every star edge touches the degree-5 centre and a leaf (degree 1):
        // w = 1 + 6·0.5 = 4.
        for e in g.edges() {
            assert!((e.w - 4.0).abs() < 1e-12);
        }
        // scale 0 keeps unit-ish weights
        let h = with_degree_weights(&star(6), 0.0);
        assert!(h.edges().iter().all(|e| (e.w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn fixed_topologies() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(star(5).max_degree(), 4);
        assert_eq!(complete(6).m(), 15);
        assert_eq!(complete(6).max_degree(), 5);
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(0).m(), 0);
    }
}
