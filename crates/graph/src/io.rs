//! Plain-text edge-list serialization.
//!
//! Format (one record per line, `#`-prefixed comments and blank lines
//! ignored):
//!
//! ```text
//! # mrlr edge list
//! n m
//! u v w
//! …
//! ```
//!
//! The header gives the vertex and edge counts; each edge line gives the
//! endpoints and a positive weight (weight may be omitted for unit-weight
//! edges). Used by the examples to persist generated workloads and by the
//! experiment harness to re-run a failing instance.

use std::fmt::Write as _;

use crate::graph::{Edge, Graph, VertexId};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes `g` as an edge list. Weights exactly equal to 1.0 are
/// omitted; other weights are written with full round-trip precision.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 16 * g.m());
    let _ = writeln!(out, "{} {}", g.n(), g.m());
    for e in g.edges() {
        if e.w == 1.0 {
            let _ = writeln!(out, "{} {}", e.u, e.v);
        } else {
            // `{:?}` on f64 prints the shortest representation that
            // round-trips exactly.
            let _ = writeln!(out, "{} {} {:?}", e.u, e.v, e.w);
        }
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`] (or hand-written in the
/// same format). Validates the header counts, endpoint ranges, weight
/// positivity and graph simplicity.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines.next().ok_or_else(|| err(0, "missing header line"))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or_else(|| err(hline, "header needs `n m`"))?
        .parse()
        .map_err(|_| err(hline, "bad vertex count"))?;
    let m: usize = parts
        .next()
        .ok_or_else(|| err(hline, "header needs `n m`"))?
        .parse()
        .map_err(|_| err(hline, "bad edge count"))?;
    if parts.next().is_some() {
        return Err(err(hline, "trailing tokens after header"));
    }

    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    for (lineno, line) in lines {
        let mut toks = line.split_whitespace();
        let u: VertexId = toks
            .next()
            .ok_or_else(|| err(lineno, "missing endpoint"))?
            .parse()
            .map_err(|_| err(lineno, "bad endpoint"))?;
        let v: VertexId = toks
            .next()
            .ok_or_else(|| err(lineno, "missing second endpoint"))?
            .parse()
            .map_err(|_| err(lineno, "bad endpoint"))?;
        let w: f64 = match toks.next() {
            None => 1.0,
            Some(t) => t.parse().map_err(|_| err(lineno, "bad weight"))?,
        };
        if toks.next().is_some() {
            return Err(err(lineno, "trailing tokens after edge"));
        }
        if (u as usize) >= n || (v as usize) >= n {
            return Err(err(lineno, format!("endpoint out of range 0..{n}")));
        }
        if u == v {
            return Err(err(lineno, format!("self-loop at {u}")));
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(err(
                lineno,
                format!("weight {w} must be positive and finite"),
            ));
        }
        let (a, b) = (u.min(v), u.max(v));
        if !seen.insert(((a as u64) << 32) | b as u64) {
            return Err(err(lineno, format!("duplicate edge ({a}, {b})")));
        }
        edges.push(Edge::new(u, v, w));
    }
    if edges.len() != m {
        return Err(err(
            0,
            format!("header promised {m} edges, found {}", edges.len()),
        ));
    }
    Ok(Graph::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnm, with_uniform_weights};

    #[test]
    fn round_trip_unweighted() {
        let g = gnm(20, 60, 3);
        let text = to_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
        // Unit weights are omitted from the text.
        assert!(text.lines().nth(1).unwrap().split_whitespace().count() == 2);
    }

    #[test]
    fn round_trip_weighted_exact() {
        let g = with_uniform_weights(&gnm(15, 40, 1), 0.5, 9.0, 2);
        let h = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!(a.key(), b.key());
            assert_eq!(
                a.w.to_bits(),
                b.w.to_bits(),
                "weights must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# workload\n\n3 2\n# ring piece\n0 1\n\n1 2 2.5\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert!((g.edge(1).w - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new(5, vec![]);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
        let zero = Graph::new(0, vec![]);
        assert_eq!(parse_edge_list(&to_edge_list(&zero)).unwrap(), zero);
    }

    #[test]
    fn error_positions_reported() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 0, "missing header"),
            ("abc", 1, "bad vertex count"),
            ("3", 1, "header needs"),
            ("3 1 9", 1, "trailing tokens"),
            ("3 1\n0", 2, "missing second endpoint"),
            ("3 1\n0 9", 2, "out of range"),
            ("3 1\n1 1", 2, "self-loop"),
            ("3 1\n0 1 -2", 2, "must be positive"),
            ("3 1\n0 1 x", 2, "bad weight"),
            ("3 1\n0 1 1.0 7", 2, "trailing tokens"),
            ("3 2\n0 1\n1 0", 3, "duplicate edge"),
            ("3 2\n0 1", 0, "promised 2 edges"),
        ];
        for (text, line, needle) in cases {
            let e = parse_edge_list(text).unwrap_err();
            assert_eq!(e.line, *line, "case {text:?} gave {e}");
            assert!(e.message.contains(needle), "case {text:?} gave {e}");
        }
    }

    #[test]
    fn display_is_informative() {
        let e = parse_edge_list("3 1\n0 9").unwrap_err();
        let s = e.to_string();
        assert!(s.contains("line 2"));
        assert!(s.contains("out of range"));
    }
}
