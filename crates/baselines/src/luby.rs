//! Luby's randomized maximal independent set — the classical PRAM
//! algorithm (reference \[31\] of the paper), which translates to an
//! `O(log n)`-round MapReduce algorithm (one machine per processor).
//!
//! The paper's point (Section 1.2 / Section 6) is that such PRAM
//! simulations cost `Θ(log n)` rounds, missing the `O(1)`/`O(c/µ)` gold
//! standard its hungry-greedy technique achieves; this implementation
//! exists to measure exactly that round gap.

use mrlr_graph::{Graph, VertexId};
use mrlr_mapreduce::rng::mix_tags;
use mrlr_mapreduce::unit_f64;

/// Result of a Luby run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LubyResult {
    /// The maximal independent set, ascending.
    pub vertices: Vec<VertexId>,
    /// Synchronous rounds executed (each is `O(1)` MapReduce rounds).
    pub rounds: usize,
}

/// Runs Luby's algorithm: per round, every alive vertex draws a priority;
/// strict local minima join the independent set and their neighbourhoods
/// are removed.
pub fn luby_mis(g: &Graph, seed: u64) -> LubyResult {
    let n = g.n();
    let adj = g.neighbours();
    let mut alive = vec![true; n];
    let mut in_i = vec![false; n];
    let mut alive_count = n;
    let mut rounds = 0usize;

    while alive_count > 0 {
        rounds += 1;
        // Hash-derived per-round priorities (ties broken by id, which are
        // distinct, so minima are well defined).
        let prio = |v: usize| {
            (
                unit_f64(mix_tags(seed, &[0x6c75_6279, rounds as u64, v as u64])),
                v,
            )
        };
        let mut winners: Vec<usize> = Vec::new();
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let pv = prio(v);
            let is_min = adj[v]
                .iter()
                .filter(|&&w| alive[w as usize])
                .all(|&w| prio(w as usize) > pv);
            if is_min {
                winners.push(v);
            }
        }
        debug_assert!(
            !winners.is_empty(),
            "alive subgraph always has a local minimum"
        );
        for &v in &winners {
            in_i[v] = true;
            if alive[v] {
                alive[v] = false;
                alive_count -= 1;
            }
            for &w in &adj[v] {
                if alive[w as usize] {
                    alive[w as usize] = false;
                    alive_count -= 1;
                }
            }
        }
    }

    LubyResult {
        vertices: (0..n as VertexId).filter(|&v| in_i[v as usize]).collect(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_core::verify::is_maximal_independent_set;
    use mrlr_graph::generators::{complete, densified, gnm, star};

    #[test]
    fn produces_maximal_independent_sets() {
        for seed in 0..8 {
            let g = gnm(60, 500, seed);
            let r = luby_mis(&g, seed);
            assert!(is_maximal_independent_set(&g, &r.vertices), "seed {seed}");
        }
    }

    #[test]
    fn rounds_scale_logarithmically() {
        // Luby needs O(log n) rounds w.h.p. — check a generous bound.
        for (n, c) in [(100usize, 0.3f64), (300, 0.3), (1000, 0.25)] {
            let g = densified(n, c, 7);
            let r = luby_mis(&g, 11);
            let bound = 6.0 * (n as f64).log2().ceil();
            assert!(
                (r.rounds as f64) < bound,
                "n={n}: {} rounds > {bound}",
                r.rounds
            );
        }
    }

    #[test]
    fn complete_graph_single_round_winner() {
        let g = complete(20);
        let r = luby_mis(&g, 3);
        assert_eq!(r.vertices.len(), 1);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn star_and_edgeless() {
        let g = star(10);
        let r = luby_mis(&g, 5);
        assert!(is_maximal_independent_set(&g, &r.vertices));
        let empty = Graph::new(4, vec![]);
        let r = luby_mis(&empty, 5);
        assert_eq!(r.vertices.len(), 4);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn deterministic() {
        let g = gnm(40, 200, 2);
        assert_eq!(luby_mis(&g, 9), luby_mis(&g, 9));
    }
}
