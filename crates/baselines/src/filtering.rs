//! The filtering technique of Lattanzi, Moseley, Suri and Vassilvitskii
//! (SPAA 2011) — reference \[27\] of the paper and the baseline its
//! randomized local ratio descends from.
//!
//! Filtering samples edges to fit one machine, computes a maximal matching
//! on the sample centrally, and *filters out* edges whose endpoints got
//! matched; repeat until the residual graph fits centrally. Yields a
//! maximal matching (2-approximation, unweighted) in `O(c/µ)` rounds, a
//! 2-approximate unweighted vertex cover (the matched endpoints), and —
//! with geometric weight layering — an 8-approximation for weighted
//! matching.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{MrError, MrResult};

/// Tag for the filtering sample coins.
pub const FILTER_COIN_TAG: u64 = 0x4649_4c54;

/// Result of a filtering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteringResult {
    /// The maximal matching found.
    pub matching: Vec<EdgeId>,
    /// Sampling iterations (each costs `O(1)` MapReduce rounds).
    pub iterations: usize,
    /// Peak central sample size (words ∝ 3×).
    pub peak_sample: usize,
}

fn greedy_maximal_on(
    g: &Graph,
    edges: impl Iterator<Item = EdgeId>,
    used: &mut [bool],
    matching: &mut Vec<EdgeId>,
) {
    for id in edges {
        let e = g.edge(id);
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            matching.push(id);
        }
    }
}

/// Filtering maximal matching restricted to `active` edges (used directly
/// and by the weighted layering). `eta` is the per-round sample budget.
fn filtering_on_subset(
    g: &Graph,
    active: &mut [bool],
    used: &mut [bool],
    eta: usize,
    seed: u64,
    matching: &mut Vec<EdgeId>,
) -> MrResult<(usize, usize)> {
    let mut iterations = 0usize;
    let mut peak = 0usize;
    loop {
        // Drop edges with a matched endpoint (the filtering step).
        let mut alive: Vec<EdgeId> = Vec::new();
        for (idx, act) in active.iter_mut().enumerate() {
            if *act {
                let e = g.edge(idx as EdgeId);
                if used[e.u as usize] || used[e.v as usize] {
                    *act = false;
                } else {
                    alive.push(idx as EdgeId);
                }
            }
        }
        if alive.is_empty() {
            break;
        }
        iterations += 1;
        if iterations > 64 + 2 * g.m() {
            return Err(MrError::AlgorithmFailed {
                round: iterations,
                reason: "filtering failed to converge".into(),
            });
        }
        if alive.len() <= eta {
            peak = peak.max(alive.len());
            greedy_maximal_on(g, alive.into_iter(), used, matching);
            break;
        }
        let p = (eta as f64 / alive.len() as f64).min(1.0);
        let sample: Vec<EdgeId> = alive
            .iter()
            .copied()
            .filter(|&e| coin(seed, &[FILTER_COIN_TAG, iterations as u64, e as u64], p))
            .collect();
        peak = peak.max(sample.len());
        greedy_maximal_on(g, sample.into_iter(), used, matching);
    }
    Ok((iterations, peak))
}

/// Filtering maximal matching (\[27\]): 2-approximate maximum (unweighted)
/// matching, `O(c/µ)` sampling iterations with sample budget `eta`.
pub fn filtering_maximal_matching(g: &Graph, eta: usize, seed: u64) -> MrResult<FilteringResult> {
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let mut active = vec![true; g.m()];
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    let (iterations, peak_sample) =
        filtering_on_subset(g, &mut active, &mut used, eta, seed, &mut matching)?;
    matching.sort_unstable();
    Ok(FilteringResult {
        matching,
        iterations,
        peak_sample,
    })
}

/// Filtering vertex cover (\[27\]): the endpoints of a filtering maximal
/// matching — a 2-approximate unweighted vertex cover.
pub fn filtering_vertex_cover(
    g: &Graph,
    eta: usize,
    seed: u64,
) -> MrResult<(Vec<VertexId>, usize)> {
    let r = filtering_maximal_matching(g, eta, seed)?;
    let mut cover: Vec<VertexId> = r
        .matching
        .iter()
        .flat_map(|&e| {
            let edge = g.edge(e);
            [edge.u, edge.v]
        })
        .collect();
    cover.sort_unstable();
    cover.dedup();
    Ok((cover, r.iterations))
}

/// Layered filtering for *weighted* matching (\[27\], the 8-approximation
/// scheme): bucket edges into geometric weight classes `[2^i, 2^{i+1})` and
/// run filtering maximal matching per class, heaviest first, on the
/// vertices still unmatched.
pub fn layered_weighted_matching(g: &Graph, eta: usize, seed: u64) -> MrResult<FilteringResult> {
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    if g.m() == 0 {
        return Ok(FilteringResult {
            matching: vec![],
            iterations: 0,
            peak_sample: 0,
        });
    }
    // Geometric classes by weight.
    let mut class_of = vec![0i32; g.m()];
    let mut max_class = i32::MIN;
    let mut min_class = i32::MAX;
    for (idx, e) in g.edges().iter().enumerate() {
        let c = e.w.log2().floor() as i32;
        class_of[idx] = c;
        max_class = max_class.max(c);
        min_class = min_class.min(c);
    }
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    let mut iterations = 0usize;
    let mut peak = 0usize;
    for c in (min_class..=max_class).rev() {
        let mut active: Vec<bool> = (0..g.m()).map(|i| class_of[i] == c).collect();
        if !active.iter().any(|&a| a) {
            continue;
        }
        let (it, pk) = filtering_on_subset(
            g,
            &mut active,
            &mut used,
            eta,
            seed ^ (c as u64).wrapping_mul(0x9E37_79B9),
            &mut matching,
        )?;
        iterations += it;
        peak = peak.max(pk);
    }
    matching.sort_unstable();
    Ok(FilteringResult {
        matching,
        iterations,
        peak_sample: peak,
    })
}

/// Sequential greedy weighted matching (heaviest-first): the classical
/// sequential 2-approximation, used as a quality reference.
pub fn greedy_weighted_matching(g: &Graph) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    order.sort_by(|&a, &b| g.edge(b).w.total_cmp(&g.edge(a).w).then(a.cmp(&b)));
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    greedy_maximal_on(g, order.into_iter(), &mut used, &mut matching);
    matching.sort_unstable();
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_core::exact::max_weight_matching;
    use mrlr_core::verify::{is_matching, is_vertex_cover, matching_weight};
    use mrlr_graph::generators::{gnm, with_log_uniform_weights, with_uniform_weights};

    fn is_maximal_matching(g: &Graph, matching: &[EdgeId]) -> bool {
        if !is_matching(g, matching) {
            return false;
        }
        let mut used = vec![false; g.n()];
        for &e in matching {
            used[g.edge(e).u as usize] = true;
            used[g.edge(e).v as usize] = true;
        }
        g.edges()
            .iter()
            .all(|e| used[e.u as usize] || used[e.v as usize])
    }

    #[test]
    fn filtering_matching_is_maximal() {
        for seed in 0..6 {
            let g = gnm(50, 400, seed);
            let r = filtering_maximal_matching(&g, 40, seed).unwrap();
            assert!(is_maximal_matching(&g, &r.matching), "seed {seed}");
            assert!(r.peak_sample <= 40 + 400);
        }
    }

    #[test]
    fn filtering_iterations_shrink() {
        let g = gnm(100, 3000, 3);
        let r = filtering_maximal_matching(&g, 150, 3).unwrap();
        assert!(r.iterations >= 2);
        assert!(r.iterations <= 30, "iterations {}", r.iterations);
    }

    #[test]
    fn filtering_cover_covers() {
        for seed in 0..4 {
            let g = gnm(40, 300, seed);
            let (cover, _) = filtering_vertex_cover(&g, 30, seed).unwrap();
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            // Maximal matching endpoints: at most 2·OPT vertices
            // (unweighted), so never more than n.
            assert!(cover.len() <= g.n());
        }
    }

    #[test]
    fn layered_matching_valid_and_reasonable() {
        for seed in 0..5 {
            let g = with_log_uniform_weights(&gnm(14, 40, seed), 0.5, 64.0, seed + 5);
            let r = layered_weighted_matching(&g, 10, seed).unwrap();
            assert!(is_matching(&g, &r.matching), "seed {seed}");
            let (opt, _) = max_weight_matching(&g);
            let got = matching_weight(&g, &r.matching);
            assert!(8.0 * got + 1e-9 >= opt, "seed {seed}: {got} vs opt {opt}");
        }
    }

    #[test]
    fn greedy_weighted_is_half_opt() {
        for seed in 0..5 {
            let g = with_uniform_weights(&gnm(12, 30, seed), 1.0, 9.0, seed);
            let m = greedy_weighted_matching(&g);
            assert!(is_matching(&g, &m));
            let (opt, _) = max_weight_matching(&g);
            assert!(2.0 * matching_weight(&g, &m) + 1e-9 >= opt);
        }
    }

    #[test]
    fn deterministic() {
        let g = gnm(30, 200, 1);
        let a = filtering_maximal_matching(&g, 25, 9).unwrap();
        let b = filtering_maximal_matching(&g, 25, 9).unwrap();
        assert_eq!(a.matching, b.matching);
    }
}
