//! Luby-style randomized `(Δ+1)`-vertex colouring — reference \[32\] of the
//! paper (Section 6: Luby's MIS and colouring "have clean MapReduce
//! implementations by using one machine per processor", costing `Θ(log n)`
//! rounds).
//!
//! Per round, every uncoloured vertex draws a uniform candidate from its
//! remaining palette (`{0..d(v)+1}` minus neighbours' final colours); a
//! vertex keeps its candidate iff no uncoloured neighbour drew the same one
//! this round. A constant fraction of vertices finalize per round in
//! expectation, giving `O(log n)` rounds w.h.p. — the round bill the
//! paper's Algorithm 5 avoids.

use mrlr_graph::Graph;
use mrlr_mapreduce::rng::{mix_tags, DetRng};

/// Result of a Luby colouring run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LubyColouringResult {
    /// Colour per vertex, in `0..=Δ`.
    pub colours: Vec<u32>,
    /// Number of distinct colours used.
    pub num_colours: usize,
    /// Synchronous rounds executed (each is `O(1)` MapReduce rounds).
    pub rounds: usize,
}

/// Runs the randomized `(Δ+1)`-colouring. Deterministic in `seed`.
pub fn luby_colouring(g: &Graph, seed: u64) -> LubyColouringResult {
    let n = g.n();
    let adj = g.neighbours();
    let deg = g.degrees();
    let mut colour: Vec<Option<u32>> = vec![None; n];
    let mut uncoloured = n;
    let mut rounds = 0usize;

    while uncoloured > 0 {
        rounds += 1;
        // Draw candidates: uniform over the palette minus finalized
        // neighbour colours. Hash-derived per (seed, round, vertex).
        let mut candidate: Vec<Option<u32>> = vec![None; n];
        for v in 0..n {
            if colour[v].is_some() {
                continue;
            }
            let palette_size = deg[v] as u32 + 1;
            let mut taken: Vec<u32> = adj[v]
                .iter()
                .filter_map(|&w| colour[w as usize])
                .filter(|&c| c < palette_size)
                .collect();
            taken.sort_unstable();
            taken.dedup();
            let free = palette_size as usize - taken.len();
            debug_assert!(free > 0, "palette of size d(v)+1 cannot exhaust");
            let mut rng = DetRng::new(mix_tags(seed, &[0x6c63_6f6c, rounds as u64, v as u64]));
            let pick = rng.range_usize(free) as u32;
            // The pick-th free colour in the palette.
            let mut c = 0u32;
            let mut skipped = 0u32;
            let mut ti = 0usize;
            loop {
                if ti < taken.len() && taken[ti] == c {
                    ti += 1;
                    c += 1;
                    continue;
                }
                if skipped == pick {
                    break;
                }
                skipped += 1;
                c += 1;
            }
            candidate[v] = Some(c);
        }
        // Keep candidates that no uncoloured neighbour shares.
        for v in 0..n {
            let Some(c) = candidate[v] else { continue };
            let conflict = adj[v]
                .iter()
                .any(|&w| colour[w as usize].is_none() && candidate[w as usize] == Some(c));
            if !conflict {
                colour[v] = Some(c);
                uncoloured -= 1;
            }
        }
        assert!(
            rounds <= 64 + 8 * n,
            "Luby colouring failed to converge (bug, not bad luck)"
        );
    }

    let colours: Vec<u32> = colour
        .into_iter()
        .map(|c| c.expect("all coloured"))
        .collect();
    let num_colours = {
        let mut cs = colours.clone();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    };
    LubyColouringResult {
        colours,
        num_colours,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_core::verify::is_proper_colouring;
    use mrlr_graph::generators::{complete, cycle, gnm, path, star};

    #[test]
    fn proper_within_delta_plus_one() {
        for seed in 0..6 {
            let g = gnm(60, 400, seed);
            let r = luby_colouring(&g, seed);
            assert!(is_proper_colouring(&g, &r.colours), "seed {seed}");
            assert!(
                r.colours.iter().all(|&c| (c as usize) <= g.max_degree()),
                "colour outside palette"
            );
            assert!(r.num_colours <= g.max_degree() + 1);
        }
    }

    #[test]
    fn fixed_topologies() {
        let r = luby_colouring(&complete(8), 3);
        assert_eq!(r.num_colours, 8);
        assert!(is_proper_colouring(&complete(8), &r.colours));
        let r = luby_colouring(&star(20), 4);
        assert!(r.num_colours <= 20);
        assert!(is_proper_colouring(&star(20), &r.colours));
        let r = luby_colouring(&path(10), 5);
        assert!(r.num_colours <= 3);
        let r = luby_colouring(&cycle(9), 6);
        assert!(r.num_colours <= 3);
        // Edgeless: everyone finalizes colour 0 in one round.
        let g = Graph::new(5, vec![]);
        let r = luby_colouring(&g, 1);
        assert_eq!(r.num_colours, 1);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn rounds_grow_slowly() {
        // O(log n): a 16x larger instance should cost only a few more
        // rounds, far from 16x.
        let small = luby_colouring(&gnm(50, 200, 7), 7);
        let large = luby_colouring(&gnm(800, 3200, 7), 7);
        assert!(
            large.rounds <= small.rounds + 12,
            "{} vs {}",
            large.rounds,
            small.rounds
        );
        assert!(large.rounds <= 40);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gnm(40, 200, 2);
        assert_eq!(luby_colouring(&g, 9), luby_colouring(&g, 9));
        let a = luby_colouring(&g, 1);
        let b = luby_colouring(&g, 2);
        assert!(a.colours != b.colours || a.rounds != b.rounds);
    }
}
