//! The Crouch–Stubbs weight-class technique (reference \[14\] of the paper,
//! refined by Grigorescu, Monemizadeh and Zhou \[21\]): a `(4+ε)`-
//! approximation for *weighted* matching built from unweighted maximal
//! matchings.
//!
//! For every threshold `τ_i = w_min (1+ε)^i` the algorithm maintains a
//! maximal matching `M_i` of the subgraph of edges with weight `≥ τ_i`
//! (here: the filtering maximal matching of \[27\], which is the MapReduce
//! instantiation the paper's Figure 1 cites). The final matching greedily
//! merges `M_L, M_{L-1}, …, M_0` from the heaviest class down. Classes are
//! independent, so in MapReduce they run in parallel: the round count is a
//! single filtering run's, while space multiplies by the number of classes
//! `L = O(log_{1+ε}(w_max/w_min))`.
//!
//! ```
//! use mrlr_baselines::crouch_stubbs_matching;
//! use mrlr_graph::generators;
//!
//! let g = generators::with_log_uniform_weights(
//!     &generators::gnm(30, 150, 1), 0.5, 64.0, 2);
//! let r = crouch_stubbs_matching(&g, 0.5, 50, 3).unwrap();
//! assert!(mrlr_core::verify::is_matching(&g, &r.matching));
//! assert!(r.classes >= 2); // several weight classes at this spread
//! ```

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::{MrError, MrResult};

use crate::filtering::filtering_maximal_matching;

/// Result of a Crouch–Stubbs run.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredResult {
    /// The merged matching.
    pub matching: Vec<EdgeId>,
    /// Total weight of the matching.
    pub weight: f64,
    /// Number of weight classes `L`.
    pub classes: usize,
    /// Maximum filtering iterations over all classes (the classes run in
    /// parallel, so this is the round-relevant figure).
    pub max_iterations: usize,
    /// Sum of per-class peak sample sizes (the space-relevant figure: all
    /// classes are resident at once).
    pub total_peak_sample: usize,
}

/// Runs the Crouch–Stubbs `(4+ε)`-approximation for weighted matching.
/// `eta` is the per-class filtering sample budget.
///
/// Guarantees (for the merge of maximal matchings over nested classes):
/// the merged matching has weight at least `OPT / ((1+ε) · 4)` — see \[14\],
/// Theorem 1; \[21\] tightens the constant to 3.5.
pub fn crouch_stubbs_matching(
    g: &Graph,
    eps: f64,
    eta: usize,
    seed: u64,
) -> MrResult<LayeredResult> {
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    if g.m() == 0 {
        return Ok(LayeredResult {
            matching: vec![],
            weight: 0.0,
            classes: 0,
            max_iterations: 0,
            total_peak_sample: 0,
        });
    }
    let w_min = g.edges().iter().map(|e| e.w).fold(f64::INFINITY, f64::min);
    let w_max = g.edges().iter().map(|e| e.w).fold(0.0f64, f64::max);
    // Thresholds τ_i = w_min (1+ε)^i for i = 0..L with τ_L ≤ w_max.
    let classes = ((w_max / w_min).ln() / (1.0 + eps).ln()).floor() as usize + 1;

    // One maximal matching per class, on the subgraph of weight ≥ τ_i.
    // Classes are nested: class 0 is the whole graph.
    let mut per_class: Vec<Vec<EdgeId>> = Vec::with_capacity(classes);
    let mut max_iterations = 0usize;
    let mut total_peak = 0usize;
    for i in 0..classes {
        let tau = w_min * (1.0 + eps).powi(i as i32);
        // Build the class subgraph view: same vertex set, filtered edges.
        // Edge ids must refer to `g`, so filter by marking.
        let sub = class_subgraph(g, tau);
        if sub.live == 0 {
            per_class.push(vec![]);
            continue;
        }
        let r = filtering_maximal_matching(
            &sub.graph,
            eta,
            seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )?;
        max_iterations = max_iterations.max(r.iterations);
        total_peak += r.peak_sample;
        per_class.push(
            r.matching
                .iter()
                .map(|&local| sub.to_parent[local as usize])
                .collect(),
        );
    }

    // Greedy merge, heaviest class first.
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    let mut weight = 0.0;
    for class in per_class.iter().rev() {
        for &id in class {
            let e = g.edge(id);
            if !used[e.u as usize] && !used[e.v as usize] {
                used[e.u as usize] = true;
                used[e.v as usize] = true;
                matching.push(id);
                weight += e.w;
            }
        }
    }
    matching.sort_unstable();
    Ok(LayeredResult {
        matching,
        weight,
        classes,
        max_iterations,
        total_peak_sample: total_peak,
    })
}

struct ClassSubgraph {
    graph: Graph,
    /// Maps the subgraph's edge id back to the parent graph's edge id.
    to_parent: Vec<EdgeId>,
    live: usize,
}

fn class_subgraph(g: &Graph, tau: f64) -> ClassSubgraph {
    let mut edges = Vec::new();
    let mut to_parent = Vec::new();
    for (idx, e) in g.edges().iter().enumerate() {
        if e.w >= tau {
            edges.push(*e);
            to_parent.push(idx as EdgeId);
        }
    }
    let live = edges.len();
    ClassSubgraph {
        graph: Graph::new(g.n(), edges),
        to_parent,
        live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_core::exact::max_weight_matching;
    use mrlr_core::verify::{is_matching, matching_weight};
    use mrlr_graph::generators::{gnm, with_log_uniform_weights, with_uniform_weights};

    #[test]
    fn valid_matching_and_weight_consistent() {
        for seed in 0..6 {
            let g = with_log_uniform_weights(&gnm(40, 250, seed), 0.5, 128.0, seed + 9);
            let r = crouch_stubbs_matching(&g, 0.5, 50, seed).unwrap();
            assert!(is_matching(&g, &r.matching), "seed {seed}");
            assert!((r.weight - matching_weight(&g, &r.matching)).abs() < 1e-9);
            assert!(r.classes >= 1);
        }
    }

    #[test]
    fn ratio_within_4_plus_eps_of_exact() {
        for seed in 0..8 {
            let g = with_log_uniform_weights(&gnm(14, 45, seed), 0.5, 64.0, seed + 3);
            let (opt, _) = max_weight_matching(&g);
            let r = crouch_stubbs_matching(&g, 0.25, 12, seed).unwrap();
            assert!(
                (4.0 + 0.25 + 1e-9) * r.weight >= opt,
                "seed {seed}: got {} opt {opt}",
                r.weight
            );
        }
    }

    #[test]
    fn beats_its_own_guarantee_typically() {
        // On uniform weights the merge is usually far better than 4+ε; this
        // guards against silent regressions that still satisfy the bound.
        let g = with_uniform_weights(&gnm(60, 600, 2), 1.0, 8.0, 7);
        let r = crouch_stubbs_matching(&g, 0.5, 80, 2).unwrap();
        let greedy = crate::filtering::greedy_weighted_matching(&g);
        let gw = matching_weight(&g, &greedy);
        assert!(r.weight >= 0.5 * gw, "layered {} vs greedy {gw}", r.weight);
    }

    #[test]
    fn class_count_tracks_spread() {
        let narrow = with_uniform_weights(&gnm(20, 60, 1), 1.0, 1.1, 2);
        let wide = with_log_uniform_weights(&gnm(20, 60, 1), 1.0, 1000.0, 2);
        let rn = crouch_stubbs_matching(&narrow, 0.5, 30, 1).unwrap();
        let rw = crouch_stubbs_matching(&wide, 0.5, 30, 1).unwrap();
        assert!(rn.classes <= 2);
        assert!(rw.classes > rn.classes, "{} vs {}", rw.classes, rn.classes);
    }

    #[test]
    fn empty_graph_and_bad_config() {
        let empty = Graph::new(5, vec![]);
        let r = crouch_stubbs_matching(&empty, 0.5, 10, 0).unwrap();
        assert!(r.matching.is_empty());
        assert_eq!(r.classes, 0);
        assert!(crouch_stubbs_matching(&gnm(5, 4, 0), 0.0, 10, 0).is_err());
        assert!(crouch_stubbs_matching(&gnm(5, 4, 0), 0.5, 0, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let g = with_log_uniform_weights(&gnm(30, 150, 4), 0.5, 64.0, 11);
        let a = crouch_stubbs_matching(&g, 0.3, 25, 5).unwrap();
        let b = crouch_stubbs_matching(&g, 0.3, 25, 5).unwrap();
        assert_eq!(a.matching, b.matching);
    }
}
