//! # mrlr-baselines — the literature baselines of Figure 1
//!
//! Implementations of the prior-work rows the paper compares against:
//!
//! * **Filtering** (Lattanzi et al., SPAA 2011 — reference \[27\]):
//!   maximal matching, unweighted 2-approximate vertex cover, and the
//!   geometric-layering 8-approximation for weighted matching
//!   ([`filtering`]).
//! * **Luby's MIS** (reference \[31\]): the `O(log n)`-round PRAM algorithm
//!   whose round count the hungry-greedy technique beats ([`luby`]).
//! * **Luby-style `(Δ+1)` colouring** (reference \[32\]): the `O(log n)`-round
//!   baseline that Section 6's `O(1)`-round colouring is measured against
//!   ([`mod@luby_colouring`]).
//! * **Crouch–Stubbs weight classes** (reference \[14\], refined by \[21\]):
//!   `(4+ε)`-approximate weighted matching from parallel unweighted
//!   maximal matchings ([`layered`]).
//! * **Two-round coreset matching** (the flavour of Assadi–Khanna,
//!   reference \[4\]): random partition, per-machine greedy coresets,
//!   central merge ([`coreset`]).
//! * Sequential greedy weighted matching as a quality reference
//!   ([`filtering::greedy_weighted_matching`]).

#![warn(missing_docs)]

pub mod coreset;
pub mod filtering;
pub mod layered;
pub mod luby;
pub mod luby_colouring;

pub use coreset::{coreset_matching, CoresetResult};
pub use filtering::{
    filtering_maximal_matching, filtering_vertex_cover, greedy_weighted_matching,
    layered_weighted_matching, FilteringResult,
};
pub use layered::{crouch_stubbs_matching, LayeredResult};
pub use luby::{luby_mis, LubyResult};
pub use luby_colouring::{luby_colouring, LubyColouringResult};
