//! Two-round composable-coreset matching, in the style of Assadi and
//! Khanna (reference \[4\] of the paper).
//!
//! Round 1: edges are randomly partitioned across `k` machines; every
//! machine computes a greedy (heaviest-first) maximal matching of its part —
//! its *coreset* of at most `⌊n/2⌋` edges. Round 2: the central machine
//! collects all coresets (`O(k·n)` words — the `O˜(n^{1.5})` row of Figure 1
//! for `k = √n`) and outputs a greedy matching of their union.
//!
//! The paper cites \[4\] for `O(1)`-approximate unweighted matching in exactly
//! 2 rounds (their coreset is an EDCS; ours is the simpler greedy coreset of
//! the randomized composable-coreset line \[33\], which gives a maximal — and
//! hence 2-approximate — matching of the *sampled union*, and a constant
//! factor in expectation on random partitions). The tests pin down the
//! properties we rely on: validity, 2 rounds, coreset size, and a measured
//! constant-factor gap against the exact optimum on small instances.
//!
//! ```
//! use mrlr_baselines::coreset_matching;
//! use mrlr_graph::generators;
//!
//! let g = generators::with_uniform_weights(&generators::gnm(40, 300, 1), 1.0, 9.0, 2);
//! let r = coreset_matching(&g, 5, 3).unwrap();
//! assert!(mrlr_core::verify::is_matching(&g, &r.matching));
//! assert!(r.max_coreset <= g.n() / 2); // a matching per machine
//! ```

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::rng::mix2;
use mrlr_mapreduce::{MrError, MrResult};

/// Result of a two-round coreset matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoresetResult {
    /// The final matching (edge ids into the input graph).
    pub matching: Vec<EdgeId>,
    /// Total weight.
    pub weight: f64,
    /// Number of partitions (machines) used in round 1.
    pub machines: usize,
    /// Total edges shipped to the central machine in round 2.
    pub union_size: usize,
    /// Largest single coreset.
    pub max_coreset: usize,
}

/// Runs the 2-round coreset algorithm with `machines` partitions.
pub fn coreset_matching(g: &Graph, machines: usize, seed: u64) -> MrResult<CoresetResult> {
    if machines == 0 {
        return Err(MrError::BadConfig("need at least one machine".into()));
    }
    // Round 1: random partition + per-machine greedy maximal matching.
    let mut parts: Vec<Vec<EdgeId>> = vec![Vec::new(); machines];
    for id in 0..g.m() as EdgeId {
        let m = (mix2(seed ^ 0x636f_7265, id as u64) % machines as u64) as usize;
        parts[m].push(id);
    }
    let mut union: Vec<EdgeId> = Vec::new();
    let mut max_coreset = 0usize;
    for part in &parts {
        let coreset = greedy_on(g, part);
        max_coreset = max_coreset.max(coreset.len());
        union.extend(coreset);
    }
    // Round 2: central greedy matching over the union of coresets.
    let matching = greedy_on(g, &union);
    let weight = matching.iter().map(|&e| g.edge(e).w).sum();
    Ok(CoresetResult {
        matching,
        weight,
        machines,
        union_size: union.len(),
        max_coreset,
    })
}

/// Greedy heaviest-first maximal matching restricted to `edges`; ties break
/// by edge id so the result is deterministic.
fn greedy_on(g: &Graph, edges: &[EdgeId]) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = edges.to_vec();
    order.sort_by(|&a, &b| g.edge(b).w.total_cmp(&g.edge(a).w).then(a.cmp(&b)));
    let mut used = vec![false; g.n()];
    let mut out = Vec::new();
    for id in order {
        let e = g.edge(id);
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filtering::greedy_weighted_matching;
    use mrlr_core::exact::max_weight_matching;
    use mrlr_core::verify::{is_matching, matching_weight};
    use mrlr_graph::generators::{complete, gnm, with_uniform_weights};

    #[test]
    fn valid_and_weight_consistent() {
        for seed in 0..5 {
            let g = with_uniform_weights(&gnm(50, 500, seed), 1.0, 9.0, seed);
            let r = coreset_matching(&g, 8, seed).unwrap();
            assert!(is_matching(&g, &r.matching), "seed {seed}");
            assert!((r.weight - matching_weight(&g, &r.matching)).abs() < 1e-9);
        }
    }

    #[test]
    fn coresets_bounded_by_half_n() {
        let g = gnm(40, 600, 3);
        let r = coreset_matching(&g, 6, 3).unwrap();
        assert!(r.max_coreset <= g.n() / 2);
        assert!(r.union_size <= 6 * (g.n() / 2));
    }

    #[test]
    fn single_machine_equals_sequential_greedy() {
        let g = with_uniform_weights(&gnm(30, 200, 1), 1.0, 5.0, 4);
        let r = coreset_matching(&g, 1, 9).unwrap();
        assert_eq!(r.matching, greedy_weighted_matching(&g));
    }

    #[test]
    fn constant_factor_on_small_instances() {
        // Empirical constant: on these seeds the 2-round coreset stays
        // within factor 3 of the exact optimum (the [4] row promises O(1)).
        for seed in 0..8 {
            let g = with_uniform_weights(&gnm(16, 60, seed), 1.0, 9.0, seed + 1);
            let (opt, _) = max_weight_matching(&g);
            let r = coreset_matching(&g, 4, seed).unwrap();
            assert!(
                3.0 * r.weight + 1e-9 >= opt,
                "seed {seed}: {} vs {opt}",
                r.weight
            );
        }
    }

    #[test]
    fn near_perfect_on_complete_graphs() {
        // On K_n each part's coreset already matches most vertices, so the
        // merged matching is near-perfect (maximality holds in the union,
        // not in K_n, so a small deficit is possible). Deterministic seeds
        // keep this stable.
        let g = complete(20);
        let r = coreset_matching(&g, 5, 2).unwrap();
        assert!(
            r.matching.len() >= 8,
            "matched only {} pairs",
            r.matching.len()
        );
        let one = coreset_matching(&g, 1, 2).unwrap();
        assert_eq!(one.matching.len(), 10, "single machine is maximal in K_n");
    }

    #[test]
    fn deterministic_and_machine_sensitive() {
        let g = with_uniform_weights(&gnm(30, 300, 2), 1.0, 7.0, 8);
        let a = coreset_matching(&g, 4, 5).unwrap();
        let b = coreset_matching(&g, 4, 5).unwrap();
        assert_eq!(a, b);
        assert!(coreset_matching(&g, 0, 5).is_err());
    }
}
