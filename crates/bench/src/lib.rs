//! # mrlr-bench — the experiment harness
//!
//! Utilities shared by the `figure1` and `experiments` binaries and the
//! criterion benches: standard workloads, ratio measurement against exact
//! solvers or dual certificates, and markdown table rendering.

#![warn(missing_docs)]

pub mod sweep;
pub mod workloads;

use mrlr_core::exact;
use mrlr_graph::{generators, Graph};
use mrlr_mapreduce::DetRng;

/// A rendered table row: free-form cells.
#[derive(Debug, Clone)]
pub struct Row(pub Vec<String>);

/// Renders a markdown table.
pub fn render_table(headers: &[&str], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.0.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(&row.0, &widths));
    }
    out
}

/// The standard weighted graph workload: `n` vertices, `m = n^{1+c}` edges,
/// uniform weights in `[1, 10)`.
pub fn weighted_graph(n: usize, c: f64, seed: u64) -> Graph {
    generators::with_uniform_weights(&generators::densified(n, c, seed), 1.0, 10.0, seed ^ 0x77)
}

/// Random positive vertex weights in `[1, 10)`.
pub fn vertex_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::derive(seed, &[0x0076_7773]);
    (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect()
}

/// Measured approximation ratio of a minimization result against the best
/// known lower bound; for small instances the exact optimum.
pub fn min_ratio(weight: f64, lower_bound: f64) -> f64 {
    if lower_bound <= 0.0 {
        1.0
    } else {
        weight / lower_bound
    }
}

/// Cap applied by [`max_ratio`] when a maximization algorithm achieved
/// nothing against a positive optimum: the true ratio is unbounded, and an
/// `inf` would otherwise slam every downstream table/geomean. Flagged
/// variants report the clamp explicitly via [`max_ratio_flagged`].
pub const MAX_RATIO_CLAMP: f64 = 1e6;

/// Measured approximation ratio of a maximization result: `opt / achieved`.
///
/// Degenerate cases: `achieved == 0 && opt == 0` (empty but feasible
/// optimum) is a perfect `1.0`; `achieved == 0 && opt > 0` is clamped to
/// [`MAX_RATIO_CLAMP`] instead of `inf`. Use [`max_ratio_flagged`] when the
/// caller needs to know a clamp fired.
pub fn max_ratio(achieved: f64, opt: f64) -> f64 {
    max_ratio_flagged(achieved, opt).0
}

/// [`max_ratio`] plus a flag that is `true` iff the clamp fired — the
/// algorithm achieved nothing (or astronomically little) against a
/// positive optimum, so the reported value is the cap, not a measurement.
pub fn max_ratio_flagged(achieved: f64, opt: f64) -> (f64, bool) {
    if achieved <= 0.0 {
        if opt <= 0.0 {
            (1.0, false)
        } else {
            (MAX_RATIO_CLAMP, true)
        }
    } else {
        let ratio = opt / achieved;
        (ratio.min(MAX_RATIO_CLAMP), ratio > MAX_RATIO_CLAMP)
    }
}

/// Exact max-weight matching value on a small graph (`n ≤ 22`).
pub fn exact_matching_value(g: &Graph) -> f64 {
    exact::max_weight_matching(g).0
}

/// Geometric-mean helper for ratio summaries.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            Row(vec!["a".into(), "bb".into()]),
            Row(vec!["ccc".into(), "d".into()]),
        ];
        let t = render_table(&["x", "yyyy"], &rows);
        assert!(t.contains("| x   | yyyy |"));
        assert!(t.contains("| ccc | d    |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn workloads_deterministic() {
        assert_eq!(weighted_graph(50, 0.3, 1), weighted_graph(50, 0.3, 1));
        assert_eq!(vertex_weights(10, 2), vertex_weights(10, 2));
    }

    #[test]
    fn ratio_helpers() {
        assert!((min_ratio(4.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((max_ratio(5.0, 10.0) - 2.0).abs() < 1e-12);
        assert_eq!(max_ratio(0.0, 0.0), 1.0);
        let gm = geometric_mean(&[1.0, 4.0]);
        assert!((gm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_ratio_clamps_and_flags_empty_against_positive_opt() {
        // Empty-but-feasible solution against a positive optimum: finite,
        // clamped, flagged — never inf.
        let (r, clamped) = max_ratio_flagged(0.0, 5.0);
        assert_eq!(r, MAX_RATIO_CLAMP);
        assert!(clamped);
        assert!(max_ratio(0.0, 5.0).is_finite());
        // Healthy case is not flagged.
        let (r, clamped) = max_ratio_flagged(5.0, 10.0);
        assert!((r - 2.0).abs() < 1e-12);
        assert!(!clamped);
        // Astronomically bad—but nonzero—solutions also stay finite, and
        // the clamp is reported there too.
        let (r, clamped) = max_ratio_flagged(1e-300, 1e300);
        assert_eq!(r, MAX_RATIO_CLAMP);
        assert!(clamped);
    }
}
