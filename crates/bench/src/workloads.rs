//! Named workload families: the one source of generated instances shared
//! by the `mrlr gen` CLI, the criterion benches and the experiment
//! binaries.
//!
//! Each family is a string key plus a builder from [`GenParams`] (seeds
//! and size knobs) to a type-erased [`Instance`], so data-driven harnesses
//! can enumerate scenarios the same way the [`Registry`] enumerates
//! algorithms. Builders validate their knobs and return an error string
//! instead of panicking, which is what lets the CLI surface `--n 3 --m
//! 9999` as a usage error rather than an abort.
//!
//! [`Registry`]: mrlr_core::api::Registry

use mrlr_core::api::{BMatchingInstance, Instance, InstanceKind, VertexWeightedGraph};
use mrlr_graph::generators as ggen;
use mrlr_setsys::generators as sgen;

use crate::{vertex_weights, weighted_graph};

/// Size/seed knobs accepted by every family; each family reads the subset
/// it understands and derives the rest (e.g. a missing `m` falls back to
/// the paper's `n^{1+c}` density).
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Vertices (graphs) or sets (set systems).
    pub n: usize,
    /// Edges (graphs) or universe size (set systems); `None` = `n^{1+c}`.
    pub m: Option<usize>,
    /// Density exponent `c` of the paper's `m = n^{1+c}` assumption.
    pub c: f64,
    /// Power-law exponent (`power-law` family; must exceed 2).
    pub gamma: f64,
    /// Maximum element frequency (`set-frequency` family).
    pub f: usize,
    /// Maximum set size (`set-size` family).
    pub delta: usize,
    /// Maximum interval length (`interval` family).
    pub max_len: usize,
    /// Left side of a bipartite graph; `None` = `n / 2`.
    pub left: Option<usize>,
    /// Edge/set weights are uniform in `[w_min, w_max)` …
    pub w_min: f64,
    /// … unless `unweighted` is set.
    pub w_max: f64,
    /// Skip the weighting pass (unit weights).
    pub unweighted: bool,
    /// Reduction slack `ε` (`b-matching`, `greedy-trap`).
    pub eps: f64,
    /// Capacities cycle through `1..=b_max` (`b-matching` family).
    pub b_max: u32,
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            n: 60,
            m: None,
            c: 0.4,
            gamma: 2.5,
            f: 3,
            delta: 8,
            max_len: 8,
            left: None,
            w_min: 1.0,
            w_max: 10.0,
            unweighted: false,
            eps: 0.25,
            b_max: 3,
            seed: 42,
        }
    }
}

impl GenParams {
    /// The paper's default edge/element count `n^{1+c}`, clamped to `cap`.
    fn target_m(&self, cap: usize) -> usize {
        self.m
            .unwrap_or_else(|| (self.n as f64).powf(1.0 + self.c).round() as usize)
            .min(cap)
    }

    fn weighted(&self, g: mrlr_graph::Graph) -> mrlr_graph::Graph {
        if self.unweighted {
            g
        } else {
            ggen::with_uniform_weights(&g, self.w_min, self.w_max, self.seed ^ 0x77)
        }
    }
}

/// One registered family.
pub struct FamilySpec {
    /// Stable family key (`mrlr gen <name>`).
    pub name: &'static str,
    /// The instance kind the family produces.
    pub kind: InstanceKind,
    /// One-line description for `mrlr list`/`--help`.
    pub description: &'static str,
    /// Builder; errors are human-readable knob validation messages.
    pub build: fn(&GenParams) -> Result<Instance, String>,
}

fn complete_m(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

fn check(cond: bool, msg: impl Into<String>) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

fn check_weights(p: &GenParams) -> Result<(), String> {
    check(
        p.unweighted || (p.w_min > 0.0 && p.w_max > p.w_min),
        format!("need 0 < w-min < w-max, got [{}, {})", p.w_min, p.w_max),
    )
}

fn gnm(p: &GenParams) -> Result<Instance, String> {
    check_weights(p)?;
    let m = p.target_m(complete_m(p.n));
    check(
        p.m.is_none_or(|want| want <= complete_m(p.n)),
        format!("m = {:?} exceeds the complete graph on n = {}", p.m, p.n),
    )?;
    Ok(Instance::Graph(p.weighted(ggen::gnm(p.n, m, p.seed))))
}

fn densified(p: &GenParams) -> Result<Instance, String> {
    check_weights(p)?;
    check(
        p.m.is_none(),
        "densified derives m = n^{1+c} from --c; use gnm for an explicit --m",
    )?;
    if p.unweighted {
        Ok(Instance::Graph(ggen::densified(p.n, p.c, p.seed)))
    } else if (p.w_min, p.w_max) == (1.0, 10.0) {
        // The standard experiment workload, byte-for-byte.
        Ok(Instance::Graph(weighted_graph(p.n, p.c, p.seed)))
    } else {
        Ok(Instance::Graph(
            p.weighted(ggen::densified(p.n, p.c, p.seed)),
        ))
    }
}

fn power_law(p: &GenParams) -> Result<Instance, String> {
    check_weights(p)?;
    // n = 2 has rejection cap 0 (m <= n(n-1)/4), so the smallest usable
    // power-law graph has 3 vertices.
    check(p.n >= 3, "power-law needs n >= 3")?;
    check(
        p.gamma > 2.0,
        format!("gamma must exceed 2 (got {})", p.gamma),
    )?;
    let cap = (complete_m(p.n) / 2).max(1);
    let m = p.target_m(cap);
    Ok(Instance::Graph(
        p.weighted(ggen::chung_lu(p.n, m, p.gamma, p.seed)),
    ))
}

fn bipartite(p: &GenParams) -> Result<Instance, String> {
    check_weights(p)?;
    let left = p.left.unwrap_or(p.n / 2).min(p.n);
    let right = p.n - left;
    check(
        left >= 1 && right >= 1,
        format!("bipartite needs both sides nonempty (left {left}, right {right})"),
    )?;
    let m = p.target_m(left * right);
    Ok(Instance::Graph(
        p.weighted(ggen::bipartite(left, right, m, p.seed)),
    ))
}

fn vertex_weighted(p: &GenParams) -> Result<Instance, String> {
    let graph = match densified(p)? {
        Instance::Graph(g) => g.unweighted(),
        _ => unreachable!(),
    };
    Ok(Instance::VertexWeighted(VertexWeightedGraph::new(
        graph,
        vertex_weights(p.n, p.seed),
    )))
}

fn b_matching(p: &GenParams) -> Result<Instance, String> {
    check(p.b_max >= 1, "b-max must be at least 1")?;
    check(
        p.eps.is_finite() && p.eps > 0.0,
        format!("eps must be positive and finite (got {})", p.eps),
    )?;
    let graph = match densified(p)? {
        Instance::Graph(g) => g,
        _ => unreachable!(),
    };
    let b = (0..p.n as u32).map(|v| 1 + v % p.b_max).collect();
    Ok(Instance::BMatching(BMatchingInstance::new(graph, b, p.eps)))
}

fn set_weighted(p: &GenParams, sys: mrlr_setsys::SetSystem) -> Result<Instance, String> {
    check_weights(p)?;
    Ok(Instance::SetSystem(if p.unweighted {
        sys
    } else {
        sgen::with_uniform_weights(sys, p.w_min, p.w_max, p.seed ^ 0x77)
    }))
}

fn set_frequency(p: &GenParams) -> Result<Instance, String> {
    check(
        p.f >= 1 && p.f <= p.n,
        format!("need 1 <= f <= n sets (f {}, n {})", p.f, p.n),
    )?;
    let m = p.target_m(usize::MAX);
    set_weighted(p, sgen::bounded_frequency(p.n, m, p.f, p.seed))
}

fn set_size(p: &GenParams) -> Result<Instance, String> {
    let m = p.target_m(usize::MAX);
    check(
        p.delta >= 1 && p.delta <= m,
        format!(
            "need 1 <= delta <= universe (delta {}, universe {m})",
            p.delta
        ),
    )?;
    check(p.n >= 1, "need at least one set")?;
    set_weighted(p, sgen::bounded_set_size(p.n, m, p.delta, p.seed))
}

fn interval(p: &GenParams) -> Result<Instance, String> {
    let m = p.target_m(usize::MAX);
    check(
        p.n >= 1 && m >= 1 && p.max_len >= 1,
        "interval needs n, universe and max-len all >= 1",
    )?;
    set_weighted(p, sgen::interval_cover(p.n, m, p.max_len, p.seed))
}

fn greedy_trap(p: &GenParams) -> Result<Instance, String> {
    let m = p.m.unwrap_or(p.n);
    check(
        m >= 2 && p.eps > 0.0,
        format!(
            "greedy-trap needs universe >= 2 and eps > 0 (universe {m}, eps {})",
            p.eps
        ),
    )?;
    // Weights are the construction itself (the `H_m` trap): never reweight.
    Ok(Instance::SetSystem(sgen::greedy_trap(m, p.eps)))
}

/// Every registered family, ordered graphs first.
pub const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        name: "gnm",
        kind: InstanceKind::Graph,
        description: "Erdős–Rényi G(n, m), uniform weights",
        build: gnm,
    },
    FamilySpec {
        name: "densified",
        kind: InstanceKind::Graph,
        description: "the paper's m = n^{1+c} density regime",
        build: densified,
    },
    FamilySpec {
        name: "power-law",
        kind: InstanceKind::Graph,
        description: "Chung–Lu power-law degrees (social-network workloads)",
        build: power_law,
    },
    FamilySpec {
        name: "bipartite",
        kind: InstanceKind::Graph,
        description: "random bipartite (left = n/2 unless --left)",
        build: bipartite,
    },
    FamilySpec {
        name: "vertex-weighted",
        kind: InstanceKind::VertexWeighted,
        description: "densified graph + uniform vertex weights (vertex cover)",
        build: vertex_weighted,
    },
    FamilySpec {
        name: "b-matching",
        kind: InstanceKind::BMatching,
        description: "densified graph + capacities cycling 1..=b-max at slack eps",
        build: b_matching,
    },
    FamilySpec {
        name: "set-frequency",
        kind: InstanceKind::SetSystem,
        description: "bounded element frequency f (Algorithm 1's n << m regime)",
        build: set_frequency,
    },
    FamilySpec {
        name: "set-size",
        kind: InstanceKind::SetSystem,
        description: "bounded set size delta (Algorithm 3's m << n regime)",
        build: set_size,
    },
    FamilySpec {
        name: "interval",
        kind: InstanceKind::SetSystem,
        description: "interval covering over a line universe",
        build: interval,
    },
    FamilySpec {
        name: "greedy-trap",
        kind: InstanceKind::SetSystem,
        description: "the classic H_m lower-bound instance for greedy set cover",
        build: greedy_trap,
    },
];

/// Looks up a family by name.
pub fn family(name: &str) -> Option<&'static FamilySpec> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// Sets one knob of `params` by its CLI flag name (`n`, `m`, `c`,
/// `gamma`, `f`, `delta`, `max-len`, `left`, `w-min`, `w-max`,
/// `unweighted`, `eps`, `b-max`, `seed`) — the shared vocabulary of
/// `mrlr gen` flags, [`parse_spec`] strings and sweep files.
pub fn set_knob(params: &mut GenParams, key: &str, value: &str) -> Result<(), String> {
    fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("bad value `{value}` for knob `{key}`"))
    }
    match key {
        "n" => params.n = parse(key, value)?,
        "m" => params.m = Some(parse(key, value)?),
        "c" => params.c = parse(key, value)?,
        "gamma" => params.gamma = parse(key, value)?,
        "f" => params.f = parse(key, value)?,
        "delta" => params.delta = parse(key, value)?,
        "max-len" => params.max_len = parse(key, value)?,
        "left" => params.left = Some(parse(key, value)?),
        "w-min" => params.w_min = parse(key, value)?,
        "w-max" => params.w_max = parse(key, value)?,
        "unweighted" => params.unweighted = parse(key, value)?,
        "eps" => params.eps = parse(key, value)?,
        "b-max" => params.b_max = parse(key, value)?,
        "seed" => params.seed = parse(key, value)?,
        other => return Err(format!("unknown knob `{other}`")),
    }
    Ok(())
}

/// Parses a one-line generator spec `family:knob=value,knob=value,…`
/// (knobs optional: `densified`, `densified:n=1000,c=0.4,seed=7`) into
/// the family name and its parameters. The knob vocabulary is exactly
/// the `mrlr gen` flag set ([`set_knob`]); the bare switch `unweighted`
/// may omit `=true`. This is the `mrlr solve --gen <spec>` syntax: a
/// solve can name its instance instead of reading one from disk.
pub fn parse_spec(spec: &str) -> Result<(String, GenParams), String> {
    let (name, knobs) = match spec.split_once(':') {
        None => (spec, ""),
        Some((name, knobs)) => (name, knobs),
    };
    if family(name).is_none() {
        let names: Vec<&str> = FAMILIES.iter().map(|f| f.name).collect();
        return Err(format!(
            "unknown family `{name}` (expected one of: {})",
            names.join(", ")
        ));
    }
    let mut params = GenParams::default();
    for knob in knobs.split(',').filter(|k| !k.is_empty()) {
        match knob.split_once('=') {
            Some((key, value)) => set_knob(&mut params, key.trim(), value.trim())?,
            None if knob.trim() == "unweighted" => params.unweighted = true,
            None => return Err(format!("knob `{knob}` needs a value (knob=value)")),
        }
    }
    Ok((name.to_string(), params))
}

/// [`parse_spec`] + [`build`]: a whole instance from one spec string.
pub fn build_spec(spec: &str) -> Result<Instance, String> {
    let (name, params) = parse_spec(spec)?;
    build(&name, &params)
}

/// Builds an instance of `name` from `params`.
pub fn build(name: &str, params: &GenParams) -> Result<Instance, String> {
    let spec = family(name).ok_or_else(|| {
        let names: Vec<&str> = FAMILIES.iter().map(|f| f.name).collect();
        format!(
            "unknown family `{name}` (expected one of: {})",
            names.join(", ")
        )
    })?;
    (spec.build)(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_its_advertised_kind() {
        let p = GenParams::default();
        for spec in FAMILIES {
            let inst = build(spec.name, &p).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(inst.kind(), spec.kind, "{}", spec.name);
        }
    }

    #[test]
    fn families_are_deterministic_in_the_seed() {
        let p = GenParams::default();
        for spec in FAMILIES {
            assert_eq!(
                build(spec.name, &p).unwrap(),
                build(spec.name, &p).unwrap(),
                "{}",
                spec.name
            );
            let reseeded = build(
                spec.name,
                &GenParams {
                    seed: 7,
                    ..p.clone()
                },
            )
            .unwrap();
            // greedy-trap is deterministic by construction (no randomness).
            if spec.name != "greedy-trap" {
                assert_ne!(reseeded, build(spec.name, &p).unwrap(), "{}", spec.name);
            }
        }
    }

    #[test]
    fn densified_default_matches_the_experiment_workload() {
        let p = GenParams {
            n: 50,
            c: 0.3,
            seed: 1,
            ..GenParams::default()
        };
        assert_eq!(
            build("densified", &p).unwrap(),
            Instance::Graph(weighted_graph(50, 0.3, 1))
        );
    }

    #[test]
    fn knob_validation_errors_are_strings_not_panics() {
        let p = GenParams::default();
        assert!(build("no-such-family", &p)
            .unwrap_err()
            .contains("unknown family"));
        let bad_m = GenParams {
            m: Some(10_000),
            ..p.clone()
        };
        assert!(build("gnm", &bad_m).unwrap_err().contains("complete graph"));
        let bad_gamma = GenParams {
            gamma: 1.5,
            ..p.clone()
        };
        assert!(build("power-law", &bad_gamma)
            .unwrap_err()
            .contains("gamma"));
        let bad_f = GenParams { f: 0, ..p.clone() };
        assert!(build("set-frequency", &bad_f).unwrap_err().contains("f"));
        let bad_w = GenParams {
            w_min: 5.0,
            w_max: 2.0,
            ..p.clone()
        };
        assert!(build("densified", &bad_w).unwrap_err().contains("w-min"));
        // Density-derived families reject an explicit --m instead of
        // silently ignoring it (b-matching/vertex-weighted build on
        // densified and inherit the check).
        let explicit_m = GenParams { m: Some(100), ..p };
        for family in ["densified", "vertex-weighted", "b-matching"] {
            assert!(
                build(family, &explicit_m).unwrap_err().contains("use gnm"),
                "{family}"
            );
        }
    }

    #[test]
    fn spec_strings_mirror_the_gen_flags() {
        // Bare family name = defaults.
        let (name, p) = parse_spec("densified").unwrap();
        assert_eq!(name, "densified");
        assert_eq!(p, GenParams::default());
        // Knobbed spec builds the same instance as the explicit params.
        let (name, p) = parse_spec("gnm:n=30,m=80,seed=9,w-min=0.5,w-max=2.5").unwrap();
        let explicit = GenParams {
            n: 30,
            m: Some(80),
            seed: 9,
            w_min: 0.5,
            w_max: 2.5,
            ..GenParams::default()
        };
        assert_eq!(p, explicit);
        assert_eq!(build(&name, &p).unwrap(), build("gnm", &explicit).unwrap());
        // The bare switch form.
        let (_, p) = parse_spec("gnm:unweighted,n=12").unwrap();
        assert!(p.unweighted);
        assert_eq!(p.n, 12);
        // Errors are located strings.
        assert!(parse_spec("no-such:n=3")
            .unwrap_err()
            .contains("unknown family"));
        assert!(parse_spec("gnm:bogus=3")
            .unwrap_err()
            .contains("unknown knob"));
        assert!(parse_spec("gnm:n=x").unwrap_err().contains("bad value"));
        assert!(parse_spec("gnm:n").unwrap_err().contains("needs a value"));
    }

    #[test]
    fn unweighted_knob_yields_unit_weights() {
        let p = GenParams {
            unweighted: true,
            ..GenParams::default()
        };
        let Instance::Graph(g) = build("gnm", &p).unwrap() else {
            panic!()
        };
        assert!(g.edges().iter().all(|e| e.w == 1.0));
    }
}
