//! Sweep specs: a small TOML-ish file describing a whole family of
//! generated instances — one knob swept over a list of values, every
//! other knob fixed — consumed by `mrlr gen --sweep` and by
//! `bench_scale`'s size ladder.
//!
//! ```text
//! # the bench_scale ladder: m = n^{1.4} edges
//! family = "densified"
//! c = 0.4
//! seed = 7
//! sweep = "n"
//! values = [1000, 19307, 100000]
//! out = "scale_n{n}.inst"
//! ```
//!
//! `family` names a [`workloads`] family; `sweep` names the knob to vary
//! (the `mrlr gen` flag vocabulary of [`workloads::set_knob`]); `values`
//! lists the settings; every other `key = value` line fixes a knob; the
//! optional `out` is a filename pattern where `{<knob>}` expands to the
//! swept value. Lines starting with `#` and blank lines are ignored.

use mrlr_core::api::Instance;

use crate::workloads::{self, GenParams};

/// A parsed sweep spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The workload family every point builds.
    pub family: String,
    /// The fixed knobs (defaults + every non-reserved `key = value` line).
    pub base: GenParams,
    /// The swept knob's name.
    pub knob: String,
    /// The swept values, in file order.
    pub values: Vec<String>,
    /// Output filename pattern (`{<knob>}` expands per point), if given.
    pub out: Option<String>,
}

/// One point of an expanded sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept value, verbatim.
    pub value: String,
    /// Full parameters for this point.
    pub params: GenParams,
    /// Expanded output filename (pattern, or `<family>-<knob><value>.inst`).
    pub out: String,
}

fn unquote(raw: &str) -> &str {
    let t = raw.trim();
    t.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(t)
}

impl SweepSpec {
    /// Parses a sweep file. Errors are human-readable and carry the
    /// 1-based line number.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let mut family: Option<String> = None;
        let mut knob: Option<String> = None;
        let mut values: Option<Vec<String>> = None;
        let mut out: Option<String> = None;
        let mut fixed: Vec<(String, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {line_no}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "family" => family = Some(unquote(value).to_string()),
                "sweep" => knob = Some(unquote(value).to_string()),
                "out" => out = Some(unquote(value).to_string()),
                "values" => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| {
                            format!("line {line_no}: `values` must be a [v, v, …] list")
                        })?;
                    let list: Vec<String> = inner
                        .split(',')
                        .map(|v| unquote(v).to_string())
                        .filter(|v| !v.is_empty())
                        .collect();
                    if list.is_empty() {
                        return Err(format!("line {line_no}: `values` list is empty"));
                    }
                    values = Some(list);
                }
                other => fixed.push((other.to_string(), unquote(value).to_string())),
            }
        }
        let family = family.ok_or("sweep spec needs a `family = \"…\"` line")?;
        if workloads::family(&family).is_none() {
            return Err(format!("unknown family `{family}`"));
        }
        let knob = knob.ok_or("sweep spec needs a `sweep = \"<knob>\"` line")?;
        let values = values.ok_or("sweep spec needs a `values = [...]` line")?;
        let mut base = GenParams::default();
        for (key, value) in &fixed {
            workloads::set_knob(&mut base, key, value)?;
        }
        // Validate the swept knob's name (and each value) eagerly so a
        // bad spec fails at parse time, not on the third ladder rung.
        for value in &values {
            workloads::set_knob(&mut base.clone(), &knob, value)
                .map_err(|e| format!("swept knob: {e}"))?;
        }
        Ok(SweepSpec {
            family,
            base,
            knob,
            values,
            out,
        })
    }

    /// Expands the sweep into its points, one [`GenParams`] per value.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.values
            .iter()
            .map(|value| {
                let mut params = self.base.clone();
                workloads::set_knob(&mut params, &self.knob, value)
                    .expect("values validated at parse time");
                let out = match &self.out {
                    Some(pattern) => pattern.replace(&format!("{{{}}}", self.knob), value),
                    None => format!("{}-{}{}.inst", self.family, self.knob, value),
                };
                SweepPoint {
                    value: value.clone(),
                    params,
                    out,
                }
            })
            .collect()
    }

    /// Builds the instance of one point.
    pub fn build(&self, point: &SweepPoint) -> Result<Instance, String> {
        workloads::build(&self.family, &point.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# ladder
family = \"densified\"
c = 0.3
seed = 9
sweep = \"n\"
values = [10, 20, 40]
out = \"scale_n{n}.inst\"
";

    #[test]
    fn parses_and_expands() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.family, "densified");
        assert_eq!(spec.knob, "n");
        assert_eq!(spec.values, ["10", "20", "40"]);
        let points = spec.points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].params.n, 20);
        assert_eq!(points[1].params.c, 0.3);
        assert_eq!(points[1].params.seed, 9);
        assert_eq!(points[1].out, "scale_n20.inst");
        // Each point builds, and matches a direct workloads build.
        let direct = workloads::build("densified", &points[2].params).unwrap();
        assert_eq!(spec.build(&points[2]).unwrap(), direct);
    }

    #[test]
    fn default_out_pattern_and_missing_out() {
        let spec =
            SweepSpec::parse("family = \"gnm\"\nsweep = \"m\"\nvalues = [5, 6]\nn = 10\n").unwrap();
        assert_eq!(spec.points()[0].out, "gnm-m5.inst");
        assert_eq!(spec.points()[0].params.m, Some(5));
        assert_eq!(spec.points()[0].params.n, 10);
    }

    #[test]
    fn errors_are_located() {
        assert!(SweepSpec::parse("family = \"densified\"\nnot a kv line\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(SweepSpec::parse("sweep = \"n\"\nvalues = [1]\n")
            .unwrap_err()
            .contains("family"));
        assert!(
            SweepSpec::parse("family = \"nope\"\nsweep = \"n\"\nvalues = [1]\n")
                .unwrap_err()
                .contains("unknown family")
        );
        assert!(
            SweepSpec::parse("family = \"gnm\"\nsweep = \"n\"\nvalues = 3\n")
                .unwrap_err()
                .contains("list")
        );
        assert!(
            SweepSpec::parse("family = \"gnm\"\nsweep = \"bogus\"\nvalues = [1]\n")
                .unwrap_err()
                .contains("unknown knob")
        );
        assert!(
            SweepSpec::parse("family = \"gnm\"\nsweep = \"n\"\nvalues = [x]\n")
                .unwrap_err()
                .contains("bad value")
        );
    }
}
