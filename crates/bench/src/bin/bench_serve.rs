//! Load generator for the `mrlr serve` daemon: maintains the committed
//! `BENCH_serve.json` artifact.
//!
//! Three scenarios run against an in-process daemon (real Unix socket,
//! real client connections — only the process boundary is elided):
//!
//! * `latency` — sequential solve requests with distinct seeds (no
//!   coalescing possible): per-request p50/p99 latency and throughput
//!   with the pools warm, i.e. the steady-state cost of a served solve.
//! * `coalesce` — bursts of concurrent *identical* requests against a
//!   daemon with a publish hold: the admitted runner computes once and
//!   every other request in the burst attaches to that run. The row
//!   records solver runs vs. requests — the coalesce-hit rate is the
//!   artifact's evidence that coalescing reduces solver executions.
//! * `overload` — bursts against a `max_inflight=1, queue=0` daemon:
//!   everything beyond the admitted runner is rejected with an explicit
//!   `Busy` frame. The row records the rejected-request count and the
//!   p99 of the *rejection* latency (overload answers must be fast).
//!
//! Usage:
//!   `bench_serve [--quick] [out.json]`   measure and rewrite the artifact
//!   `bench_serve --check [out.json]`     CI mode: assert a served report
//!       is byte-identical to the direct `Registry` solve before any row
//!       is emitted, then validate the committed artifact's schema
//!       without touching it.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::io::{self, parse_json, CertificateMode, JsonValue, TimingMode};
use mrlr_serve::{
    serve, Client, ClientError, RenderOpts, ReportFormat, Request, ServeConfig, SolveSpec,
    StatsSnapshot,
};

const GRAPH_N: usize = 300;
const GRAPH_QUICK_N: usize = 120;
const GRAPH_C: f64 = 0.5;
const MU: f64 = 0.25;
const SEED: u64 = 42;

fn instance_text(quick: bool) -> String {
    let n = if quick { GRAPH_QUICK_N } else { GRAPH_N };
    io::render_instance(&Instance::Graph(weighted_graph(n, GRAPH_C, SEED)))
}

fn solve_request(text: &str, seed: u64) -> Request {
    Request::Solve {
        spec: SolveSpec {
            algorithm: "matching".into(),
            backend: "mr".into(),
            instance_text: text.into(),
            mu_bits: MU.to_bits(),
            seed,
            threads: None,
            machines: None,
            workers: None,
        },
        render: RenderOpts {
            format: ReportFormat::Json,
            mask_timings: true,
            certificates_full: true,
        },
        timeout_millis: 30_000,
    }
}

/// Runs a daemon for the duration of `body`, returning the body's value
/// and the daemon's final counters.
fn with_daemon<T>(mut cfg: ServeConfig, body: impl FnOnce(&PathBuf) -> T) -> (T, StatsSnapshot) {
    static DAEMONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    cfg.socket = std::env::temp_dir().join(format!(
        "mrlr-bench-serve-{}-{}.sock",
        std::process::id(),
        DAEMONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let socket = cfg.socket.clone();
    let daemon = std::thread::spawn(move || serve(cfg));
    for _ in 0..200 {
        if Client::connect(&socket).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let value = body(&socket);
    Client::connect(&socket)
        .expect("daemon alive")
        .shutdown()
        .expect("clean shutdown");
    let stats = daemon.join().expect("daemon thread").expect("daemon exit");
    (value, stats)
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    assert!(!sorted_micros.is_empty());
    let idx = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[idx]
}

struct Scenario {
    name: &'static str,
    requests: u64,
    wall: Duration,
    latencies_micros: Vec<u64>,
    stats: StatsSnapshot,
}

impl Scenario {
    fn row(&self) -> String {
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        let throughput = self.requests as f64 / self.wall.as_secs_f64();
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"scenario\": \"{}\", \"requests\": {}, \"p50_micros\": {}, \
             \"p99_micros\": {}, \"throughput_rps\": {:.2}, \"solver_runs\": {}, \
             \"coalesce_hits\": {}, \"busy_rejects\": {}, \"timeouts\": {}}}",
            self.name,
            self.requests,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            throughput,
            self.stats.solver_runs,
            self.stats.coalesce_hits,
            self.stats.busy_rejects,
            self.stats.timeouts,
        );
        eprintln!(
            "{}: {} requests, p50 {}us, p99 {}us, {} solver runs, \
             {} coalesce hits, {} busy rejects",
            self.name,
            self.requests,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            self.stats.solver_runs,
            self.stats.coalesce_hits,
            self.stats.busy_rejects,
        );
        row
    }
}

/// Sequential distinct-seed solves: steady-state served latency.
fn latency_scenario(quick: bool) -> Scenario {
    let text = instance_text(quick);
    let requests = if quick { 8 } else { 32 };
    let (latencies, stats) = with_daemon(ServeConfig::new("unused"), |socket| {
        let mut latencies = Vec::new();
        let mut client = Client::connect(socket).expect("connect");
        // One unmeasured request warms the executor pools.
        client
            .solve(&solve_request(&text, 1_000), &mut |_| {})
            .expect("warmup solve");
        for seed in 0..requests {
            let start = Instant::now();
            client
                .solve(&solve_request(&text, seed), &mut |_| {})
                .expect("solve");
            latencies.push(start.elapsed().as_micros() as u64);
        }
        latencies
    });
    let wall_micros: u64 = latencies.iter().sum();
    Scenario {
        name: "latency",
        requests,
        wall: Duration::from_micros(wall_micros.max(1)),
        latencies_micros: latencies,
        stats,
    }
}

/// Concurrent identical bursts: the publish hold keeps each burst's
/// runner open long enough that the rest of the burst provably attaches.
fn coalesce_scenario(quick: bool) -> Scenario {
    let text = instance_text(quick);
    let bursts = if quick { 2 } else { 6 };
    let burst_size = 4u64;
    let mut cfg = ServeConfig::new("unused");
    cfg.max_inflight = burst_size as usize;
    cfg.queue = burst_size as usize;
    cfg.hold = Duration::from_millis(150);
    let start = Instant::now();
    let (latencies, stats) = with_daemon(cfg, |socket| {
        let mut latencies = Vec::new();
        for burst in 0..bursts {
            // The whole burst shares one coalescing key (same seed);
            // distinct bursts use distinct seeds so runs never leak
            // across bursts.
            let joins: Vec<_> = (0..burst_size)
                .map(|_| {
                    let socket = socket.clone();
                    let request = solve_request(&text, 10_000 + burst);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(&socket).expect("connect");
                        let start = Instant::now();
                        let served = client.solve(&request, &mut |_| {}).expect("solve");
                        (start.elapsed().as_micros() as u64, served.coalesced)
                    })
                })
                .collect();
            for j in joins {
                let (micros, _) = j.join().expect("burst thread");
                latencies.push(micros);
            }
        }
        latencies
    });
    let wall = start.elapsed();
    assert!(
        stats.solver_runs < stats.requests,
        "coalescing must reduce solver runs ({} runs for {} requests)",
        stats.solver_runs,
        stats.requests,
    );
    Scenario {
        name: "coalesce",
        requests: bursts * burst_size,
        wall,
        latencies_micros: latencies,
        stats,
    }
}

/// Distinct-spec bursts against a single slot and no queue: one request
/// per burst is admitted, the rest bounce with `Busy`.
fn overload_scenario(quick: bool) -> Scenario {
    let text = instance_text(quick);
    let bursts = if quick { 2 } else { 6 };
    let burst_size = 4u64;
    let mut cfg = ServeConfig::new("unused");
    cfg.max_inflight = 1;
    cfg.queue = 0;
    cfg.hold = Duration::from_millis(150);
    let start = Instant::now();
    let (latencies, stats) = with_daemon(cfg, |socket| {
        let mut latencies = Vec::new();
        for burst in 0..bursts {
            let joins: Vec<_> = (0..burst_size)
                .map(|i| {
                    let socket = socket.clone();
                    // Distinct seeds: no coalescing, so the burst
                    // genuinely contends for the single slot.
                    let request = solve_request(&text, 20_000 + burst * burst_size + i);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(&socket).expect("connect");
                        let start = Instant::now();
                        let outcome = client.solve(&request, &mut |_| {});
                        let micros = start.elapsed().as_micros() as u64;
                        match outcome {
                            Ok(_) => (micros, false),
                            Err(ClientError::Busy { .. }) => (micros, true),
                            Err(e) => panic!("unexpected outcome: {e}"),
                        }
                    })
                })
                .collect();
            for j in joins {
                let (micros, _rejected) = j.join().expect("burst thread");
                latencies.push(micros);
            }
        }
        latencies
    });
    let wall = start.elapsed();
    assert!(
        stats.busy_rejects > 0,
        "overload bursts must provoke Busy rejections"
    );
    Scenario {
        name: "overload",
        requests: bursts * burst_size,
        wall,
        latencies_micros: latencies,
        stats,
    }
}

// ---------------------------------------------------------------------------
// --check mode

/// Differential gate: a served report must be byte-identical to the
/// direct registry solve rendered with the same options.
fn check_served_equals_direct() {
    let text = instance_text(true);
    let (served, _) = with_daemon(ServeConfig::new("unused"), |socket| {
        Client::connect(socket)
            .expect("connect")
            .solve(&solve_request(&text, SEED), &mut |_| {})
            .expect("served solve")
    });
    let instance = io::parse_instance(&text).expect("instance parses");
    let cfg = instance.auto_config(MU, SEED);
    let report = Registry::with_defaults()
        .solve_with("matching", Backend::Mr, &instance, &cfg)
        .expect("direct solve");
    let direct = io::report_json_with(&report, TimingMode::Masked, CertificateMode::Full).render();
    assert_eq!(
        served.content, direct,
        "served report diverges from the direct registry solve"
    );
    println!("ok: served report byte-identical to direct Registry::solve");
}

/// Schema gate: the committed artifact has every scenario with every
/// required field, and its coalesce row shows fewer solver runs than
/// requests.
fn check_artifact(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    let doc = parse_json(&text).expect("artifact parses");
    assert_eq!(
        doc.get("bench").and_then(JsonValue::as_str),
        Some("serve"),
        "--check: {path} is not a serve artifact"
    );
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .expect("artifact has a rows array");
    let fields = [
        "requests",
        "p50_micros",
        "p99_micros",
        "throughput_rps",
        "solver_runs",
        "coalesce_hits",
        "busy_rejects",
        "timeouts",
    ];
    for scenario in ["latency", "coalesce", "overload"] {
        let row = rows
            .iter()
            .find(|r| r.get("scenario").and_then(JsonValue::as_str) == Some(scenario))
            .unwrap_or_else(|| panic!("--check: {path} has no `{scenario}` row"));
        for field in fields {
            assert!(
                row.get(field).and_then(JsonValue::as_f64).is_some(),
                "--check: {scenario} row lacks numeric field `{field}`"
            );
        }
        println!("ok: {scenario} row present with all fields");
    }
    let coalesce = rows
        .iter()
        .find(|r| r.get("scenario").and_then(JsonValue::as_str) == Some("coalesce"))
        .expect("coalesce row");
    let runs = coalesce.get("solver_runs").and_then(JsonValue::as_f64);
    let requests = coalesce.get("requests").and_then(JsonValue::as_f64);
    assert!(
        runs < requests,
        "--check: committed coalesce row does not show coalescing \
         (solver_runs {runs:?} vs requests {requests:?})"
    );
    println!("ok: committed coalesce row shows solver_runs < requests");
    let overload = rows
        .iter()
        .find(|r| r.get("scenario").and_then(JsonValue::as_str) == Some("overload"))
        .expect("overload row");
    let rejects = overload.get("busy_rejects").and_then(JsonValue::as_f64);
    assert!(
        rejects > Some(0.0),
        "--check: committed overload row records no Busy rejections"
    );
    println!("ok: committed overload row records Busy rejections");
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            other if !other.starts_with('-') => out_path = Some(other.to_string()),
            other => panic!("unknown flag {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_serve.json".into());

    if check {
        check_served_equals_direct();
        check_artifact(&out_path);
        println!("check passed");
        return;
    }

    let rows = [
        latency_scenario(quick).row(),
        coalesce_scenario(quick).row(),
        overload_scenario(quick).row(),
    ];
    let mut out = String::from("{\n  \"bench\": \"serve\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).expect("write artifact");
    println!("wrote {out_path} ({} rows)", rows.len());
}
