//! Per-lemma experiments E1–E14: the quantitative claims behind the
//! paper's theorems, measured on the cluster simulator.
//!
//! Every algorithm invocation dispatches through the
//! [`mrlr_core::api::Registry`] — experiments only differ in the workloads
//! they build and the columns they report. Ablation-only code paths
//! (pooled sampling, decay traces, potential traces) use their dedicated
//! instrumented entry points, which are not registry algorithms.
//!
//! Usage: `cargo run --release -p mrlr-bench --bin experiments [e1 e2 …]`
//! (no arguments = run everything). Output is markdown.

use mrlr_baselines::{
    coreset_matching, crouch_stubbs_matching, greedy_weighted_matching, layered_weighted_matching,
    luby_mis,
};
use mrlr_bench::{
    geometric_mean, max_ratio, min_ratio, render_table, vertex_weights, weighted_graph, Row,
};
use mrlr_core::api::{
    BMatchingInstance, Backend, Instance, Registry, Report, Solution, VertexWeightedGraph,
};
use mrlr_core::colouring::{colour_budget, group_count};
use mrlr_core::exact;
use mrlr_core::hungry::{hungry_set_cover, HungryScParams};
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::b_matching_multiplier;
use mrlr_mapreduce::faults::{apply, FaultPlan};
use mrlr_mapreduce::trace::Timeline;
use mrlr_setsys::generators as setgen;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let registry = Registry::with_defaults();
    if want("e1") {
        e1_uncovered_decay(&registry);
    }
    if want("e2") {
        e2_vc_rounds(&registry);
    }
    if want("e3") {
        e3_mis_rounds(&registry);
    }
    if want("e4") {
        e4_potential_decay();
    }
    if want("e5") {
        e5_matching(&registry);
    }
    if want("e6") {
        e6_mu_zero(&registry);
    }
    if want("e7") {
        e7_bmatching(&registry);
    }
    if want("e8") {
        e8_colouring(&registry);
    }
    if want("e9") {
        e9_baselines(&registry);
    }
    if want("e10") {
        e10_clique(&registry);
    }
    if want("e11") {
        e11_fault_pricing(&registry);
    }
    if want("e12") {
        e12_eta_ablation(&registry);
    }
    if want("e13") {
        e13_sampling_ablation(&registry);
    }
    if want("e14") {
        e14_executor_scaling(&registry);
    }
}

/// Dispatches on the given backend and insists on a verified solution —
/// every experiment's invariant, checked by the report's independent
/// certificate.
fn solve_on(
    registry: &Registry,
    algorithm: &str,
    backend: Backend,
    instance: &Instance,
    cfg: &MrConfig,
) -> Report<Solution> {
    let report = registry
        .solve_with(algorithm, backend, instance, cfg)
        .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
    assert!(
        report.certificate.feasible,
        "{algorithm}: infeasible solution"
    );
    report
}

/// [`solve_on`] on the metered cluster backend.
fn solve(
    registry: &Registry,
    algorithm: &str,
    instance: &Instance,
    cfg: &MrConfig,
) -> Report<Solution> {
    solve_on(registry, algorithm, Backend::Mr, instance, cfg)
}

/// [`solve_on`] on the in-memory `Rlr` backend (no cluster metering).
fn solve_rlr(
    registry: &Registry,
    algorithm: &str,
    instance: &Instance,
    cfg: &MrConfig,
) -> Report<Solution> {
    solve_on(registry, algorithm, Backend::Rlr, instance, cfg)
}

/// E1 — Lemma 2.2 / Theorem 2.3: `|U_{r+1}| ≲ 2|U_r|/n^µ` and `⌈c/µ⌉`-ish
/// iterations for the f-approximate set cover.
fn e1_uncovered_decay(registry: &Registry) {
    println!("\n## E1 — set cover: uncovered-set decay (Lemma 2.2, Thm 2.3)\n");
    let mut rows = Vec::new();
    for (n, c, mu, f) in [
        (200usize, 0.3f64, 0.15f64, 2usize),
        (200, 0.5, 0.15, 2),
        (200, 0.5, 0.25, 2),
        (200, 0.5, 0.25, 3),
        (300, 0.5, 0.25, 5),
    ] {
        let m = (n as f64).powf(1.0 + c).round() as usize;
        let sys = setgen::with_uniform_weights(setgen::bounded_frequency(n, m, f, 7), 1.0, 10.0, 7);
        let cfg = MrConfig::auto(n, m, mu, 7);
        let r = solve(registry, "set-cover-f", &Instance::SetSystem(sys), &cfg);
        rows.push(Row(vec![
            format!("n={n} m={m} f={f}"),
            format!("{mu}"),
            format!("{}", (c / mu).ceil() as usize + 1),
            format!("{}", r.solution.iterations()),
            format!("{}", r.rounds()),
            format!("{:.3}", r.certificate.certified_ratio.unwrap_or(f64::NAN)),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "mu",
                "ceil(c/mu)+1",
                "iterations",
                "MR rounds",
                "certified ratio"
            ],
            &rows
        )
    );
}

/// E2 — Theorem 2.4 (f = 2): weighted vertex cover rounds scale with c/µ,
/// not with n.
fn e2_vc_rounds(registry: &Registry) {
    println!("\n## E2 — vertex cover: rounds scale with c/mu, ratio <= 2 (Thm 2.4)\n");
    let mut rows = Vec::new();
    for (n, c, mu) in [
        (200usize, 0.3f64, 0.15f64),
        (200, 0.5, 0.15),
        (200, 0.5, 0.25),
        (200, 0.5, 0.35),
        (400, 0.5, 0.25),
        (600, 0.5, 0.25),
    ] {
        let g = weighted_graph(n, c, 11);
        let cfg = MrConfig::auto(n, g.m(), mu, 11);
        let inst = Instance::VertexWeighted(VertexWeightedGraph::new(g, vertex_weights(n, 11)));
        let r = solve(registry, "vertex-cover", &inst, &cfg);
        rows.push(Row(vec![
            format!("n={n} c={c} mu={mu}"),
            format!("{}", (c / mu).ceil() as usize + 1),
            format!("{}", r.solution.iterations()),
            format!("{}", r.rounds()),
            format!("{:.3}", r.certificate.certified_ratio.unwrap_or(f64::NAN)),
            format!("{}", r.peak_words()),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "ceil(c/mu)+1",
                "iterations",
                "MR rounds",
                "certified ratio",
                "peak words"
            ],
            &rows
        )
    );
}

/// E3 — Theorems 3.3 / A.3: MIS1 (`O(1/µ²)`) vs MIS2 (`O(c/µ)`) vs Luby
/// (`O(log n)`).
fn e3_mis_rounds(registry: &Registry) {
    println!("\n## E3 — MIS: hungry-greedy rounds vs Luby (Thms 3.3, A.3)\n");
    let mut rows = Vec::new();
    for (n, c, mu) in [
        (300usize, 0.4f64, 0.2f64),
        (300, 0.4, 0.3),
        (300, 0.4, 0.4),
        (600, 0.4, 0.3),
    ] {
        let g = weighted_graph(n, c, 13).unweighted();
        let cfg = MrConfig::auto(n, g.m(), mu, 13);
        let inst = Instance::Graph(g.clone());
        let r1 = solve(registry, "mis1", &inst, &cfg);
        let r2 = solve(registry, "mis2", &inst, &cfg);
        let luby = luby_mis(&g, 13);
        rows.push(Row(vec![
            format!("n={n} c={c} mu={mu}"),
            format!("{} it / {} rds", r1.solution.iterations(), r1.rounds()),
            format!("{} it / {} rds", r2.solution.iterations(), r2.rounds()),
            format!("{} it", luby.rounds),
            format!("{}", (n as f64).log2().ceil() as usize),
        ]));
    }
    println!(
        "{}",
        render_table(
            &["instance", "MIS1 (Alg 2)", "MIS2 (Alg 6)", "Luby", "log2 n"],
            &rows
        )
    );
}

/// E4 — Lemmas 4.3/4.4: potential decay of the hungry-greedy set cover.
/// Uses the instrumented `hungry_set_cover` entry point directly — the
/// per-round potential trace is ablation-only detail a uniform `Report`
/// deliberately does not carry.
fn e4_potential_decay() {
    println!("\n## E4 — set cover (1+e)lnD: potential decay (Lemma 4.3)\n");
    let mut rows = Vec::new();
    for (m, delta, mu) in [(150usize, 12usize, 0.4f64), (300, 20, 0.4), (300, 20, 0.5)] {
        let sys = setgen::with_uniform_weights(
            setgen::bounded_set_size(10 * m, m, delta, 17),
            1.0,
            10.0,
            17,
        );
        let params = HungryScParams::new(m, mu, 0.2, 17);
        let (r, trace) = hungry_set_cover(&sys, params).expect("e4");
        assert!(sys.covers(&r.cover));
        // Geometric decay factor across the first level's rounds.
        let decays: Vec<f64> = trace
            .potentials
            .windows(2)
            .filter(|w| w[1] > 0.0 && w[1] <= w[0])
            .map(|w| w[0] / w[1].max(1.0))
            .collect();
        rows.push(Row(vec![
            format!("m={m} D={delta} mu={mu}"),
            format!("{}", r.iterations),
            format!("{}", trace.levels),
            format!("{}", trace.failed_rounds),
            format!("{:.2}", geometric_mean(&decays)),
            format!("{:.3}", min_ratio(r.weight, r.lower_bound)),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "inner rounds",
                "levels",
                "failed rounds",
                "geo-mean decay/round",
                "certified ratio"
            ],
            &rows
        )
    );
}

/// E5 — Theorems 5.5/5.6: matching rounds `O(c/µ)`, ratio ≤ 2 (certified
/// and vs exact on small instances).
fn e5_matching(registry: &Registry) {
    println!("\n## E5 — weighted matching: rounds O(c/mu), ratio <= 2 (Thm 5.6)\n");
    let mut rows = Vec::new();
    for (n, c, mu) in [
        (200usize, 0.3f64, 0.15f64),
        (200, 0.5, 0.15),
        (200, 0.5, 0.25),
        (200, 0.5, 0.35),
        (500, 0.5, 0.25),
    ] {
        let g = weighted_graph(n, c, 19);
        let cfg = MrConfig::auto(n, g.m(), mu, 19);
        let r = solve(registry, "matching", &Instance::Graph(g), &cfg);
        rows.push(Row(vec![
            format!("n={n} c={c} mu={mu}"),
            format!("{}", (c / mu).ceil() as usize + 1),
            format!("{}", r.solution.iterations()),
            format!("{}", r.rounds()),
            format!("{:.3}", r.certificate.certified_ratio.unwrap_or(f64::NAN)),
            format!("{}", r.peak_words()),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "ceil(c/mu)+1",
                "iterations",
                "MR rounds",
                "certified ratio",
                "peak words"
            ],
            &rows
        )
    );
    // Exact ratios on small instances (in-memory backend).
    let mut ratios = Vec::new();
    for seed in 0..40u64 {
        let g = weighted_graph(16, 0.4, seed);
        let (opt, _) = exact::max_weight_matching(&g);
        let cfg = MrConfig::auto(16, g.m(), 0.15, seed);
        let r = solve_rlr(registry, "matching", &Instance::Graph(g), &cfg);
        ratios.push(max_ratio(r.certificate.objective, opt));
    }
    let worst = ratios.iter().cloned().fold(1.0f64, f64::max);
    println!(
        "small-instance exact ratios (n = 16, 40 seeds): geo-mean {:.4}, worst {:.4} (theory 2.0)\n",
        geometric_mean(&ratios),
        worst
    );
}

/// E6 — Theorem C.2: `µ = 0` (η = n) matching terminates in `O(log n)`
/// iterations.
fn e6_mu_zero(registry: &Registry) {
    println!("\n## E6 — matching with eta = n (mu = 0): O(log n) iterations (Thm C.2)\n");
    println!("Heavy-tailed weights (log-uniform over 6 decades) slow the weight-\nreduction cascade, exposing the geometric edge decay of Lemma C.1.\n");
    let mut rows = Vec::new();
    for n in [100usize, 200, 400, 800] {
        let base = mrlr_graph::generators::densified(n, 0.55, 23);
        let g = mrlr_graph::generators::with_log_uniform_weights(&base, 1.0, 1e6, 23);
        // µ = 0 makes auto derive η = n exactly — the Appendix C regime.
        let cfg = MrConfig::auto(n, g.m(), 0.0, 23);
        let m = g.m();
        let r = solve_rlr(registry, "matching", &Instance::Graph(g), &cfg);
        rows.push(Row(vec![
            format!("{n}"),
            format!("{m}"),
            format!("{}", r.solution.iterations()),
            format!("{:.1}", (n as f64).log2()),
            format!("{:.3}", r.certificate.certified_ratio.unwrap_or(f64::NAN)),
        ]));
    }
    println!(
        "{}",
        render_table(
            &["n", "m", "iterations", "log2 n", "certified ratio"],
            &rows
        )
    );
}

/// E7 — Theorem D.3: b-matching ratio ≤ `3 − 2/b + 2ε`.
fn e7_bmatching(registry: &Registry) {
    println!("\n## E7 — b-matching: ratio vs 3 - 2/b + 2e (Thm D.3)\n");
    let mut rows = Vec::new();
    for b_cap in [1u32, 2, 3, 5] {
        let mut certified = Vec::new();
        let mut exact_ratios = Vec::new();
        for seed in 0..20u64 {
            // m = 10^{1.35} ≈ 22 ≤ 26 keeps the exact solver applicable.
            let g = weighted_graph(10, 0.35, seed);
            let b = vec![b_cap; g.n()];
            // Tiny central budget η = 8 forces the sampling path; µ = 0.3
            // gives the oversampling factor n^µ = 10^0.3 ≈ 2.
            let mut cfg = MrConfig::auto(10, g.m(), 0.3, seed);
            cfg.eta = 8;
            let inst = Instance::BMatching(BMatchingInstance::new(g.clone(), b, 0.25));
            let r = solve_rlr(registry, "b-matching", &inst, &cfg);
            certified.push(r.certificate.certified_ratio.unwrap_or(f64::NAN));
            let (opt, _) = exact::max_weight_b_matching(&g, &vec![b_cap; g.n()]);
            exact_ratios.push(max_ratio(r.certificate.objective, opt));
        }
        let mult = b_matching_multiplier(&[b_cap.max(1)], 0.25);
        rows.push(Row(vec![
            format!("{b_cap}"),
            format!("{mult:.2}"),
            format!("{:.3}", geometric_mean(&certified)),
            format!(
                "{:.3} / {:.3}",
                geometric_mean(&exact_ratios),
                exact_ratios.iter().cloned().fold(1.0f64, f64::max)
            ),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "b",
                "theory 3-2/b+2e",
                "geo-mean certified",
                "exact geo-mean / worst"
            ],
            &rows
        )
    );
}

/// E8 — Lemmas 6.1/6.2, Corollary 6.3: colour counts within `(1+o(1))Δ`,
/// group edge bound, O(1) rounds.
fn e8_colouring(registry: &Registry) {
    println!("\n## E8 — colouring: colours <= (1+o(1))D in O(1) rounds (Thms 6.4/6.6)\n");
    let mut rows = Vec::new();
    for (n, c, mu) in [
        (200usize, 0.5f64, 0.2f64),
        (400, 0.5, 0.2),
        (400, 0.6, 0.2),
        (400, 0.6, 0.3),
    ] {
        let g = weighted_graph(n, c, 29);
        let kappa = group_count(n, g.m(), mu);
        let cfg = MrConfig::auto(n, g.m(), mu, 29);
        let inst = Instance::Graph(g.clone());
        let rv = solve(registry, "vertex-colouring", &inst, &cfg);
        let re = solve(registry, "edge-colouring", &inst, &cfg);
        let delta = g.max_degree();
        let luby = mrlr_baselines::luby_colouring(&g, 29);
        assert!(
            mrlr_core::verify::is_proper_colouring(&g, &luby.colours),
            "Luby baseline produced an improper colouring"
        );
        let (cv, ce) = (
            rv.solution.as_colouring().unwrap(),
            re.solution.as_colouring().unwrap(),
        );
        rows.push(Row(vec![
            format!("n={n} c={c} mu={mu}"),
            format!("{kappa}"),
            format!("{delta}"),
            format!("{:.0}", colour_budget(n, delta, mu)),
            format!("{} ({} rds)", cv.num_colours, rv.rounds()),
            format!("{} ({} rds)", ce.num_colours, re.rounds()),
            format!("{} ({} rds)", luby.num_colours, luby.rounds),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "kappa",
                "Delta",
                "budget (1+o(1))D",
                "vertex cols (rounds)",
                "edge cols (rounds)",
                "Luby [32] cols (rounds)"
            ],
            &rows
        )
    );
}

/// E9 — baseline head-to-head: our 2-approx weighted matching vs layered
/// filtering (8-approx), Crouch–Stubbs (4+ε), the 2-round coreset, and
/// sequential greedy, on the same graphs.
fn e9_baselines(registry: &Registry) {
    println!("\n## E9 — weighted matching: local ratio vs the Figure-1 baselines\n");
    let mut rows = Vec::new();
    for (n, c) in [(200usize, 0.4f64), (300, 0.5), (500, 0.5)] {
        let g = weighted_graph(n, c, 31);
        // µ = 0.25 gives the η = n^1.25 budget the baselines also get.
        let cfg = MrConfig::auto(n, g.m(), 0.25, 31);
        let eta = cfg.eta;
        let ours = solve_rlr(registry, "matching", &Instance::Graph(g.clone()), &cfg);
        let layered = layered_weighted_matching(&g, eta, 31).expect("layered");
        let cs = crouch_stubbs_matching(&g, 0.5, eta, 31).expect("crouch-stubbs");
        let coreset = coreset_matching(&g, (n as f64).sqrt() as usize, 31).expect("coreset");
        let greedy = greedy_weighted_matching(&g);
        let w_ours = ours.certificate.objective;
        let w_lay = mrlr_core::verify::matching_weight(&g, &layered.matching);
        let w_greedy = mrlr_core::verify::matching_weight(&g, &greedy);
        rows.push(Row(vec![
            format!("n={n} c={c}"),
            format!("{w_ours:.0} ({} it)", ours.solution.iterations()),
            format!(
                "{w_lay:.0} ({:.3}x, {} it)",
                w_lay / w_ours,
                layered.iterations
            ),
            format!(
                "{:.0} ({:.3}x, {} cls)",
                cs.weight,
                cs.weight / w_ours,
                cs.classes
            ),
            format!(
                "{:.0} ({:.3}x, 2 rds)",
                coreset.weight,
                coreset.weight / w_ours
            ),
            format!("{w_greedy:.0} ({:.3}x)", w_greedy / w_ours),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "RLR (Thm 5.6)",
                "layered [27]",
                "Crouch-Stubbs [14]",
                "coreset [4]",
                "greedy (seq)"
            ],
            &rows
        )
    );
    // Weight-spread instances (log-uniform over 9 octaves): where guarantee
    // gaps become realized gaps — layering loses whole weight classes.
    println!("with heavy-tailed weights (log-uniform 0.5..256):\n");
    let mut rows = Vec::new();
    for (n, c) in [(200usize, 0.4f64), (300, 0.5), (500, 0.5)] {
        let base = mrlr_graph::generators::densified(n, c, 33);
        let g = mrlr_graph::generators::with_log_uniform_weights(&base, 0.5, 256.0, 34);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 33);
        let eta = cfg.eta;
        let ours = solve_rlr(registry, "matching", &Instance::Graph(g.clone()), &cfg);
        let layered = layered_weighted_matching(&g, eta, 33).expect("layered");
        let cs = crouch_stubbs_matching(&g, 0.5, eta, 33).expect("cs");
        let coreset = coreset_matching(&g, (n as f64).sqrt() as usize, 33).expect("coreset");
        let w_ours = ours.certificate.objective;
        let w_lay = mrlr_core::verify::matching_weight(&g, &layered.matching);
        rows.push(Row(vec![
            format!("n={n} c={c}"),
            format!("{w_ours:.0}"),
            format!("{:.3}x", w_lay / w_ours),
            format!("{:.3}x", cs.weight / w_ours),
            format!("{:.3}x", coreset.weight / w_ours),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "RLR weight",
                "layered/ours",
                "Crouch-Stubbs/ours",
                "coreset/ours"
            ],
            &rows
        )
    );
}

/// E10 — Corollary B.1: maximal clique rounds.
fn e10_clique(registry: &Registry) {
    println!("\n## E10 — maximal clique: hungry-greedy rounds (Cor B.1)\n");
    let mut rows = Vec::new();
    for (n, p, mu) in [(150usize, 0.5f64, 0.3f64), (150, 0.8, 0.3), (300, 0.5, 0.4)] {
        let g = mrlr_graph::generators::gnp(n, p, 37);
        let cfg = MrConfig::auto(n, g.m(), mu, 37);
        let r = solve(registry, "clique", &Instance::Graph(g), &cfg);
        let k = r.solution.as_selection().unwrap();
        rows.push(Row(vec![
            format!("n={n} p={p} mu={mu}"),
            format!("{}", k.vertices.len()),
            format!("{}", r.solution.iterations()),
            format!("{}", r.rounds()),
            format!("{}", r.peak_words()),
        ]));
    }
    println!(
        "{}",
        render_table(
            &["instance", "|K|", "iterations", "MR rounds", "peak words"],
            &rows
        )
    );
}

/// E11 — fault tolerance pricing (§1 motivation): crash/straggler plans
/// priced against real runs; the algorithm's output is unchanged (the
/// MapReduce recovery contract), only rounds/makespan stretch.
fn e11_fault_pricing(registry: &Registry) {
    println!("\n## E11 — fault pricing: crash/straggler overhead on real runs\n");
    let n = 300usize;
    let g = weighted_graph(n, 0.5, 41);
    let cfg = MrConfig::auto(n, g.m(), 0.2, 41);
    let r = solve(registry, "matching", &Instance::Graph(g), &cfg);
    let met = r.metrics.expect("Mr backend meters");
    let t = Timeline::from_metrics(&met);
    println!(
        "base run: {} rounds, {} words moved, busiest round {} words\n",
        met.rounds,
        t.total_words(),
        t.busiest_round().map_or(0, |b| b.total)
    );
    let mut rows = Vec::new();
    for (crash_p, straggle_p, slowdown) in [
        (0.0f64, 0.0f64, 1.0f64),
        (0.01, 0.0, 1.0),
        (0.05, 0.0, 1.0),
        (0.0, 0.10, 2.0),
        (0.0, 0.10, 4.0),
        (0.05, 0.10, 3.0),
    ] {
        let plan = FaultPlan::random(met.machines, met.rounds, crash_p, straggle_p, slowdown, 43);
        let priced = apply(&met, &plan);
        rows.push(Row(vec![
            format!(
                "crash {:.0}% straggle {:.0}% x{slowdown}",
                crash_p * 100.0,
                straggle_p * 100.0
            ),
            format!("{}", priced.crashes_applied + priced.stragglers_applied),
            format!("{} -> {}", priced.base_rounds, priced.effective_rounds),
            format!("{:.1}", priced.makespan),
            format!("{:.2}x", priced.slowdown_factor()),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "fault rates",
                "events",
                "rounds",
                "makespan (round-units)",
                "slowdown"
            ],
            &rows
        )
    );
}

/// E12 — ablation: sampling budget η. The paper sets η = n^{1+µ}; this
/// sweep shows iterations growing as η shrinks (the c/µ trade-off made
/// concrete) while the certified ratio stays ≤ 2 throughout — correctness
/// never depends on the budget.
fn e12_eta_ablation(registry: &Registry) {
    println!("\n## E12 — ablation: sampling budget eta vs iterations (Alg 4)\n");
    let n = 300usize;
    let g = weighted_graph(n, 0.5, 47);
    let mut rows = Vec::new();
    for exp in [1.05f64, 1.15, 1.25, 1.35, 1.45] {
        // µ = exp − 1 makes auto derive η = n^exp.
        let cfg = MrConfig::auto(n, g.m(), exp - 1.0, 47);
        let r = solve_rlr(registry, "matching", &Instance::Graph(g.clone()), &cfg);
        rows.push(Row(vec![
            format!("n^{exp} = {}", cfg.eta),
            format!("{}", r.solution.iterations()),
            format!("{:.3}", r.certificate.certified_ratio.unwrap_or(f64::NAN)),
            format!("{:.0}", r.certificate.objective),
        ]));
    }
    println!(
        "{}",
        render_table(&["eta", "iterations", "certified ratio", "weight"], &rows)
    );
}

/// E14 — executor scaling (the seam behind `Backend::Mr`): the same run
/// under the sequential executor and 2/4/8-thread pools. Solutions and
/// `Metrics` are asserted bit-identical at every thread count — the
/// executor only moves wall-clock, and only on hosts with real cores
/// (single-CPU hosts read flat; the substrate's rendezvous test proves
/// the concurrency structurally). Ends with a `solve_batch` smoke run:
/// one instance set across many `(algorithm, cfg)` jobs on warm pools.
fn e14_executor_scaling(registry: &Registry) {
    println!("\n## E14 — executor scaling: wall-clock vs threads, identical outputs\n");
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("host parallelism: {host} (thread columns drop below seq only with real cores)\n");
    // Pool thread spawns must not land inside the timed threaded cells.
    for threads in [2usize, 4, 8] {
        let _ = mrlr_mapreduce::executor_for(threads);
    }
    let mut rows = Vec::new();
    for n in [1000usize, 2000] {
        let g = weighted_graph(n, 0.5, 61);
        // Small µ = many η-sized machines: the parallel-grain regime.
        let cfg = MrConfig::auto(n, g.m(), 0.05, 61);
        let inst = Instance::Graph(g);
        // Warm-up run: one-off costs (page faults, pool spawn) must not
        // land on the baseline column.
        let _ = solve(registry, "matching", &inst, &cfg.with_threads(1));
        let reference = solve(registry, "matching", &inst, &cfg.with_threads(1));
        let ref_metrics = reference.metrics.clone().expect("Mr backend meters");
        let mut cells = vec![
            format!("matching n={n} M={}", cfg.machines),
            format!("{}", reference.rounds()),
            format!("{:.1}", reference.wall.as_secs_f64() * 1e3),
        ];
        for threads in [2usize, 4, 8] {
            let r = solve(registry, "matching", &inst, &cfg.with_threads(threads));
            assert_eq!(r.solution, reference.solution, "x{threads} diverged");
            assert_eq!(
                r.metrics.as_ref().expect("meters"),
                &ref_metrics,
                "x{threads} metrics diverged"
            );
            let speedup = reference.wall.as_secs_f64() / r.wall.as_secs_f64().max(1e-9);
            cells.push(format!("{:.1} ({speedup:.2}x)", r.wall.as_secs_f64() * 1e3));
        }
        cells.push(format!("{:.2}", ref_metrics.max_straggler_skew()));
        rows.push(Row(cells));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "MR rounds",
                "seq ms",
                "2 thr ms",
                "4 thr ms",
                "8 thr ms",
                "straggler skew"
            ],
            &rows
        )
    );

    // solve_batch smoke: one instance set across many (algorithm, cfg)
    // jobs, pools pre-warmed once for the whole batch.
    let ga = weighted_graph(300, 0.5, 67);
    let gb = weighted_graph(200, 0.4, 68);
    let cfg_a = MrConfig::auto(300, ga.m(), 0.25, 67);
    let cfg_b = MrConfig::auto(200, gb.m(), 0.25, 68);
    let instances = vec![Instance::Graph(ga), Instance::Graph(gb)];
    let jobs = [
        ("matching", cfg_a),
        ("matching", cfg_a.with_threads(4)),
        ("mis2", cfg_a),
        ("vertex-colouring", cfg_b),
    ];
    let results = registry.solve_batch(&instances, &jobs);
    let mut solved = 0usize;
    for (i, per_instance) in results.iter().enumerate() {
        for ((name, _), outcome) in jobs.iter().zip(per_instance) {
            let report = outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("batch {name} on instance {i}: {e}"));
            assert!(report.certificate.feasible, "batch {name}: infeasible");
            solved += 1;
        }
        // The two matching jobs differ only in thread count: identical
        // solutions, identical metrics.
        let (a, b) = (
            per_instance[0].as_ref().unwrap(),
            per_instance[1].as_ref().unwrap(),
        );
        assert_eq!(a.solution, b.solution, "batch: thread count changed output");
        assert_eq!(a.metrics, b.metrics, "batch: thread count changed metrics");
    }
    println!(
        "solve_batch smoke: {} instances x {} jobs = {solved} verified reports (thread-count twins bit-identical)\n",
        instances.len(),
        jobs.len()
    );
}

/// E13 — ablation: per-vertex vs pooled sampling (the design choice behind
/// Lemma 5.4). Both are certified 2-approximations; per-vertex sampling is
/// what makes hub degrees decay geometrically. The pooled variant and the
/// decay traces are ablation-only instrumented entry points.
fn e13_sampling_ablation(registry: &Registry) {
    use mrlr_core::rlr::{approx_max_matching_pooled, degree_decay_trace, SamplingStrategy};
    println!("\n## E13 — ablation: per-vertex (Alg 4) vs pooled sampling\n");
    let mut rows = Vec::new();
    for (n, c) in [(300usize, 0.5f64), (500, 0.5)] {
        // Hub-heavy weights: the regime where the design choice matters.
        let base = mrlr_graph::generators::densified(n, c, 51);
        let g = mrlr_graph::generators::with_degree_weights(&base, 0.5);
        let cfg = MrConfig::auto(n, g.m(), 0.15, 53);
        let eta = cfg.eta;
        let pv = solve_rlr(registry, "matching", &Instance::Graph(g.clone()), &cfg);
        let pl = approx_max_matching_pooled(&g, eta, 53).expect("pooled");
        assert!(mrlr_core::verify::is_matching(&g, &pl.matching));
        let tv = degree_decay_trace(&g, eta, 53, SamplingStrategy::PerVertex).expect("trace pv");
        let tl = degree_decay_trace(&g, eta, 53, SamplingStrategy::Pooled).expect("trace pl");
        let fmt_trace = |t: &[usize]| {
            t.iter()
                .take(6)
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(">")
        };
        rows.push(Row(vec![
            format!("n={n} c={c}"),
            format!(
                "{} it, {:.0}w",
                pv.solution.iterations(),
                pv.certificate.objective
            ),
            format!("{} it, {:.0}w", pl.iterations, pl.weight),
            fmt_trace(&tv),
            fmt_trace(&tl),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "instance",
                "per-vertex (paper)",
                "pooled (ablation)",
                "Delta_i per-vertex",
                "Delta_i pooled"
            ],
            &rows
        )
    );
}
