//! Routing hot-path benchmark: maintains the committed `BENCH_exec.json`
//! perf trajectory.
//!
//! Two sections feed the artifact:
//!
//! * `router` — synthetic all-to-all exchange supersteps driven straight
//!   through [`Cluster::exchange`], comparing the sequential `Merge`
//!   reference plane (backend `mr`) against the concurrent plane
//!   (backend `shard`) at 1 and 4 threads, for a one-word and a
//!   container-payload message shape. Destinations are drawn from the
//!   machine-local shard RNG stream ([`mrlr_mapreduce::Shard::rng_mut`]);
//!   final state checksums and `Metrics` are asserted bit-identical
//!   across every leg before anything is reported.
//! * `registry` — three representative algorithm keys solved through
//!   the registry across threads {1, 4} × backends {mr, shard}, each leg
//!   asserted bit-identical (solution and `Metrics`) to the `mr`
//!   reference run.
//!
//! Each row records wall-time, peak inbox bytes and allocator traffic
//! per superstep, counted by a `#[global_allocator]` shim compiled into
//! this bin only. Rows carry a `phase` tag (`before` / `after`):
//! regeneration replaces only the rows of the phase being measured and
//! keeps the other phase's rows, so the committed file accumulates the
//! trajectory across PRs instead of overwriting it.
//!
//! Usage:
//!   `bench_exec [--quick] [--phase before|after] [out.json]`
//!     measure and rewrite the given phase (default `after`,
//!     default path `BENCH_exec.json`).
//!   `bench_exec --check [out.json]`
//!     CI mode: run the quick equivalence assertions (Merge vs the
//!     concurrent plane) without touching the file, then fail unless the
//!     committed artifact already has rows for both phases of both
//!     sections.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mrlr_bench::{vertex_weights, weighted_graph};
use mrlr_core::api::{Backend, Instance, Registry, VertexWeightedGraph};
use mrlr_core::io::{parse_json, JsonValue};
use mrlr_core::mr::MrConfig;
use mrlr_mapreduce::cluster::{Cluster, ClusterConfig, Outbox};
use mrlr_mapreduce::{DetRng, Metrics, RuntimeKind, Wire, WordSized};

// ---------------------------------------------------------------------------
// Counting allocator (this bin only): every heap allocation and
// reallocation bumps a counter, so a superstep loop's allocator traffic
// is the counter delta around it. Deallocations are uncounted — the
// metric is "new memory requests per superstep", the thing the columnar
// plane's buffer reuse is meant to eliminate.

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counters are simple
// relaxed atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Router section: synthetic exchange supersteps.

#[derive(Clone, Copy)]
struct RouterParams {
    machines: usize,
    /// Messages staged per machine per superstep.
    volume: usize,
    /// Measured supersteps (after warm-up).
    supersteps: usize,
    /// Unmeasured supersteps that warm buffer pools first.
    warmup: usize,
}

const ROUTER_FULL: RouterParams = RouterParams {
    machines: 32,
    volume: 256,
    supersteps: 48,
    warmup: 2,
};
const ROUTER_QUICK: RouterParams = RouterParams {
    machines: 8,
    volume: 64,
    supersteps: 8,
    warmup: 2,
};
const ROUTER_SEED: u64 = 42;

/// Per-machine resident state of the synthetic workload: a machine-local
/// RNG stream (seeded once from `Shard::rng_mut`) plus an order-sensitive
/// checksum over everything received.
struct RouterState {
    rng: DetRng,
    checksum: u64,
    received: u64,
}

impl WordSized for RouterState {
    fn words(&self) -> usize {
        4
    }
}

struct RouterMeasurement {
    checksums: Vec<u64>,
    metrics: Metrics,
    wall_nanos: u128,
    allocs_per_superstep: u64,
    alloc_bytes_per_superstep: u64,
}

/// Runs the synthetic workload on one (runtime, threads) leg. `build`
/// turns a destination-selecting RNG draw into the message payload and
/// `digest` folds a received message into the checksum; both are pure,
/// so every leg sees identical traffic.
fn run_router<M, B, D>(
    runtime: RuntimeKind,
    threads: usize,
    p: RouterParams,
    build: B,
    digest: D,
) -> RouterMeasurement
where
    M: WordSized + Send + Wire + 'static,
    B: Fn(u64) -> M + Sync,
    D: Fn(&M) -> u64 + Sync,
{
    let capacity = (p.volume + 2) * 64 * p.machines;
    let cfg = ClusterConfig::new(p.machines, capacity)
        .with_runtime(runtime)
        .with_threads(threads)
        .with_seed(ROUTER_SEED);
    let states: Vec<RouterState> = (0..p.machines)
        .map(|_| RouterState {
            rng: DetRng::new(0),
            checksum: 0,
            received: 0,
        })
        .collect();
    let mut cluster = Cluster::new(cfg, states).expect("cluster");
    // Machine-local coins: each machine's destination stream derives from
    // its own shard RNG, not from a stateless hash of the message id.
    for id in 0..p.machines {
        let shard = cluster.shard_mut(id);
        let seed = shard.rng_mut().next_u64();
        shard.state_mut().rng = DetRng::new(seed);
    }
    let machines = p.machines;
    let volume = p.volume;
    let superstep = |cluster: &mut Cluster<RouterState>| {
        cluster
            .exchange(
                |_, st: &mut RouterState, out: &mut Outbox<M>| {
                    for _ in 0..volume {
                        let draw = st.rng.next_u64();
                        out.send((draw % machines as u64) as usize, build(draw));
                    }
                },
                |_, st: &mut RouterState, inbox| {
                    for msg in inbox {
                        st.checksum = st
                            .checksum
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(digest(&msg));
                        st.received += 1;
                    }
                },
            )
            .expect("exchange");
    };
    for _ in 0..p.warmup {
        superstep(&mut cluster);
    }
    let (calls0, bytes0) = alloc_snapshot();
    let start = Instant::now();
    for _ in 0..p.supersteps {
        superstep(&mut cluster);
    }
    let wall_nanos = start.elapsed().as_nanos();
    let (calls1, bytes1) = alloc_snapshot();
    let (states, metrics) = cluster.into_parts();
    RouterMeasurement {
        checksums: states.iter().map(|s| s.checksum).collect(),
        metrics,
        wall_nanos,
        allocs_per_superstep: (calls1 - calls0) / p.supersteps as u64,
        alloc_bytes_per_superstep: (bytes1 - bytes0) / p.supersteps as u64,
    }
}

/// All router legs for one message shape; asserts every leg bit-identical
/// to the (mr, 1 thread) reference before reporting.
fn router_rows<M, B, D>(
    rows: &mut Vec<String>,
    phase: &str,
    workload: &str,
    p: RouterParams,
    build: B,
    digest: D,
) where
    M: WordSized + Send + Wire + 'static,
    B: Fn(u64) -> M + Sync + Copy,
    D: Fn(&M) -> u64 + Sync + Copy,
{
    let legs = [("mr", RuntimeKind::Classic), ("shard", RuntimeKind::Shard)];
    let reference = run_router::<M, _, _>(RuntimeKind::Classic, 1, p, build, digest);
    for (backend, runtime) in legs {
        for threads in [1usize, 4] {
            let m = run_router::<M, _, _>(runtime, threads, p, build, digest);
            assert_eq!(
                m.checksums, reference.checksums,
                "{workload}: {backend} threads={threads} diverged from reference"
            );
            assert_eq!(
                m.metrics, reference.metrics,
                "{workload}: {backend} threads={threads} metrics diverged"
            );
            let mut row = String::new();
            let _ = write!(
                row,
                "{{\"section\": \"router\", \"phase\": \"{phase}\", \"workload\": \"{workload}\", \
                 \"backend\": \"{backend}\", \"plane\": \"{}\", \"threads\": {threads}, \
                 \"machines\": {}, \"volume\": {}, \"supersteps\": {}, \
                 \"wall_nanos\": {}, \"wall_nanos_per_superstep\": {}, \
                 \"allocs_per_superstep\": {}, \"alloc_bytes_per_superstep\": {}, \
                 \"peak_inbox_bytes\": {}}}",
                runtime.router().name(),
                p.machines,
                p.volume,
                p.supersteps,
                m.wall_nanos,
                m.wall_nanos / p.supersteps as u128,
                m.allocs_per_superstep,
                m.alloc_bytes_per_superstep,
                m.metrics.peak_in_words * 8,
            );
            rows.push(row);
            eprintln!(
                "router/{workload} {backend} t{threads}: \
                 {} allocs/superstep, {} ns/superstep",
                m.allocs_per_superstep,
                m.wall_nanos / p.supersteps as u128
            );
        }
    }
}

fn router_section(rows: &mut Vec<String>, phase: &str, quick: bool) {
    let p = if quick { ROUTER_QUICK } else { ROUTER_FULL };
    // One-word messages: the hot shape, where per-message overhead is
    // everything.
    router_rows::<u64, _, _>(rows, phase, "u64", p, |draw| draw, |m| *m);
    // Container messages: exercises header-word accounting and payload
    // moves through the delivery pass.
    router_rows::<Vec<u64>, _, _>(
        rows,
        phase,
        "vec3",
        p,
        |draw| vec![draw, draw ^ 0xff, draw >> 7],
        |m| m.iter().fold(0u64, |a, x| a.wrapping_add(*x)),
    );
}

// ---------------------------------------------------------------------------
// Registry section: whole solves through the public API.

const REG_FULL_N: usize = 400;
const REG_QUICK_N: usize = 120;
const REG_C: f64 = 0.5;
const REG_MU: f64 = 0.25;
const REG_SEED: u64 = 42;

fn registry_workloads(quick: bool) -> Vec<(&'static str, Instance, MrConfig)> {
    let n = if quick { REG_QUICK_N } else { REG_FULL_N };
    let g = weighted_graph(n, REG_C, REG_SEED);
    let m = g.m();
    let cfg = MrConfig::auto(n, m, REG_MU, REG_SEED);
    vec![
        ("matching", Instance::Graph(g.clone()), cfg),
        (
            "vertex-cover",
            Instance::VertexWeighted(VertexWeightedGraph::new(
                g.clone(),
                vertex_weights(n, REG_SEED),
            )),
            cfg,
        ),
        ("vertex-colouring", Instance::Graph(g), cfg),
    ]
}

fn registry_section(rows: &mut Vec<String>, phase: &str, quick: bool) {
    let registry = Registry::with_defaults();
    for (key, instance, cfg) in registry_workloads(quick) {
        let reference = registry
            .solve_with(key, Backend::Mr, &instance, &cfg)
            .expect("reference run");
        for (backend_name, backend) in [("mr", Backend::Mr), ("shard", Backend::Shard)] {
            for threads in [1usize, 4] {
                let leg_cfg = cfg.with_threads(threads);
                let (calls0, bytes0) = alloc_snapshot();
                let report = registry
                    .solve_with(key, backend, &instance, &leg_cfg)
                    .expect("solve");
                let (calls1, bytes1) = alloc_snapshot();
                assert_eq!(
                    report.solution, reference.solution,
                    "{key}: {backend_name} threads={threads} diverged"
                );
                assert_eq!(
                    report.metrics, reference.metrics,
                    "{key}: {backend_name} threads={threads} metrics diverged"
                );
                let metrics = report.metrics.as_ref().expect("cluster metrics");
                let supersteps = metrics.supersteps.max(1) as u64;
                let mut row = String::new();
                let _ = write!(
                    row,
                    "{{\"section\": \"registry\", \"phase\": \"{phase}\", \
                     \"algorithm\": \"{key}\", \"backend\": \"{backend_name}\", \
                     \"threads\": {threads}, \"supersteps\": {}, \"rounds\": {}, \
                     \"wall_nanos\": {}, \"allocs_per_superstep\": {}, \
                     \"alloc_bytes_per_superstep\": {}, \"peak_inbox_bytes\": {}}}",
                    metrics.supersteps,
                    metrics.rounds,
                    report.wall.as_nanos(),
                    (calls1 - calls0) / supersteps,
                    (bytes1 - bytes0) / supersteps,
                    metrics.peak_in_words * 8,
                );
                rows.push(row);
            }
        }
        eprintln!("registry/{key}: mr + shard at threads {{1,4}}");
    }
}

// ---------------------------------------------------------------------------
// Artifact assembly: keep the other phase's rows, replace this phase's.

fn render_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        JsonValue::Num(raw) => out.push_str(raw),
        JsonValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{k}\": ");
                render_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Rows already in the artifact whose `phase` differs from the one being
/// re-measured, re-rendered verbatim.
fn kept_rows(path: &str, phase: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let doc = parse_json(&text).expect("existing artifact parses");
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .expect("artifact has a rows array");
    rows.iter()
        .filter(|row| row.get("phase").and_then(JsonValue::as_str) != Some(phase))
        .map(|row| {
            let mut s = String::new();
            render_value(row, &mut s);
            s
        })
        .collect()
}

fn write_artifact(path: &str, rows: &[String]) {
    let mut out = String::from("{\n  \"bench\": \"exec\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).expect("write artifact");
    println!("wrote {path} ({} rows)", rows.len());
}

/// CI gate: the committed artifact must already carry both phases of
/// both sections, i.e. the trajectory is present and regenerations did
/// not drop the historical rows.
fn check_artifact(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    let doc = parse_json(&text).expect("artifact parses");
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .expect("artifact has a rows array");
    for section in ["router", "registry"] {
        for phase in ["before", "after"] {
            let count = rows
                .iter()
                .filter(|r| {
                    r.get("section").and_then(JsonValue::as_str) == Some(section)
                        && r.get("phase").and_then(JsonValue::as_str) == Some(phase)
                })
                .count();
            assert!(
                count > 0,
                "--check: {path} has no rows for section={section} phase={phase}"
            );
            println!("ok: {section}/{phase}: {count} rows");
        }
    }
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut phase = String::from("after");
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--phase" => {
                phase = args.next().expect("--phase needs a value");
                assert!(
                    phase == "before" || phase == "after",
                    "--phase must be before|after"
                );
            }
            other if !other.starts_with('-') => out_path = Some(other.to_string()),
            other => panic!("unknown flag {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_exec.json".into());

    if check {
        // Fast equivalence gate first: any Merge-vs-concurrent-plane
        // divergence panics inside router_rows before the file is judged.
        let mut scratch = Vec::new();
        router_section(&mut scratch, "check", true);
        check_artifact(&out_path);
        println!("check passed");
        return;
    }

    let mut rows = kept_rows(&out_path, &phase);
    router_section(&mut rows, &phase, quick);
    registry_section(&mut rows, &phase, quick);
    write_artifact(&out_path, &rows);
}
