//! Routing hot-path benchmark: maintains the committed `BENCH_exec.json`
//! perf trajectory.
//!
//! Three sections feed the artifact:
//!
//! * `router` — synthetic all-to-all exchange supersteps driven straight
//!   through [`Cluster::exchange`], comparing the sequential `Merge`
//!   reference plane (backend `mr`) against the concurrent plane
//!   (backend `shard`) at 1 and 4 threads, for a one-word and a
//!   container-payload message shape. Destinations are drawn from the
//!   machine-local shard RNG stream ([`mrlr_mapreduce::Shard::rng_mut`]);
//!   final state checksums and `Metrics` are asserted bit-identical
//!   across every leg before anything is reported.
//! * `registry` — three representative algorithm keys solved through
//!   the registry across threads {1, 4} × backends {mr, shard}, each leg
//!   asserted bit-identical (solution and `Metrics`) to the `mr`
//!   reference run.
//! * `payload` — the vec3 container workload staged on the flat payload
//!   plane ([`Cluster::exchange_payload`]) against the nested
//!   `Vec<u64>`-message shape it replaces, plus an `mis2` registry leg
//!   whose sample shuffles ride that plane. This section re-measures
//!   BOTH phases every run (the two planes coexist in the same build),
//!   so the before/after allocation gap is always an apples-to-apples
//!   pair from one binary.
//!
//! Each row records wall-time, peak inbox bytes and allocator traffic
//! per superstep, counted by a `#[global_allocator]` shim compiled into
//! this bin only. Rows carry a `phase` tag (`before` / `after`):
//! regeneration replaces only the rows of the phase being measured and
//! keeps the other phase's rows (`payload` rows are always re-measured),
//! so the committed file accumulates the trajectory across PRs instead
//! of overwriting it.
//!
//! Usage:
//!   `bench_exec [--quick] [--phase before|after] [out.json]`
//!     measure and rewrite the given phase (default `after`,
//!     default path `BENCH_exec.json`).
//!   `bench_exec --check [out.json]`
//!     CI mode: run the quick equivalence assertions (Merge vs the
//!     concurrent plane, nested vs payload plane) without touching the
//!     file, then fail unless the committed artifact already has rows
//!     for both phases of every section, and fail if any freshly
//!     measured columnar-plane row allocates more than 25% (plus a +16
//!     absolute grace) over its committed `after` baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mrlr_bench::{vertex_weights, weighted_graph};
use mrlr_core::api::{Backend, Instance, Registry, VertexWeightedGraph};
use mrlr_core::io::{parse_json, JsonValue};
use mrlr_core::mr::MrConfig;
use mrlr_mapreduce::cluster::{Cluster, ClusterConfig, Outbox};
use mrlr_mapreduce::{DetRng, Metrics, PayloadOutbox, RuntimeKind, Wire, WordSized};

// ---------------------------------------------------------------------------
// Counting allocator (this bin only): every heap allocation and
// reallocation bumps a counter, so a superstep loop's allocator traffic
// is the counter delta around it. Deallocations are uncounted — the
// metric is "new memory requests per superstep", the thing the columnar
// plane's buffer reuse is meant to eliminate.

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counters are simple
// relaxed atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Router section: synthetic exchange supersteps.

#[derive(Clone, Copy)]
struct RouterParams {
    machines: usize,
    /// Messages staged per machine per superstep.
    volume: usize,
    /// Measured supersteps (after warm-up).
    supersteps: usize,
    /// Unmeasured supersteps that warm buffer pools first.
    warmup: usize,
}

const ROUTER_FULL: RouterParams = RouterParams {
    machines: 32,
    volume: 256,
    supersteps: 48,
    warmup: 2,
};
const ROUTER_QUICK: RouterParams = RouterParams {
    machines: 8,
    volume: 64,
    supersteps: 8,
    warmup: 2,
};
const ROUTER_SEED: u64 = 42;

/// Per-machine resident state of the synthetic workload: a machine-local
/// RNG stream (seeded once from `Shard::rng_mut`) plus an order-sensitive
/// checksum over everything received.
struct RouterState {
    rng: DetRng,
    checksum: u64,
    received: u64,
}

impl WordSized for RouterState {
    fn words(&self) -> usize {
        4
    }
}

struct RouterMeasurement {
    checksums: Vec<u64>,
    metrics: Metrics,
    wall_nanos: u128,
    allocs_per_superstep: u64,
    alloc_bytes_per_superstep: u64,
}

/// Builds the synthetic-workload cluster for one (runtime, threads)
/// leg, with each machine's destination stream seeded from its own
/// shard RNG (machine-local coins, not a stateless hash of the
/// message id).
fn router_cluster(runtime: RuntimeKind, threads: usize, p: RouterParams) -> Cluster<RouterState> {
    let capacity = (p.volume + 2) * 64 * p.machines;
    let cfg = ClusterConfig::new(p.machines, capacity)
        .with_runtime(runtime)
        .with_threads(threads)
        .with_seed(ROUTER_SEED);
    let states: Vec<RouterState> = (0..p.machines)
        .map(|_| RouterState {
            rng: DetRng::new(0),
            checksum: 0,
            received: 0,
        })
        .collect();
    let mut cluster = Cluster::new(cfg, states).expect("cluster");
    for id in 0..p.machines {
        let shard = cluster.shard_mut(id);
        let seed = shard.rng_mut().next_u64();
        shard.state_mut().rng = DetRng::new(seed);
    }
    cluster
}

/// Warm-up, then measured supersteps around the allocator snapshot;
/// shared by every router-shaped workload.
fn measure_router(
    mut cluster: Cluster<RouterState>,
    p: RouterParams,
    superstep: impl Fn(&mut Cluster<RouterState>),
) -> RouterMeasurement {
    for _ in 0..p.warmup {
        superstep(&mut cluster);
    }
    let (calls0, bytes0) = alloc_snapshot();
    let start = Instant::now();
    for _ in 0..p.supersteps {
        superstep(&mut cluster);
    }
    let wall_nanos = start.elapsed().as_nanos();
    let (calls1, bytes1) = alloc_snapshot();
    let (states, metrics) = cluster.into_parts();
    RouterMeasurement {
        checksums: states.iter().map(|s| s.checksum).collect(),
        metrics,
        wall_nanos,
        allocs_per_superstep: (calls1 - calls0) / p.supersteps as u64,
        alloc_bytes_per_superstep: (bytes1 - bytes0) / p.supersteps as u64,
    }
}

/// Runs the synthetic workload on one (runtime, threads) leg. `build`
/// turns a destination-selecting RNG draw into the message payload and
/// `digest` folds a received message into the checksum; both are pure,
/// so every leg sees identical traffic.
fn run_router<M, B, D>(
    runtime: RuntimeKind,
    threads: usize,
    p: RouterParams,
    build: B,
    digest: D,
) -> RouterMeasurement
where
    M: WordSized + Send + Wire + 'static,
    B: Fn(u64) -> M + Sync,
    D: Fn(&M) -> u64 + Sync,
{
    let cluster = router_cluster(runtime, threads, p);
    let machines = p.machines;
    let volume = p.volume;
    measure_router(cluster, p, |cluster| {
        cluster
            .exchange(
                |_, st: &mut RouterState, out: &mut Outbox<M>| {
                    for _ in 0..volume {
                        let draw = st.rng.next_u64();
                        out.send((draw % machines as u64) as usize, build(draw));
                    }
                },
                |_, st: &mut RouterState, inbox| {
                    for msg in inbox {
                        st.checksum = st
                            .checksum
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(digest(&msg));
                        st.received += 1;
                    }
                },
            )
            .expect("exchange");
    })
}

/// The vec3 workload restaged on the flat payload plane: head `()`
/// (zero words) plus three `u64` elements, so each message meters
/// 0 + 1 + 3 = 4 words — exactly the `Vec<u64>` shape it replaces —
/// and the RNG draws are identical, so checksums and `Metrics` must
/// match the nested-plane runs bit for bit.
fn run_router_payload(runtime: RuntimeKind, threads: usize, p: RouterParams) -> RouterMeasurement {
    let cluster = router_cluster(runtime, threads, p);
    let machines = p.machines;
    let volume = p.volume;
    measure_router(cluster, p, |cluster| {
        cluster
            .exchange_payload(
                |_, st: &mut RouterState, out: &mut PayloadOutbox<(), u64>| {
                    for _ in 0..volume {
                        let draw = st.rng.next_u64();
                        let mut w = out.push_payload((draw % machines as u64) as usize, ());
                        w.push(draw);
                        w.push(draw ^ 0xff);
                        w.push(draw >> 7);
                    }
                },
                |_, st: &mut RouterState, mut inbox| {
                    while let Some(((), payload)) = inbox.next_msg() {
                        let digest = payload.iter().fold(0u64, |a, x| a.wrapping_add(*x));
                        st.checksum = st
                            .checksum
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(digest);
                        st.received += 1;
                    }
                },
            )
            .expect("exchange_payload");
    })
}

/// Renders one router-shaped measurement as an artifact row.
#[allow(clippy::too_many_arguments)]
fn router_row(
    section: &str,
    phase: &str,
    workload: &str,
    backend: &str,
    plane: &str,
    threads: usize,
    p: RouterParams,
    m: &RouterMeasurement,
) -> String {
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"section\": \"{section}\", \"phase\": \"{phase}\", \"workload\": \"{workload}\", \
         \"backend\": \"{backend}\", \"plane\": \"{plane}\", \"threads\": {threads}, \
         \"machines\": {}, \"volume\": {}, \"supersteps\": {}, \
         \"wall_nanos\": {}, \"wall_nanos_per_superstep\": {}, \
         \"allocs_per_superstep\": {}, \"alloc_bytes_per_superstep\": {}, \
         \"peak_inbox_bytes\": {}}}",
        p.machines,
        p.volume,
        p.supersteps,
        m.wall_nanos,
        m.wall_nanos / p.supersteps as u128,
        m.allocs_per_superstep,
        m.alloc_bytes_per_superstep,
        m.metrics.peak_in_words * 8,
    );
    row
}

/// All router legs for one message shape; asserts every leg bit-identical
/// to the (mr, 1 thread) reference before reporting.
fn router_rows<M, B, D>(
    rows: &mut Vec<String>,
    phase: &str,
    workload: &str,
    p: RouterParams,
    build: B,
    digest: D,
) where
    M: WordSized + Send + Wire + 'static,
    B: Fn(u64) -> M + Sync + Copy,
    D: Fn(&M) -> u64 + Sync + Copy,
{
    let legs = [("mr", RuntimeKind::Classic), ("shard", RuntimeKind::Shard)];
    let reference = run_router::<M, _, _>(RuntimeKind::Classic, 1, p, build, digest);
    for (backend, runtime) in legs {
        for threads in [1usize, 4] {
            let m = run_router::<M, _, _>(runtime, threads, p, build, digest);
            assert_eq!(
                m.checksums, reference.checksums,
                "{workload}: {backend} threads={threads} diverged from reference"
            );
            assert_eq!(
                m.metrics, reference.metrics,
                "{workload}: {backend} threads={threads} metrics diverged"
            );
            let plane = runtime.router().name();
            rows.push(router_row(
                "router", phase, workload, backend, plane, threads, p, &m,
            ));
            eprintln!(
                "router/{workload} {backend} t{threads}: \
                 {} allocs/superstep, {} ns/superstep",
                m.allocs_per_superstep,
                m.wall_nanos / p.supersteps as u128
            );
        }
    }
}

fn vec3_build(draw: u64) -> Vec<u64> {
    vec![draw, draw ^ 0xff, draw >> 7]
}

// `run_router` digests take `&M` with `M = Vec<u64>`, so `&Vec` is the
// required signature here, not a pessimization.
#[allow(clippy::ptr_arg)]
fn vec3_digest(m: &Vec<u64>) -> u64 {
    m.iter().fold(0u64, |a, x| a.wrapping_add(*x))
}

fn router_section(rows: &mut Vec<String>, phase: &str, quick: bool) {
    let p = if quick { ROUTER_QUICK } else { ROUTER_FULL };
    // One-word messages: the hot shape, where per-message overhead is
    // everything.
    router_rows::<u64, _, _>(rows, phase, "u64", p, |draw| draw, |m| *m);
    // Container messages: exercises header-word accounting and payload
    // moves through the delivery pass.
    router_rows::<Vec<u64>, _, _>(rows, phase, "vec3", p, vec3_build, vec3_digest);
}

// ---------------------------------------------------------------------------
// Registry section: whole solves through the public API.

const REG_FULL_N: usize = 400;
const REG_QUICK_N: usize = 120;
const REG_C: f64 = 0.5;
const REG_MU: f64 = 0.25;
const REG_SEED: u64 = 42;

fn registry_workloads(quick: bool) -> Vec<(&'static str, Instance, MrConfig)> {
    let n = if quick { REG_QUICK_N } else { REG_FULL_N };
    let g = weighted_graph(n, REG_C, REG_SEED);
    let m = g.m();
    let cfg = MrConfig::auto(n, m, REG_MU, REG_SEED);
    vec![
        ("matching", Instance::Graph(g.clone()), cfg),
        (
            "vertex-cover",
            Instance::VertexWeighted(VertexWeightedGraph::new(
                g.clone(),
                vertex_weights(n, REG_SEED),
            )),
            cfg,
        ),
        ("vertex-colouring", Instance::Graph(g), cfg),
    ]
}

fn registry_section(rows: &mut Vec<String>, phase: &str, quick: bool) {
    let registry = Registry::with_defaults();
    for (key, instance, cfg) in registry_workloads(quick) {
        let reference = registry
            .solve_with(key, Backend::Mr, &instance, &cfg)
            .expect("reference run");
        for (backend_name, backend) in [("mr", Backend::Mr), ("shard", Backend::Shard)] {
            for threads in [1usize, 4] {
                let leg_cfg = cfg.with_threads(threads);
                let (calls0, bytes0) = alloc_snapshot();
                let report = registry
                    .solve_with(key, backend, &instance, &leg_cfg)
                    .expect("solve");
                let (calls1, bytes1) = alloc_snapshot();
                assert_eq!(
                    report.solution, reference.solution,
                    "{key}: {backend_name} threads={threads} diverged"
                );
                assert_eq!(
                    report.metrics, reference.metrics,
                    "{key}: {backend_name} threads={threads} metrics diverged"
                );
                let metrics = report.metrics.as_ref().expect("cluster metrics");
                let supersteps = metrics.supersteps.max(1) as u64;
                let mut row = String::new();
                let _ = write!(
                    row,
                    "{{\"section\": \"registry\", \"phase\": \"{phase}\", \
                     \"algorithm\": \"{key}\", \"backend\": \"{backend_name}\", \
                     \"threads\": {threads}, \"supersteps\": {}, \"rounds\": {}, \
                     \"wall_nanos\": {}, \"allocs_per_superstep\": {}, \
                     \"alloc_bytes_per_superstep\": {}, \"peak_inbox_bytes\": {}}}",
                    metrics.supersteps,
                    metrics.rounds,
                    report.wall.as_nanos(),
                    (calls1 - calls0) / supersteps,
                    (bytes1 - bytes0) / supersteps,
                    metrics.peak_in_words * 8,
                );
                rows.push(row);
            }
        }
        eprintln!("registry/{key}: mr + shard at threads {{1,4}}");
    }
}

// ---------------------------------------------------------------------------
// Payload section: the flat payload plane against the nested Vec plane
// it replaces, measured as a before/after pair from the same binary.

/// Router-shaped payload legs plus the `mis2` registry leg. The
/// `before` rows are the vec3 `Vec<u64>`-message shape (one heap
/// allocation per staged message plus one per delivered copy); the
/// `after` rows stage the identical traffic through
/// [`Cluster::exchange_payload`] writer handles into pooled flat
/// columns. Head `()` + 3 elements meters 0 + 1 + 3 = 4 words — the
/// same as `Vec<u64>` with 3 elements — and both planes consume the
/// same RNG draws, so every leg of both phases is asserted
/// bit-identical (checksums + `Metrics`) to the nested Classic/t1
/// reference before any row is emitted.
fn payload_section(rows: &mut Vec<String>, quick: bool) {
    let p = if quick { ROUTER_QUICK } else { ROUTER_FULL };
    let reference =
        run_router::<Vec<u64>, _, _>(RuntimeKind::Classic, 1, p, vec3_build, vec3_digest);
    let legs = [("mr", RuntimeKind::Classic), ("shard", RuntimeKind::Shard)];
    for (backend, runtime) in legs {
        for threads in [1usize, 4] {
            let before = run_router::<Vec<u64>, _, _>(runtime, threads, p, vec3_build, vec3_digest);
            let after = run_router_payload(runtime, threads, p);
            for (phase, workload, m) in [("before", "vec3", &before), ("after", "payload", &after)]
            {
                assert_eq!(
                    m.checksums, reference.checksums,
                    "payload/{workload}: {backend} threads={threads} diverged from reference"
                );
                assert_eq!(
                    m.metrics, reference.metrics,
                    "payload/{workload}: {backend} threads={threads} metrics diverged"
                );
                let plane = runtime.router().name();
                rows.push(router_row(
                    "payload", phase, workload, backend, plane, threads, p, m,
                ));
            }
            eprintln!(
                "payload {backend} t{threads}: {} → {} allocs/superstep",
                before.allocs_per_superstep, after.allocs_per_superstep
            );
        }
    }
    payload_registry_rows(rows, quick);
}

/// The `mis2` solve through the registry: its sample shuffles ride the
/// payload plane, so this leg records what the flat columns buy at the
/// whole-algorithm level. Each leg is asserted bit-identical (solution
/// and `Metrics`) to the `mr` reference run.
fn payload_registry_rows(rows: &mut Vec<String>, quick: bool) {
    let registry = Registry::with_defaults();
    let n = if quick { REG_QUICK_N } else { REG_FULL_N };
    let g = weighted_graph(n, REG_C, REG_SEED);
    let cfg = MrConfig::auto(n, g.m(), REG_MU, REG_SEED);
    let instance = Instance::Graph(g);
    let reference = registry
        .solve_with("mis2", Backend::Mr, &instance, &cfg)
        .expect("mis2 reference run");
    for (backend_name, plane, backend) in [
        ("mr", "merge", Backend::Mr),
        ("shard", "columnar", Backend::Shard),
    ] {
        for threads in [1usize, 4] {
            let leg_cfg = cfg.with_threads(threads);
            let (calls0, bytes0) = alloc_snapshot();
            let report = registry
                .solve_with("mis2", backend, &instance, &leg_cfg)
                .expect("mis2 solve");
            let (calls1, bytes1) = alloc_snapshot();
            assert_eq!(
                report.solution, reference.solution,
                "mis2: {backend_name} threads={threads} diverged"
            );
            assert_eq!(
                report.metrics, reference.metrics,
                "mis2: {backend_name} threads={threads} metrics diverged"
            );
            let metrics = report.metrics.as_ref().expect("cluster metrics");
            let supersteps = metrics.supersteps.max(1) as u64;
            let mut row = String::new();
            let _ = write!(
                row,
                "{{\"section\": \"payload\", \"phase\": \"after\", \
                 \"workload\": \"mis2\", \"backend\": \"{backend_name}\", \
                 \"plane\": \"{plane}\", \"threads\": {threads}, \
                 \"supersteps\": {}, \"rounds\": {}, \"wall_nanos\": {}, \
                 \"allocs_per_superstep\": {}, \"alloc_bytes_per_superstep\": {}, \
                 \"peak_inbox_bytes\": {}}}",
                metrics.supersteps,
                metrics.rounds,
                report.wall.as_nanos(),
                (calls1 - calls0) / supersteps,
                (bytes1 - bytes0) / supersteps,
                metrics.peak_in_words * 8,
            );
            rows.push(row);
        }
    }
    eprintln!("payload/mis2: mr + shard at threads {{1,4}}");
}

// ---------------------------------------------------------------------------
// Artifact assembly: keep the other phase's rows, replace this phase's.

fn render_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        JsonValue::Num(raw) => out.push_str(raw),
        JsonValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{k}\": ");
                render_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Rows already in the artifact whose `phase` differs from the one being
/// re-measured, re-rendered verbatim. `payload`-section rows are always
/// dropped: that section re-measures both of its phases on every run,
/// so keeping the old rows would duplicate them.
fn kept_rows(path: &str, phase: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let doc = parse_json(&text).expect("existing artifact parses");
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .expect("artifact has a rows array");
    rows.iter()
        .filter(|row| {
            row.get("phase").and_then(JsonValue::as_str) != Some(phase)
                && row.get("section").and_then(JsonValue::as_str) != Some("payload")
        })
        .map(|row| {
            let mut s = String::new();
            render_value(row, &mut s);
            s
        })
        .collect()
}

fn write_artifact(path: &str, rows: &[String]) {
    let mut out = String::from("{\n  \"bench\": \"exec\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).expect("write artifact");
    println!("wrote {path} ({} rows)", rows.len());
}

/// CI gate: the committed artifact must already carry both phases of
/// every section, i.e. the trajectory is present and regenerations did
/// not drop the historical rows.
fn check_artifact(path: &str, rows: &[JsonValue]) {
    for section in ["router", "registry", "payload"] {
        for phase in ["before", "after"] {
            let count = rows
                .iter()
                .filter(|r| {
                    r.get("section").and_then(JsonValue::as_str) == Some(section)
                        && r.get("phase").and_then(JsonValue::as_str) == Some(phase)
                })
                .count();
            assert!(
                count > 0,
                "--check: {path} has no rows for section={section} phase={phase}"
            );
            println!("ok: {section}/{phase}: {count} rows");
        }
    }
}

/// CI alloc-regression gate: every freshly measured columnar-plane row
/// must stay within `max(base * 5/4, base + 16)` of the
/// allocs-per-superstep its committed `after` baseline records (25%
/// slack, with an absolute +16 grace so single-digit baselines don't
/// flake on allocator noise). The fresh rows run at QUICK sizes, which
/// are never larger than the committed full-size run, so a failure
/// here means the columnar plane regressed for certain; a pass at
/// quick size is the conservative direction.
fn alloc_gate(committed: &[JsonValue], measured: &[String]) {
    let key_of = |row: &JsonValue| -> Option<(String, String, String, u64)> {
        if row.get("plane").and_then(JsonValue::as_str) != Some("columnar") {
            return None;
        }
        Some((
            row.get("section").and_then(JsonValue::as_str)?.to_string(),
            row.get("workload").and_then(JsonValue::as_str)?.to_string(),
            row.get("backend").and_then(JsonValue::as_str)?.to_string(),
            row.get("threads").and_then(JsonValue::as_u64)?,
        ))
    };
    let baselines: Vec<_> = committed
        .iter()
        .filter(|r| r.get("phase").and_then(JsonValue::as_str) == Some("after"))
        .filter_map(|r| {
            let key = key_of(r)?;
            let base = r.get("allocs_per_superstep").and_then(JsonValue::as_u64)?;
            Some((key, base))
        })
        .collect();
    let mut gated = 0usize;
    for row in measured {
        let row = parse_json(row).expect("measured row renders as JSON");
        let Some(key) = key_of(&row) else { continue };
        let Some(&(_, base)) = baselines.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        let got = row
            .get("allocs_per_superstep")
            .and_then(JsonValue::as_u64)
            .expect("measured row has allocs_per_superstep");
        let allowed = (base * 5 / 4).max(base + 16);
        assert!(
            got <= allowed,
            "--check: alloc regression on {key:?}: measured {got} allocs/superstep \
             exceeds allowed {allowed} (committed baseline {base})"
        );
        println!(
            "ok: allocs {}/{} {} t{}: {got} <= {allowed} (baseline {base})",
            key.0, key.1, key.2, key.3
        );
        gated += 1;
    }
    assert!(
        gated > 0,
        "--check: no columnar rows were gated — baseline rows missing from the artifact"
    );
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut phase = String::from("after");
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--phase" => {
                phase = args.next().expect("--phase needs a value");
                assert!(
                    phase == "before" || phase == "after",
                    "--phase must be before|after"
                );
            }
            other if !other.starts_with('-') => out_path = Some(other.to_string()),
            other => panic!("unknown flag {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_exec.json".into());

    if check {
        // Fast equivalence gates first: any Merge-vs-concurrent-plane or
        // nested-vs-payload-plane divergence panics inside the section
        // runners before the file is judged.
        let mut scratch = Vec::new();
        router_section(&mut scratch, "check", true);
        payload_section(&mut scratch, true);
        let text = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("--check: cannot read {out_path}: {e}"));
        let doc = parse_json(&text).expect("artifact parses");
        let rows = doc
            .get("rows")
            .and_then(JsonValue::as_arr)
            .expect("artifact has a rows array");
        check_artifact(&out_path, rows);
        alloc_gate(rows, &scratch);
        println!("check passed");
        return;
    }

    let mut rows = kept_rows(&out_path, &phase);
    router_section(&mut rows, &phase, quick);
    registry_section(&mut rows, &phase, quick);
    payload_section(&mut rows, quick);
    write_artifact(&out_path, &rows);
}
