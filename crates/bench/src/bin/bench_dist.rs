//! Benchmarks the distributed runtime against the sharded one and
//! writes the committed `BENCH_dist.json` artifact.
//!
//! For a fixed workload set, each registry key is solved as
//! `Backend::Shard` (the in-process baseline) and as `Backend::Dist` at
//! 1, 2 and 4 workers; bit-identity of the solutions is asserted before
//! anything is reported, so the numbers always describe equivalent
//! runs. Per dist run the artifact records the wall-clock, the
//! per-worker shuffle traffic (bytes out/in, batches) and the transport
//! time; one additional run per key injects a worker kill and records
//! the recovery wall-time, with the report again asserted identical.
//!
//! Usage: `cargo run --release -p mrlr-bench --bin bench_dist [out.json]`
//! (default output path: `BENCH_dist.json` in the current directory).

use std::fmt::Write as _;

use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;
use mrlr_mapreduce::{DistSummary, WorkerKill};
use mrlr_setsys::generators as setgen;

const N: usize = 300;
const C: f64 = 0.5;
const MU: f64 = 0.25;
const SEED: u64 = 42;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn workloads() -> Vec<(&'static str, Instance, MrConfig)> {
    let g = weighted_graph(N, C, SEED);
    let m = g.m();
    let cfg = MrConfig::auto(N, m, MU, SEED);
    let sys =
        setgen::with_uniform_weights(setgen::bounded_frequency(N, m, 3, SEED), 1.0, 10.0, SEED);
    let sys_cfg = MrConfig::auto(N, m, MU, SEED);
    vec![
        ("matching", Instance::Graph(g.clone()), cfg),
        ("mis2", Instance::Graph(g.unweighted()), cfg),
        ("vertex-colouring", Instance::Graph(g), cfg),
        ("set-cover-f", Instance::SetSystem(sys), sys_cfg),
    ]
}

fn json_dist(out: &mut String, summary: &DistSummary) {
    let _ = write!(out, "\"workers\": {}, \"shuffle\": [", summary.workers);
    for (i, w) in summary.shuffle.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}{{\"worker\": {}, \"bytes_out\": {}, \"bytes_in\": {}, \"batches\": {}}}",
            w.worker, w.bytes_out, w.bytes_in, w.batches
        );
    }
    let _ = write!(
        out,
        "], \"shuffle_nanos\": {}, \"recoveries\": [",
        summary.shuffle_nanos
    );
    for (i, r) in summary.recoveries.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}{{\"worker\": {}, \"superstep\": {}, \"recovery_wall_nanos\": {}, \"replayed_bytes\": {}}}",
            r.worker, r.superstep, r.wall_nanos, r.replayed_bytes
        );
    }
    let _ = write!(out, "]");
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dist.json".into());
    let registry = Registry::with_defaults();
    let mut out = String::from("{\n  \"bench\": \"dist-vs-shard\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"n\": {N}, \"c\": {C}, \"mu\": {MU}, \"seed\": {SEED}}},"
    );
    out.push_str("  \"entries\": [\n");

    let workloads = workloads();
    let mut first = true;
    for (key, instance, cfg) in &workloads {
        let shard = registry
            .solve_with(key, Backend::Shard, instance, cfg)
            .expect("shard run");
        for &workers in &WORKER_COUNTS {
            let dcfg = cfg.with_workers(workers);
            let dist = registry
                .solve_with(key, Backend::Dist, instance, &dcfg)
                .expect("dist run");
            assert_eq!(
                dist.solution, shard.solution,
                "{key}: dist diverged from shard at {workers} workers"
            );
            assert_eq!(dist.metrics, shard.metrics, "{key}: metrics diverged");
            let summary = dist
                .metrics
                .as_ref()
                .and_then(|m| m.dist.as_ref())
                .expect("dist summary");
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"algorithm\": \"{key}\", \"requested_workers\": {workers}, \
                 \"shard_wall_nanos\": {}, \"dist_wall_nanos\": {}, ",
                shard.wall.as_nanos(),
                dist.wall.as_nanos()
            );
            json_dist(&mut out, summary);
            let _ = write!(out, "}}");
        }
        // One faulted run per key: kill worker 0 after superstep 1's
        // barrier — every driver reaches the next barrier, so the
        // recovery always fires — and record what the healing cost.
        let kcfg = cfg.with_workers(2).with_worker_kill(WorkerKill {
            worker: 0,
            superstep: 1,
        });
        let healed = registry
            .solve_with(key, Backend::Dist, instance, &kcfg)
            .expect("faulted dist run");
        assert_eq!(
            healed.solution, shard.solution,
            "{key}: faulted dist run diverged"
        );
        let summary = healed
            .metrics
            .as_ref()
            .and_then(|m| m.dist.as_ref())
            .expect("dist summary");
        assert!(
            !summary.recoveries.is_empty(),
            "{key}: injected kill never fired"
        );
        out.push_str(",\n");
        let _ = write!(
            out,
            "    {{\"algorithm\": \"{key}\", \"requested_workers\": 2, \"kill\": \"0@1\", \
             \"shard_wall_nanos\": {}, \"dist_wall_nanos\": {}, ",
            shard.wall.as_nanos(),
            healed.wall.as_nanos()
        );
        json_dist(&mut out, summary);
        let _ = write!(out, "}}");
        eprintln!("measured {key}: shard + dist x{WORKER_COUNTS:?} + kill");
    }
    out.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &out).expect("write artifact");
    println!("wrote {out_path}");
}
