//! Out-of-core scaling bench: maintains the committed `BENCH_scale.json`
//! artifact.
//!
//! For every rung of a sweep-spec size ladder (default
//! `scripts/scale_ladder.spec`: `densified` with `m = n^{1.4}` edges,
//! topping out at ~10^7), the instance is rendered to a temp file once
//! and then solved twice in *subprocess* legs so each leg's peak RSS
//! (`VmHWM` from `/proc/self/status`) is isolated:
//!
//! * `materialized` — read the whole file, `parse_instance`, registry
//!   solve: the central-copy path.
//! * `streamed` — `solve_matching_stream` straight off the file handle:
//!   records flow into per-machine blocks as they parse; no document
//!   string, no central `Graph`.
//!
//! Both legs report the same objective (asserted), so each row's RSS gap
//! is the measured cost of central materialization — the `η = n^{1+µ}`
//! regime violation the streamed path removes. Rows also record
//! distributed edges/sec and the report sizes with a full vs committed
//! (Merkle) witness.
//!
//! Usage:
//!   `bench_scale [--quick] [--spec PATH] [out.json]`  measure and rewrite
//!   `bench_scale --check [out.json]`   CI mode: assert the streamed and
//!       materialized reports agree on a small instance, then validate the
//!       committed artifact's schema and its RSS claim without touching it.
//!   `bench_scale --leg streamed|materialized --file PATH`  internal
//!       subprocess entry; prints one JSON object.

use std::fmt::Write as _;
use std::time::Instant;

use mrlr_bench::sweep::SweepSpec;
use mrlr_core::api::{self, Backend, Registry, Solution};
use mrlr_core::io::{self, parse_json, CertificateMode, JsonValue, TimingMode};
use mrlr_core::mr::MrConfig;

const MU: f64 = 0.25;
const SEED: u64 = 42;
const COMMIT_CHUNK_LEN: usize = 4096;

const DEFAULT_SPEC_PATH: &str = "scripts/scale_ladder.spec";
const DEFAULT_OUT: &str = "BENCH_scale.json";

/// Peak resident set size of this process in KiB (`VmHWM`), when the
/// platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Renders the report twice — full witness and committed witness — and
/// returns `(full_bytes, committed_bytes, transcript_bytes)`.
fn report_sizes(report: &api::Report<Solution>) -> (usize, usize, usize) {
    let full = io::report_json_with(report, TimingMode::Masked, CertificateMode::Full).render();
    let commitment = api::commit_witness(&report.certificate.witness, COMMIT_CHUNK_LEN)
        .expect("matching reports carry a committable stack witness");
    let mut committed_report = report.clone();
    committed_report.certificate.witness = commitment.witness;
    let committed =
        io::report_json_with(&committed_report, TimingMode::Masked, CertificateMode::Full).render();
    (full.len(), committed.len(), commitment.transcript.len())
}

/// One subprocess leg: load + solve, then print a JSON object with the
/// leg's wall clock, peak RSS and report sizes.
fn run_leg(leg: &str, file: &str) {
    let started = Instant::now();
    let report: api::Report<Solution> = match leg {
        "materialized" => {
            let text = std::fs::read_to_string(file).expect("read instance file");
            let instance = io::parse_instance(&text).expect("parse instance");
            let cfg = instance.auto_config(MU, SEED);
            Registry::with_defaults()
                .solve("matching", &instance, &cfg)
                .expect("materialized solve")
        }
        "streamed" => {
            let reader = std::fs::File::open(file).expect("open instance file");
            api::solve_matching_stream(reader, io::DEFAULT_BUF_LEN, Backend::Mr, |n, m| {
                MrConfig::auto(n, m.max(1), MU, SEED)
            })
            .expect("streamed solve")
            .map(Solution::Matching)
        }
        other => panic!("unknown leg `{other}`"),
    };
    let wall_nanos = started.elapsed().as_nanos() as u64;
    let (full_bytes, committed_bytes, transcript_bytes) = report_sizes(&report);
    println!(
        "{{\"leg\": \"{leg}\", \"objective\": {:?}, \"feasible\": {}, \"rounds\": {}, \
         \"wall_nanos\": {wall_nanos}, \"peak_rss_kb\": {}, \"report_full_bytes\": {full_bytes}, \
         \"report_committed_bytes\": {committed_bytes}, \"transcript_bytes\": {transcript_bytes}}}",
        report.certificate.objective,
        report.certificate.feasible,
        report.rounds(),
        peak_rss_kb().unwrap_or(0),
    );
}

/// Spawns this binary as a leg subprocess and parses its JSON line.
fn spawn_leg(leg: &str, file: &std::path::Path) -> JsonValue {
    let exe = std::env::current_exe().expect("current exe");
    let output = std::process::Command::new(exe)
        .args(["--leg", leg, "--file", file.to_str().unwrap()])
        .output()
        .expect("spawn leg");
    assert!(
        output.status.success(),
        "leg {leg} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("leg stdout");
    parse_json(stdout.trim()).expect("leg JSON parses")
}

fn num(v: &JsonValue, field: &str) -> f64 {
    v.get(field)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("leg output lacks numeric `{field}`"))
}

/// Reads `n` and `m` from the instance file's problem line without
/// loading the body.
fn header_counts(path: &std::path::Path) -> (usize, usize) {
    use std::io::BufRead as _;
    let file = std::fs::File::open(path).expect("open instance");
    let mut first = String::new();
    std::io::BufReader::new(file)
        .read_line(&mut first)
        .expect("read header");
    let tok: Vec<&str> = first.split_whitespace().collect();
    assert_eq!(tok[..2], ["p", "graph"], "ladder instances are graphs");
    (tok[2].parse().unwrap(), tok[3].parse().unwrap())
}

fn measure(spec: &SweepSpec, quick: bool) -> Vec<String> {
    let tmp = std::env::temp_dir().join(format!("mrlr-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    let mut rows = Vec::new();
    let points = spec.points();
    let points = if quick { &points[..1] } else { &points[..] };
    for point in points {
        let path = tmp.join(&point.out);
        {
            // Generate and stream to disk; the graph drops before the
            // legs run, so the parent's footprint never skews them.
            let instance = spec.build(point).expect("ladder point builds");
            let file = std::fs::File::create(&path).expect("create instance file");
            let mut w = std::io::BufWriter::new(file);
            io::write_instance(&mut w, &instance).expect("write instance");
            std::io::Write::flush(&mut w).expect("flush instance");
        }
        let (n, m) = header_counts(&path);
        eprintln!("rung n={n} m={m}: generated {}", path.display());

        let streamed = spawn_leg("streamed", &path);
        let materialized = spawn_leg("materialized", &path);
        std::fs::remove_file(&path).ok();

        assert_eq!(
            num(&streamed, "objective").to_bits(),
            num(&materialized, "objective").to_bits(),
            "rung n={n}: streamed and materialized legs disagree"
        );
        let edges_per_sec = |leg: &JsonValue| m as f64 / (num(leg, "wall_nanos") / 1e9);
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"n\": {n}, \"m\": {m}, \
             \"streamed_wall_nanos\": {}, \"streamed_peak_rss_kb\": {}, \
             \"streamed_edges_per_sec\": {:.0}, \
             \"materialized_wall_nanos\": {}, \"materialized_peak_rss_kb\": {}, \
             \"materialized_edges_per_sec\": {:.0}, \
             \"report_full_bytes\": {}, \"report_committed_bytes\": {}, \
             \"transcript_bytes\": {}}}",
            num(&streamed, "wall_nanos") as u64,
            num(&streamed, "peak_rss_kb") as u64,
            edges_per_sec(&streamed),
            num(&materialized, "wall_nanos") as u64,
            num(&materialized, "peak_rss_kb") as u64,
            edges_per_sec(&materialized),
            num(&streamed, "report_full_bytes") as u64,
            num(&streamed, "report_committed_bytes") as u64,
            num(&streamed, "transcript_bytes") as u64,
        );
        eprintln!(
            "rung n={n} m={m}: streamed {:.0} edges/s at {} KiB peak, \
             materialized {:.0} edges/s at {} KiB peak",
            edges_per_sec(&streamed),
            num(&streamed, "peak_rss_kb") as u64,
            edges_per_sec(&materialized),
            num(&materialized, "peak_rss_kb") as u64,
        );
        rows.push(row);
    }
    std::fs::remove_dir_all(&tmp).ok();
    rows
}

// ---------------------------------------------------------------------------
// --check mode

/// Differential gate: on a small ladder instance, the streamed report
/// equals the materialized registry report (solution, certificate and
/// metrics), and the committed witness round-trips through the audit.
fn check_streamed_equals_materialized() {
    let spec = SweepSpec::parse(
        "family = \"densified\"\nc = 0.4\nseed = 7\nsweep = \"n\"\nvalues = [120]\n",
    )
    .expect("check spec");
    let point = &spec.points()[0];
    let instance = spec.build(point).expect("check instance builds");
    let text = io::render_instance(&instance);

    let cfg = instance.auto_config(MU, SEED);
    let direct = Registry::with_defaults()
        .solve("matching", &instance, &cfg)
        .expect("materialized solve");
    let streamed =
        api::solve_matching_stream(text.as_bytes(), io::DEFAULT_BUF_LEN, Backend::Mr, |n, m| {
            MrConfig::auto(n, m.max(1), MU, SEED)
        })
        .expect("streamed solve")
        .map(Solution::Matching);
    let render = |r: &api::Report<Solution>| {
        io::report_json_with(r, TimingMode::Masked, CertificateMode::Full).render()
    };
    assert_eq!(
        render(&streamed),
        render(&direct),
        "streamed report diverges from the materialized registry solve"
    );
    println!("ok: streamed report byte-identical to materialized Registry::solve");

    let commitment = api::commit_witness(&direct.certificate.witness, 8).expect("committable");
    let claims = api::Claims::from(&direct.certificate);
    let checks = api::audit_committed(
        &instance,
        direct.algorithm,
        &direct.solution,
        &claims,
        &commitment.witness,
        &commitment.transcript,
    )
    .expect("committed witness audits");
    assert!(checks[0].starts_with("commitment:"));
    println!("ok: committed witness round-trips through audit_committed");
}

/// Schema gate: the committed artifact's rows are well-formed, reach the
/// 10^7-edge rung, and show the streamed path peaking below the
/// materialized one there (with a smaller committed report).
fn check_artifact(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    let doc = parse_json(&text).expect("artifact parses");
    assert_eq!(
        doc.get("bench").and_then(JsonValue::as_str),
        Some("scale"),
        "--check: {path} is not a scale artifact"
    );
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .expect("artifact has a rows array");
    assert!(!rows.is_empty(), "--check: {path} has no rows");
    let fields = [
        "n",
        "m",
        "streamed_wall_nanos",
        "streamed_peak_rss_kb",
        "streamed_edges_per_sec",
        "materialized_wall_nanos",
        "materialized_peak_rss_kb",
        "materialized_edges_per_sec",
        "report_full_bytes",
        "report_committed_bytes",
        "transcript_bytes",
    ];
    for row in rows {
        for field in fields {
            assert!(
                row.get(field).and_then(JsonValue::as_f64).is_some(),
                "--check: row lacks numeric field `{field}`"
            );
        }
    }
    println!("ok: all rows carry all fields");
    let top = rows
        .iter()
        .max_by(|a, b| num(a, "m").total_cmp(&num(b, "m")))
        .unwrap();
    assert!(
        num(top, "m") >= 1e7,
        "--check: ladder top rung has only {} edges, want >= 10^7",
        num(top, "m")
    );
    assert!(
        num(top, "streamed_peak_rss_kb") < num(top, "materialized_peak_rss_kb"),
        "--check: streamed peak RSS ({} KiB) not below materialized ({} KiB) at the top rung",
        num(top, "streamed_peak_rss_kb"),
        num(top, "materialized_peak_rss_kb"),
    );
    println!(
        "ok: top rung (m = {:.0}) streamed peak {} KiB < materialized peak {} KiB",
        num(top, "m"),
        num(top, "streamed_peak_rss_kb") as u64,
        num(top, "materialized_peak_rss_kb") as u64,
    );
    assert!(
        num(top, "report_committed_bytes") < num(top, "report_full_bytes"),
        "--check: committed report not smaller than the full-witness report"
    );
    println!("ok: committed report smaller than full-witness report at the top rung");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Internal subprocess entry.
    if let Some(at) = args.iter().position(|a| a == "--leg") {
        let leg = args[at + 1].clone();
        let file_at = args.iter().position(|a| a == "--file").expect("--file");
        run_leg(&leg, &args[file_at + 1]);
        return;
    }

    let mut quick = false;
    let mut check = false;
    let mut spec_path = DEFAULT_SPEC_PATH.to_string();
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--spec" => spec_path = it.next().expect("--spec needs a path"),
            other if !other.starts_with('-') => out_path = Some(other.to_string()),
            other => panic!("unknown flag {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| DEFAULT_OUT.into());

    if check {
        check_streamed_equals_materialized();
        check_artifact(&out_path);
        println!("check passed");
        return;
    }

    let spec_text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| panic!("cannot read sweep spec {spec_path}: {e}"));
    let spec = SweepSpec::parse(&spec_text).unwrap_or_else(|e| panic!("{spec_path}: {e}"));
    let rows = measure(&spec, quick);
    let mut out = String::from("{\n  \"bench\": \"scale\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).expect("write artifact");
    println!("wrote {out_path} ({} rows)", rows.len());
}
