//! Regenerates **Figure 1** of the paper with measured columns.
//!
//! Every paper row is one entry in a declarative spec table; the actual
//! invocation is a single loop dispatching through the
//! [`mrlr_core::api::Registry`] — no per-algorithm call sites. For each row
//! the binary reports: the theoretical approximation and round bounds, the
//! *measured* approximation (from the uniform report certificate), the
//! measured MapReduce rounds, and the measured peak words per machine
//! against the `η = n^{1+µ}` budget. The literature baselines we implement
//! (filtering, layered filtering, Crouch–Stubbs, coresets, Luby) follow in
//! their own section.
//!
//! Usage: `cargo run --release -p mrlr-bench --bin figure1`

use mrlr_baselines::{
    coreset_matching, crouch_stubbs_matching, filtering_maximal_matching, filtering_vertex_cover,
    layered_weighted_matching, luby_colouring, luby_mis,
};
use mrlr_bench::{max_ratio, min_ratio, render_table, vertex_weights, weighted_graph, Row};
use mrlr_core::api::{
    BMatchingInstance, Instance, Registry, Report, Solution, VertexWeightedGraph,
    DEFAULT_GREEDY_SC_EPS,
};
use mrlr_core::colouring::colour_budget;
use mrlr_core::exact;
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::{b_matching_multiplier, greedy_set_cover, harmonic};
use mrlr_core::verify;
use mrlr_setsys::generators as setgen;

const N: usize = 300;
const C: f64 = 0.5;
const MU: f64 = 0.25;
const SEED: u64 = 42;

/// One Figure-1 row: theory columns plus the workload to measure them on.
struct Fig1Row {
    problem: &'static str,
    algorithm: &'static str,
    weighted: &'static str,
    approx_theory: String,
    rounds_theory: String,
    reference: &'static str,
    instance: Instance,
    cfg: MrConfig,
}

fn paper_rows() -> Vec<Fig1Row> {
    let g = weighted_graph(N, C, SEED);
    let m = g.m();
    let cfg = MrConfig::auto(N, m, MU, SEED);
    let rounds_c_mu = format!("O(c/mu) = {}", (C / MU).ceil() as usize + 1);

    // f-bounded set system for Algorithm 1.
    let f = 3usize;
    let sys_f =
        setgen::with_uniform_weights(setgen::bounded_frequency(N, m, f, SEED), 1.0, 10.0, SEED);
    // Δ-bounded set system for Algorithm 3.
    let mu_sc = 0.4;
    let universe = 200usize;
    let sys_d = setgen::with_uniform_weights(
        setgen::bounded_set_size(1500, universe, 20, SEED),
        1.0,
        10.0,
        SEED,
    );
    let sc_cfg = MrConfig::auto(universe, sys_d.total_size(), mu_sc, SEED);
    // Dense G(n, 1/2) for the clique row.
    let dense = mrlr_graph::generators::gnp(120, 0.5, SEED);
    let dense_cfg = MrConfig::auto(120, dense.m(), 0.4, SEED);
    // b(v) ∈ {1, 2, 3} for the b-matching row.
    let b: Vec<u32> = (0..N as u32).map(|v| 1 + v % 3).collect();
    let mult = b_matching_multiplier(&b, 0.25);

    vec![
        Fig1Row {
            problem: "Vertex Cover",
            algorithm: "vertex-cover",
            weighted: "Y",
            approx_theory: "2".into(),
            rounds_theory: rounds_c_mu.clone(),
            reference: "Thm 2.4",
            instance: Instance::VertexWeighted(VertexWeightedGraph::new(
                g.clone(),
                vertex_weights(N, SEED),
            )),
            cfg,
        },
        Fig1Row {
            problem: "Set Cover",
            algorithm: "set-cover-f",
            weighted: "Y",
            approx_theory: format!("f = {}", sys_f.max_frequency()),
            rounds_theory: "O((c/mu)^2)".into(),
            reference: "Thm 2.4",
            instance: Instance::SetSystem(sys_f),
            cfg,
        },
        Fig1Row {
            problem: "Set Cover",
            algorithm: "set-cover-greedy",
            weighted: "Y",
            approx_theory: format!(
                "(1+e)H_D = {:.2}",
                (1.0 + DEFAULT_GREEDY_SC_EPS) * harmonic(sys_d.max_set_size())
            ),
            rounds_theory: "O(log-ish / mu^2)".into(),
            reference: "Thm 4.6",
            instance: Instance::SetSystem(sys_d),
            cfg: sc_cfg,
        },
        Fig1Row {
            problem: "Maximal Indep. Set",
            algorithm: "mis1",
            weighted: "-",
            approx_theory: "maximal".into(),
            rounds_theory: "O(1/mu^2)".into(),
            reference: "Thm 3.3 (Alg 2)",
            instance: Instance::Graph(g.unweighted()),
            cfg,
        },
        Fig1Row {
            problem: "Maximal Indep. Set",
            algorithm: "mis2",
            weighted: "-",
            approx_theory: "maximal".into(),
            rounds_theory: rounds_c_mu.clone(),
            reference: "Thm A.3 (Alg 6)",
            instance: Instance::Graph(g.unweighted()),
            cfg,
        },
        Fig1Row {
            problem: "Maximal Clique",
            algorithm: "clique",
            weighted: "-",
            approx_theory: "maximal".into(),
            rounds_theory: "O(1/mu)".into(),
            reference: "Cor B.1",
            instance: Instance::Graph(dense),
            cfg: dense_cfg,
        },
        Fig1Row {
            problem: "Matching",
            algorithm: "matching",
            weighted: "Y",
            approx_theory: "2".into(),
            rounds_theory: rounds_c_mu,
            reference: "Thm 5.6",
            instance: Instance::Graph(g.clone()),
            cfg,
        },
        Fig1Row {
            problem: "b-Matching",
            algorithm: "b-matching",
            weighted: "Y",
            approx_theory: format!("3-2/b+2e = {mult:.2}"),
            rounds_theory: "O(c/mu)".into(),
            reference: "Thm D.3",
            instance: Instance::BMatching(BMatchingInstance::new(g.clone(), b, 0.25)),
            cfg,
        },
        Fig1Row {
            problem: "Vertex Colouring",
            algorithm: "vertex-colouring",
            weighted: "-",
            approx_theory: "(1+o(1))D".into(),
            rounds_theory: "O(1)".into(),
            reference: "Thm 6.4",
            instance: Instance::Graph(g.clone()),
            cfg,
        },
        Fig1Row {
            problem: "Edge Colouring",
            algorithm: "edge-colouring",
            weighted: "-",
            approx_theory: "(1+o(1))D".into(),
            rounds_theory: "O(1)".into(),
            reference: "Thm 6.6",
            instance: Instance::Graph(g),
            cfg,
        },
    ]
}

/// The measured-approximation cell, from the uniform certificate.
fn approx_measured(report: &Report<Solution>, instance: &Instance) -> String {
    match &report.solution {
        Solution::Cover(_) | Solution::Matching(_) => report
            .certificate
            .certified_ratio
            .map_or_else(|| "-".into(), |r| format!("{r:.3} (certified)")),
        Solution::Selection(s) => format!("exact (|S| = {})", s.vertices.len()),
        Solution::Colouring(c) => {
            let g = instance.graph().expect("colouring instances are graphs");
            format!(
                "{} cols, D = {}, budget {:.0}",
                c.num_colours,
                g.max_degree(),
                colour_budget(g.n(), g.max_degree(), MU)
            )
        }
    }
}

fn main() {
    let registry = Registry::with_defaults();
    let g = weighted_graph(N, C, SEED);
    let m = g.m();
    let nf = N as f64;
    let eta = nf.powf(1.0 + MU).ceil() as usize;
    println!("# Figure 1 (measured)\n");
    println!(
        "Workload: n = {N}, m = n^(1+c) = {m} (c = {C}), mu = {MU}, eta = n^(1+mu) = {eta}, seed = {SEED}.\n"
    );

    // ---- The paper's rows: one registry dispatch per spec entry ----
    let mut rows: Vec<Row> = Vec::new();
    let mut reports: Vec<(&'static str, Report<Solution>)> = Vec::new();
    for spec in paper_rows() {
        let report = registry
            .solve(spec.algorithm, &spec.instance, &spec.cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.algorithm));
        assert!(report.certificate.feasible, "{} infeasible", spec.algorithm);
        let metrics = report.metrics.as_ref().expect("Mr reports meter");
        rows.push(Row(vec![
            spec.problem.into(),
            spec.weighted.into(),
            spec.approx_theory,
            approx_measured(&report, &spec.instance),
            spec.rounds_theory,
            format!(
                "{} it / {} rounds",
                report.solution.iterations(),
                metrics.rounds
            ),
            format!("{}", metrics.peak_machine_words),
            spec.reference.into(),
        ]));
        reports.push((spec.algorithm, report));
    }
    println!(
        "{}",
        render_table(
            &[
                "Problem",
                "Weighted?",
                "Approx (theory)",
                "Approx (measured)",
                "Rounds (theory)",
                "Rounds (measured)",
                "Peak words/machine",
                "Reference"
            ],
            &rows
        )
    );

    // ---- Literature baselines (Figure 1 rows [27], [14], [4], [31], [32]) ----
    // The comparison anchor is the matching report already computed in the
    // paper-rows loop (same instance and cfg — everything is seed-fixed).
    let ours = &reports
        .iter()
        .find(|(name, _)| *name == "matching")
        .expect("matching row was solved above")
        .1;
    let w_ours = verify::matching_weight(&g, &ours.solution.as_matching().unwrap().matching);
    let mut rows: Vec<Row> = Vec::new();
    let gu = g.unweighted();
    let fr = filtering_maximal_matching(&gu, eta, SEED).expect("filtering");
    rows.push(Row(vec![
        "Matching".into(),
        "-".into(),
        "2".into(),
        "maximal (verified)".into(),
        "O(c/mu)".into(),
        format!("{} it", fr.iterations),
        format!("{}", 3 * fr.peak_sample),
        "Filtering [27] baseline".into(),
    ]));
    let (fvc, fvc_it) = filtering_vertex_cover(&gu, eta, SEED).expect("filtering vc");
    assert!(verify::is_vertex_cover(&gu, &fvc));
    rows.push(Row(vec![
        "Vertex Cover".into(),
        "-".into(),
        "2".into(),
        format!("|C| = {}", fvc.len()),
        "O(c/mu)".into(),
        format!("{fvc_it} it"),
        "-".into(),
        "Filtering [27] baseline".into(),
    ]));
    let lw = layered_weighted_matching(&g, eta, SEED).expect("layered");
    rows.push(Row(vec![
        "Matching".into(),
        "Y".into(),
        "8".into(),
        format!(
            "{:.3} of ours",
            verify::matching_weight(&g, &lw.matching) / w_ours
        ),
        "O((c/mu) log W)".into(),
        format!("{} it", lw.iterations),
        format!("{}", 3 * lw.peak_sample),
        "Layered filtering [27] baseline".into(),
    ]));
    let cs = crouch_stubbs_matching(&g, 0.5, eta, SEED).expect("crouch-stubbs");
    rows.push(Row(vec![
        "Matching".into(),
        "Y".into(),
        "4+e (3.5+e in [21])".into(),
        format!("{:.3} of ours", cs.weight / w_ours),
        "O(c/mu), classes parallel".into(),
        format!("{} it (max class)", cs.max_iterations),
        format!("{}", 3 * cs.total_peak_sample),
        "Crouch-Stubbs [14] baseline".into(),
    ]));
    let co = coreset_matching(&g, nf.sqrt().ceil() as usize, SEED).expect("coreset");
    rows.push(Row(vec![
        "Matching".into(),
        "Y".into(),
        "O(1)".into(),
        format!("{:.3} of ours", co.weight / w_ours),
        "2".into(),
        "2 rounds".into(),
        format!("{} union edges central", co.union_size),
        "2-round coreset [4] baseline".into(),
    ]));
    let luby = luby_mis(&gu, SEED);
    assert!(verify::is_maximal_independent_set(&gu, &luby.vertices));
    rows.push(Row(vec![
        "Maximal Indep. Set".into(),
        "-".into(),
        "maximal".into(),
        "exact (verified)".into(),
        "O(log n)".into(),
        format!("{} it", luby.rounds),
        "-".into(),
        "Luby [31] baseline".into(),
    ]));
    let lc = luby_colouring(&g, SEED);
    assert!(verify::is_proper_colouring(&g, &lc.colours));
    rows.push(Row(vec![
        "Vertex Colouring".into(),
        "-".into(),
        "D+1".into(),
        format!("{} cols, D = {}", lc.num_colours, g.max_degree()),
        "O(log n)".into(),
        format!("{} it", lc.rounds),
        "-".into(),
        "Luby [32] baseline".into(),
    ]));
    println!(
        "{}",
        render_table(
            &[
                "Problem",
                "Weighted?",
                "Approx (theory)",
                "Approx (measured)",
                "Rounds (theory)",
                "Rounds (measured)",
                "Peak words/machine",
                "Reference"
            ],
            &rows
        )
    );

    // ---- Adjunct: greedy pays more than (1+e)-greedy's certified bound ----
    {
        let sys = setgen::with_uniform_weights(
            setgen::bounded_set_size(1500, 200, 20, SEED),
            1.0,
            10.0,
            SEED,
        );
        let cfg = MrConfig::auto(200, sys.total_size(), 0.4, SEED);
        let r = registry
            .solve("set-cover-greedy", &Instance::SetSystem(sys.clone()), &cfg)
            .expect("set-cover-greedy");
        let cover = r.solution.as_cover().unwrap();
        let greedy = greedy_set_cover(&sys).expect("greedy");
        println!(
            "\nsequential greedy vs Algorithm 3 on the same instance: {:.3} vs {:.3} (ratio to the dual bound)\n",
            min_ratio(greedy.weight, cover.lower_bound),
            min_ratio(cover.weight, cover.lower_bound),
        );
    }

    // ---- Small-instance exact cross-check, through the registry ----
    println!("## Exact cross-check (n = 14, 50 seeds)\n");
    let mut worst_match = 1.0f64;
    let mut worst_vc = 1.0f64;
    for seed in 0..50u64 {
        let sg = weighted_graph(14, 0.4, seed);
        let cfg = MrConfig::auto(14, sg.m(), 0.3, seed);
        let (opt, _) = exact::max_weight_matching(&sg);
        let r = registry
            .solve("matching", &Instance::Graph(sg.clone()), &cfg)
            .expect("small matching");
        worst_match = worst_match.max(max_ratio(r.certificate.objective, opt));
        let w = vertex_weights(14, seed);
        let (vc_opt, _) = exact::min_weight_vertex_cover(&sg, &w);
        let rc = registry
            .solve(
                "vertex-cover",
                &Instance::VertexWeighted(VertexWeightedGraph::new(sg, w)),
                &cfg,
            )
            .expect("small vc");
        worst_vc = worst_vc.max(min_ratio(rc.certificate.objective, vc_opt));
    }
    println!("worst matching ratio vs exact OPT: {worst_match:.4} (theory 2.0)");
    println!("worst vertex cover ratio vs exact OPT: {worst_vc:.4} (theory 2.0)");

    // ---- Executor scaling: the same rounds, concurrent wall-clock ----
    // The Mr backend runs machine supersteps on the pluggable executor
    // seam; rounds/space are schedule-independent (asserted), wall-clock
    // scales with threads on hosts that have real cores.
    println!("\n## Executor scaling (matching, n = 1500, mu = 0.05)\n");
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let gs = weighted_graph(1500, C, SEED);
    let scfg = MrConfig::auto(1500, gs.m(), 0.05, SEED);
    let sinst = Instance::Graph(gs);
    // Warm-up: the first solve pays one-off costs (page faults, lazy
    // allocations) that would skew the baseline row, and each pool's
    // thread spawns must not land inside its timed column.
    for threads in [2usize, 4, 8] {
        let _ = mrlr_mapreduce::executor_for(threads);
    }
    let reference = registry
        .solve("matching", &sinst, &scfg.with_threads(1))
        .expect("scaling reference");
    let mut rows = Vec::new();
    let mut seq_wall = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        let r = registry
            .solve("matching", &sinst, &scfg.with_threads(threads))
            .expect("scaling run");
        assert_eq!(r.solution, reference.solution, "threads changed the output");
        assert_eq!(r.metrics, reference.metrics, "threads changed the metrics");
        let m = r.metrics.as_ref().expect("Mr reports meter");
        let wall = r.wall.as_secs_f64();
        if threads == 1 {
            seq_wall = wall;
        }
        rows.push(Row(vec![
            format!("{threads}"),
            format!("{}", m.rounds),
            format!("{:.1}", wall * 1e3),
            format!("{:.2}x", seq_wall / wall.max(1e-9)),
            format!("{:.2}", m.max_straggler_skew()),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "rounds (identical)",
                "wall ms",
                "speedup vs seq",
                "straggler skew"
            ],
            &rows
        )
    );
    println!("host parallelism: {host}; outputs and metrics bit-identical at every thread count.");
}
