//! Regenerates **Figure 1** of the paper with measured columns.
//!
//! For every row the paper proves (and the baseline rows we implement),
//! this binary runs the algorithm on the standard workload and reports:
//! the theoretical approximation and round bounds, the *measured*
//! approximation (certified by dual/stack certificates, plus exact ratios
//! on small instances), the measured MapReduce rounds, and the measured
//! peak words per machine against the `η = n^{1+µ}` budget.
//!
//! Usage: `cargo run --release -p mrlr-bench --bin figure1`

use mrlr_baselines::{
    coreset_matching, crouch_stubbs_matching, filtering_maximal_matching, filtering_vertex_cover,
    layered_weighted_matching, luby_colouring, luby_mis,
};
use mrlr_bench::{max_ratio, min_ratio, render_table, vertex_weights, weighted_graph, Row};
use mrlr_core::colouring::{colour_budget, group_count};
use mrlr_core::exact;
use mrlr_core::hungry::{HungryScParams, MisParams};
use mrlr_core::mr::bmatching::mr_b_matching;
use mrlr_core::mr::clique::mr_maximal_clique;
use mrlr_core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr_core::mr::matching::mr_matching;
use mrlr_core::mr::mis::{mr_mis_fast, mr_mis_simple};
use mrlr_core::mr::set_cover::mr_set_cover_f;
use mrlr_core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr_core::mr::vertex_cover::mr_vertex_cover;
use mrlr_core::mr::MrConfig;
use mrlr_core::rlr::BMatchingParams;
use mrlr_core::seq::{b_matching_multiplier, greedy_set_cover, harmonic};
use mrlr_core::verify;
use mrlr_setsys::generators as setgen;

const N: usize = 300;
const C: f64 = 0.5;
const MU: f64 = 0.25;
const SEED: u64 = 42;

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let g = weighted_graph(N, C, SEED);
    let m = g.m();
    let nf = N as f64;
    let eta = nf.powf(1.0 + MU).ceil() as usize;
    println!("# Figure 1 (measured)\n");
    println!(
        "Workload: n = {N}, m = n^(1+c) = {m} (c = {C}), mu = {MU}, eta = n^(1+mu) = {eta}, seed = {SEED}.\n"
    );

    // ---- Weighted vertex cover (Theorem 2.4, f = 2) ----
    {
        let w = vertex_weights(N, SEED);
        let cfg = MrConfig::auto(N, m, MU, SEED);
        let (r, met) = mr_vertex_cover(&g, &w, cfg).expect("vertex cover");
        assert!(verify::is_vertex_cover(&g, &r.cover));
        rows.push(Row(vec![
            "Vertex Cover".into(),
            "Y".into(),
            "2".into(),
            format!("{:.3}", min_ratio(r.weight, r.lower_bound)),
            format!("O(c/mu) = {}", (C / MU).ceil() as usize + 1),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{} (<= {}x eta)", met.peak_machine_words, met.peak_machine_words.div_ceil(eta)),
            "Thm 2.4".into(),
        ]));
    }

    // ---- Weighted set cover, f-approximation (Theorem 2.4) ----
    {
        let f = 3usize;
        let sys = setgen::with_uniform_weights(
            setgen::bounded_frequency(N, m, f, SEED),
            1.0,
            10.0,
            SEED,
        );
        let cfg = MrConfig::auto(N, m, MU, SEED);
        let (r, met) = mr_set_cover_f(&sys, cfg).expect("set cover f");
        assert!(sys.covers(&r.cover));
        rows.push(Row(vec![
            "Set Cover".into(),
            "Y".into(),
            format!("f = {}", sys.max_frequency()),
            format!("{:.3}", min_ratio(r.weight, r.lower_bound)),
            "O((c/mu)^2)".into(),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{}", met.peak_machine_words),
            "Thm 2.4".into(),
        ]));
    }

    // ---- Weighted set cover, (1+eps) ln Delta (Theorem 4.6) ----
    {
        let mu_sc = 0.4;
        let universe = 200usize;
        let sys = setgen::with_uniform_weights(
            setgen::bounded_set_size(1500, universe, 20, SEED),
            1.0,
            10.0,
            SEED,
        );
        let eps = 0.2;
        let params = HungryScParams::new(universe, mu_sc, eps, SEED);
        let cfg = MrConfig::auto(universe, sys.total_size(), mu_sc, SEED);
        let (r, _, met) = mr_hungry_set_cover(&sys, params, cfg).expect("hungry set cover");
        assert!(sys.covers(&r.cover));
        let bound = (1.0 + eps) * harmonic(sys.max_set_size());
        let greedy = greedy_set_cover(&sys).expect("greedy");
        rows.push(Row(vec![
            "Set Cover".into(),
            "Y".into(),
            format!("(1+e)H_D = {bound:.2}"),
            format!("{:.3} (greedy pays {:.3})", min_ratio(r.weight, r.lower_bound), min_ratio(greedy.weight, r.lower_bound)),
            "O(log-ish / mu^2)".into(),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{}", met.peak_machine_words),
            "Thm 4.6".into(),
        ]));
    }

    // ---- Maximal independent set (Theorems 3.3, A.3) ----
    {
        let gu = g.unweighted();
        let cfg = MrConfig::auto(N, m, MU, SEED);
        let p1 = MisParams::mis1(N, MU, SEED);
        let (r1, met1) = mr_mis_simple(&gu, p1, cfg).expect("mis1");
        assert!(verify::is_maximal_independent_set(&gu, &r1.vertices));
        rows.push(Row(vec![
            "Maximal Indep. Set".into(),
            "-".into(),
            "maximal".into(),
            "exact (verified)".into(),
            "O(1/mu^2)".into(),
            format!("{} it / {} rounds", r1.iterations, met1.rounds),
            format!("{}", met1.peak_machine_words),
            "Thm 3.3 (Alg 2)".into(),
        ]));
        let p2 = MisParams::mis2(N, MU, SEED);
        let (r2, met2) = mr_mis_fast(&gu, p2, cfg).expect("mis2");
        assert!(verify::is_maximal_independent_set(&gu, &r2.vertices));
        rows.push(Row(vec![
            "Maximal Indep. Set".into(),
            "-".into(),
            "maximal".into(),
            "exact (verified)".into(),
            "O(c/mu)".into(),
            format!("{} it / {} rounds", r2.iterations, met2.rounds),
            format!("{}", met2.peak_machine_words),
            "Thm A.3 (Alg 6)".into(),
        ]));
        let luby = luby_mis(&gu, SEED);
        assert!(verify::is_maximal_independent_set(&gu, &luby.vertices));
        rows.push(Row(vec![
            "Maximal Indep. Set".into(),
            "-".into(),
            "maximal".into(),
            "exact (verified)".into(),
            "O(log n)".into(),
            format!("{} it", luby.rounds),
            "-".into(),
            "Luby [31] baseline".into(),
        ]));
    }

    // ---- Maximal clique (Corollary B.1) ----
    {
        let dense = mrlr_graph::generators::gnp(120, 0.5, SEED);
        let params = MisParams::mis2(120, 0.4, SEED);
        let cfg = MrConfig::auto(120, dense.m(), 0.4, SEED);
        let (r, met) = mr_maximal_clique(&dense, params, cfg).expect("clique");
        assert!(verify::is_maximal_clique(&dense, &r.vertices));
        rows.push(Row(vec![
            "Maximal Clique".into(),
            "-".into(),
            "maximal".into(),
            format!("exact (|K| = {})", r.vertices.len()),
            "O(1/mu)".into(),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{}", met.peak_machine_words),
            "Cor B.1".into(),
        ]));
    }

    // ---- Weighted matching (Theorem 5.6) + baselines ----
    {
        let cfg = MrConfig::auto(N, m, MU, SEED);
        let (r, met) = mr_matching(&g, cfg).expect("matching");
        assert!(verify::is_matching(&g, &r.matching));
        rows.push(Row(vec![
            "Matching".into(),
            "Y".into(),
            "2".into(),
            format!("{:.3} (certified)", r.certified_ratio(2.0)),
            format!("O(c/mu) = {}", (C / MU).ceil() as usize + 1),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{}", met.peak_machine_words),
            "Thm 5.6".into(),
        ]));
        // Unweighted filtering baseline.
        let gu = g.unweighted();
        let fr = filtering_maximal_matching(&gu, eta, SEED).expect("filtering");
        rows.push(Row(vec![
            "Matching".into(),
            "-".into(),
            "2".into(),
            "maximal (verified)".into(),
            "O(c/mu)".into(),
            format!("{} it", fr.iterations),
            format!("{}", 3 * fr.peak_sample),
            "Filtering [27] baseline".into(),
        ]));
        let (fvc, fvc_it) = filtering_vertex_cover(&gu, eta, SEED).expect("filtering vc");
        assert!(verify::is_vertex_cover(&gu, &fvc));
        rows.push(Row(vec![
            "Vertex Cover".into(),
            "-".into(),
            "2".into(),
            format!("|C| = {}", fvc.len()),
            "O(c/mu)".into(),
            format!("{fvc_it} it"),
            "-".into(),
            "Filtering [27] baseline".into(),
        ]));
        // Weighted head-to-head: local ratio (2) vs layered filtering (8).
        let lw = layered_weighted_matching(&g, eta, SEED).expect("layered");
        let ours = verify::matching_weight(&g, &r.matching);
        let theirs = verify::matching_weight(&g, &lw.matching);
        rows.push(Row(vec![
            "Matching".into(),
            "Y".into(),
            "8".into(),
            format!("{:.3} of ours", theirs / ours),
            "O((c/mu) log W)".into(),
            format!("{} it", lw.iterations),
            format!("{}", 3 * lw.peak_sample),
            "Layered filtering [27] baseline".into(),
        ]));
        // Crouch-Stubbs weight classes (Figure 1 rows [14]/[21]).
        let cs = crouch_stubbs_matching(&g, 0.5, eta, SEED).expect("crouch-stubbs");
        rows.push(Row(vec![
            "Matching".into(),
            "Y".into(),
            "4+e (3.5+e in [21])".into(),
            format!("{:.3} of ours", cs.weight / ours),
            "O(c/mu), classes parallel".into(),
            format!("{} it (max class)", cs.max_iterations),
            format!("{}", 3 * cs.total_peak_sample),
            "Crouch-Stubbs [14] baseline".into(),
        ]));
        // Two-round coreset (Figure 1 row [4] flavour).
        let machines = (nf.sqrt().ceil()) as usize;
        let co = coreset_matching(&g, machines, SEED).expect("coreset");
        rows.push(Row(vec![
            "Matching".into(),
            "Y".into(),
            "O(1)".into(),
            format!("{:.3} of ours", co.weight / ours),
            "2".into(),
            "2 rounds".into(),
            format!("{} union edges central", co.union_size),
            "2-round coreset [4] baseline".into(),
        ]));
    }

    // ---- Weighted b-matching (Theorem D.3) ----
    {
        let b: Vec<u32> = (0..N).map(|v| 1 + (v % 3) as u32).collect();
        let params = BMatchingParams {
            eps: 0.25,
            n_mu: nf.powf(MU),
            eta,
            seed: SEED,
        };
        let mut cfg = MrConfig::auto(N, m, MU, SEED);
        cfg.eta = eta;
        let (r, met) = mr_b_matching(&g, &b, params, cfg).expect("b-matching");
        assert!(verify::is_b_matching(&g, &b, &r.matching));
        let mult = b_matching_multiplier(&b, params.eps);
        rows.push(Row(vec![
            "b-Matching".into(),
            "Y".into(),
            format!("3-2/b+2e = {mult:.2}"),
            format!("{:.3} (certified)", r.certified_ratio(mult)),
            "O(c/mu)".into(),
            format!("{} it / {} rounds", r.iterations, met.rounds),
            format!("{}", met.peak_machine_words),
            "Thm D.3".into(),
        ]));
    }

    // ---- Vertex & edge colouring (Theorems 6.4, 6.6) ----
    {
        let kappa = group_count(N, m, MU);
        let limit = (13.0 * nf.powf(1.0 + MU)).ceil() as usize;
        let cfg = MrConfig::auto(N, m, MU, SEED);
        let (r, met) = mr_vertex_colouring(&g, kappa, Some(limit), cfg).expect("vertex colouring");
        assert!(verify::is_proper_colouring(&g, &r.colours));
        let budget = colour_budget(N, g.max_degree(), MU);
        rows.push(Row(vec![
            "Vertex Colouring".into(),
            "-".into(),
            "(1+o(1))D".into(),
            format!("{} cols, D = {}, budget {:.0}", r.num_colours, g.max_degree(), budget),
            "O(1)".into(),
            format!("{} rounds", met.rounds),
            format!("{}", met.peak_machine_words),
            "Thm 6.4".into(),
        ]));
        let (re, mete) = mr_edge_colouring(&g, kappa, Some(limit), cfg).expect("edge colouring");
        assert!(verify::is_proper_edge_colouring(&g, &re.colours));
        let delta = g.max_degree();
        rows.push(Row(vec![
            "Edge Colouring".into(),
            "-".into(),
            "(1+o(1))D".into(),
            format!("{} cols, D = {}, budget {:.0}", re.num_colours, delta, colour_budget(N, delta, MU)),
            "O(1)".into(),
            format!("{} rounds", mete.rounds),
            format!("{}", mete.peak_machine_words),
            "Thm 6.6".into(),
        ]));
        // Luby-style (Delta+1) colouring baseline (reference [32]).
        let luby = luby_colouring(&g, SEED);
        assert!(verify::is_proper_colouring(&g, &luby.colours));
        rows.push(Row(vec![
            "Vertex Colouring".into(),
            "-".into(),
            "D+1".into(),
            format!("{} cols, D = {delta}", luby.num_colours),
            "O(log n)".into(),
            format!("{} it", luby.rounds),
            "-".into(),
            "Luby [32] baseline".into(),
        ]));
    }

    println!(
        "{}",
        render_table(
            &[
                "Problem",
                "Weighted?",
                "Approx (theory)",
                "Approx (measured)",
                "Rounds (theory)",
                "Rounds (measured)",
                "Peak words/machine",
                "Reference"
            ],
            &rows
        )
    );

    // Small-instance exact cross-check.
    println!("\n## Exact cross-check (n = 14, 50 seeds)\n");
    let mut worst_match = 1.0f64;
    let mut worst_vc = 1.0f64;
    for seed in 0..50u64 {
        let sg = weighted_graph(14, 0.4, seed);
        let (opt, _) = exact::max_weight_matching(&sg);
        let cfg = MrConfig::auto(14, sg.m(), 0.3, seed);
        let (r, _) = mr_matching(&sg, cfg).expect("small matching");
        worst_match = worst_match.max(max_ratio(r.weight, opt));
        let w = vertex_weights(14, seed);
        let (vc_opt, _) = exact::min_weight_vertex_cover(&sg, &w);
        let (rc, _) = mr_vertex_cover(&sg, &w, cfg).expect("small vc");
        worst_vc = worst_vc.max(min_ratio(rc.weight, vc_opt));
    }
    println!("worst matching ratio vs exact OPT: {worst_match:.4} (theory 2.0)");
    println!("worst vertex cover ratio vs exact OPT: {worst_vc:.4} (theory 2.0)");
}
