//! Figure 1, vertex cover rows: our weighted 2-approximation (Theorem 2.4,
//! f = 2 fast path) across the registry driver's backends vs filtering
//! (unweighted).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::filtering_vertex_cover;
use mrlr_bench::{vertex_weights, weighted_graph};
use mrlr_core::api::{Backend, Instance, Registry, VertexWeightedGraph};
use mrlr_core::mr::MrConfig;

fn bench_vertex_cover(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("vertex_cover");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [150usize, 300] {
        let g = weighted_graph(n, 0.5, 7);
        let w = vertex_weights(n, 7);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 7);
        let inst = Instance::VertexWeighted(VertexWeightedGraph::new(g.clone(), w));
        for (label, backend) in [
            ("mr_theorem_2_4", Backend::Mr),
            ("rlr_driver", Backend::Rlr),
            ("seq_local_ratio", Backend::Seq),
        ] {
            let driver = registry.get_backend("vertex-cover", backend).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| driver.solve(&inst, &cfg).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("filtering_baseline", n), &n, |b, _| {
            b.iter(|| filtering_vertex_cover(&g, cfg.eta, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_cover);
criterion_main!(benches);
