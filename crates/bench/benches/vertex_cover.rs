//! Figure 1, vertex cover rows: our weighted 2-approximation (Theorem 2.4,
//! f = 2 fast path) vs sequential local ratio vs filtering (unweighted).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::filtering_vertex_cover;
use mrlr_bench::{vertex_weights, weighted_graph};
use mrlr_core::mr::vertex_cover::mr_vertex_cover;
use mrlr_core::mr::MrConfig;
use mrlr_core::rlr::approx_set_cover_f;
use mrlr_core::seq::local_ratio_set_cover;
use mrlr_setsys::SetSystem;

fn bench_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_cover");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [150usize, 300] {
        let g = weighted_graph(n, 0.5, 7);
        let w = vertex_weights(n, 7);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 7);
        group.bench_with_input(BenchmarkId::new("mr_theorem_2_4", n), &n, |b, _| {
            b.iter(|| mr_vertex_cover(&g, &w, cfg).unwrap())
        });
        let sys = SetSystem::vertex_cover_of(&g, w.clone());
        group.bench_with_input(BenchmarkId::new("rlr_driver", n), &n, |b, _| {
            b.iter(|| approx_set_cover_f(&sys, cfg.eta, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seq_local_ratio", n), &n, |b, _| {
            b.iter(|| local_ratio_set_cover(&sys).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("filtering_baseline", n), &n, |b, _| {
            b.iter(|| filtering_vertex_cover(&g, cfg.eta, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_cover);
criterion_main!(benches);
