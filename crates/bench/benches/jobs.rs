//! Substrate benches for the map → shuffle → reduce layer (§1.3): word-count
//! throughput with and without the combiner optimization, and the underlying
//! exchange primitive. The combiner's benefit is also visible in the metered
//! message volume (asserted by unit tests); this bench adds the wall-clock
//! side of the story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_mapreduce::job::{partition_by_hash, Emitter, MapReduceJob};
use mrlr_mapreduce::{Cluster, ClusterConfig, DetRng};

fn corpus(docs: usize, words_per_doc: usize, vocab: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::new(seed);
    (0..docs)
        .map(|_| {
            (0..words_per_doc)
                .map(|_| format!("w{}", rng.range_usize(vocab)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// The word-count job's concrete `MapReduceJob` instantiation.
type WordCountJob<M, R> = MapReduceJob<String, String, u64, (String, u64), M, R>;

// The mapper/reducer closures are unnameable; the signature is as simple
// as the `MapReduceJob` type family allows.
#[allow(clippy::type_complexity)]
fn word_count_job() -> WordCountJob<
    impl Fn(&String, &mut Emitter<String, u64>) + Sync,
    impl Fn(&String, Vec<u64>) -> Vec<(String, u64)> + Sync,
> {
    MapReduceJob::new(
        |doc: &String, em: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                em.emit(w.to_string(), 1);
            }
        },
        |k: &String, vs: Vec<u64>| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
}

fn bench_wordcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce_jobs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &vocab in &[50usize, 5000] {
        let docs = corpus(200, 50, vocab, 7);
        let inputs = partition_by_hash(docs, 8, 3);
        let cfg = ClusterConfig::new(8, 1_000_000);
        let job = word_count_job();
        group.bench_with_input(
            BenchmarkId::new("wordcount_plain", vocab),
            &vocab,
            |b, _| b.iter(|| job.run(cfg.clone(), inputs.clone()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("wordcount_combiner", vocab),
            &vocab,
            |b, _| {
                b.iter(|| {
                    job.run_with_combiner(cfg.clone(), inputs.clone(), |_, vs: Vec<u64>| {
                        vs.iter().sum::<u64>()
                    })
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_primitive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &machines in &[8usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("all_to_all", machines),
            &machines,
            |b, &m| {
                b.iter(|| {
                    let states: Vec<Vec<u64>> = (0..m).map(|i| vec![i as u64; 64]).collect();
                    let mut cluster =
                        Cluster::new(ClusterConfig::new(m, 1_000_000), states).unwrap();
                    cluster
                        .exchange::<u64, _, _>(
                            |id, s, out| {
                                for dst in 0..m {
                                    out.send(dst, (id + s.len()) as u64);
                                }
                            },
                            |_, s, inbox| {
                                s.push(inbox.len() as u64);
                            },
                        )
                        .unwrap();
                    cluster.rounds()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wordcount, bench_exchange);
criterion_main!(benches);
