//! Appendix B, maximal clique (Corollary B.1): the hungry-greedy clique
//! algorithm on the cluster vs the in-memory driver vs the sequential
//! greedy oracle, across graph densities (the complement-degree structure
//! that makes the problem hard in MapReduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_core::hungry::{maximal_clique, MisParams};
use mrlr_core::mr::clique::mr_maximal_clique;
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::greedy_maximal_clique;
use mrlr_graph::generators;

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_clique");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &(n, p) in &[(100usize, 0.3f64), (150, 0.5), (200, 0.7)] {
        let g = generators::gnp(n, p, 13);
        let params = MisParams::mis2(n, 0.4, 13);
        let cfg = MrConfig::auto(n, g.m().max(1), 0.4, 13);
        let label = format!("n{n}_p{p}");
        group.bench_with_input(BenchmarkId::new("mr_corollary_b1", &label), &n, |b, _| {
            b.iter(|| mr_maximal_clique(&g, params, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hungry_driver", &label), &n, |b, _| {
            b.iter(|| maximal_clique(&g, params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seq_greedy", &label), &n, |b, _| {
            b.iter(|| greedy_maximal_clique(&g))
        });
    }
    group.finish();
}

fn bench_planted(c: &mut Criterion) {
    // Planted-clique family: the structure the Appendix B experiments use.
    let mut group = c.benchmark_group("maximal_clique_planted");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &cliques in &[5usize, 10] {
        let g = generators::planted_cliques(cliques, 12, 0.05, 7);
        let n = g.n();
        let params = MisParams::mis2(n, 0.4, 7);
        group.bench_with_input(BenchmarkId::new("hungry_driver", cliques), &cliques, |b, _| {
            b.iter(|| maximal_clique(&g, params).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique, bench_planted);
criterion_main!(benches);
