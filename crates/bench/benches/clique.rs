//! Appendix B, maximal clique (Corollary B.1): the hungry-greedy clique
//! algorithm on the cluster vs the in-memory driver vs the sequential
//! greedy oracle (the registry driver's three backends), across graph
//! densities (the complement-degree structure that makes the problem hard
//! in MapReduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::hungry::{maximal_clique, MisParams};
use mrlr_core::mr::MrConfig;
use mrlr_graph::generators;

fn bench_clique(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("maximal_clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &(n, p) in &[(100usize, 0.3f64), (150, 0.5), (200, 0.7)] {
        let g = generators::gnp(n, p, 13);
        let cfg = MrConfig::auto(n, g.m().max(1), 0.4, 13);
        let inst = Instance::Graph(g);
        let label = format!("n{n}_p{p}");
        for (name, backend) in [
            ("mr_corollary_b1", Backend::Mr),
            ("hungry_driver", Backend::Rlr),
            ("seq_greedy", Backend::Seq),
        ] {
            let driver = registry.get_backend("clique", backend).unwrap();
            group.bench_with_input(BenchmarkId::new(name, &label), &n, |b, _| {
                b.iter(|| driver.solve(&inst, &cfg).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_planted(c: &mut Criterion) {
    // Planted-clique family: the structure the Appendix B experiments use.
    // Uses the instrumented in-memory entry point directly — the planted
    // parameterization is an ablation, not a registry workload.
    let mut group = c.benchmark_group("maximal_clique_planted");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &cliques in &[5usize, 10] {
        let g = generators::planted_cliques(cliques, 12, 0.05, 7);
        let n = g.n();
        let params = MisParams::mis2(n, 0.4, 7);
        group.bench_with_input(
            BenchmarkId::new("hungry_driver", cliques),
            &cliques,
            |b, _| b.iter(|| maximal_clique(&g, params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clique, bench_planted);
criterion_main!(benches);
