//! Micro-benchmarks of the cluster simulator substrate itself: exchange,
//! gather, broadcast-tree, and the map-shuffle-reduce layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_mapreduce::cluster::{Cluster, ClusterConfig};
use mrlr_mapreduce::job::{partition_round_robin, Emitter, MapReduceJob};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for machines in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("exchange_allpairs", machines),
            &machines,
            |b, &mm| {
                b.iter(|| {
                    let states: Vec<Vec<u64>> = (0..mm).map(|i| vec![i as u64; 64]).collect();
                    let mut cluster =
                        Cluster::new(ClusterConfig::new(mm, 1 << 20), states).unwrap();
                    cluster
                        .exchange::<u64, _, _>(
                            |id, _s, out| {
                                for dst in 0..mm {
                                    out.send(dst, id as u64);
                                }
                            },
                            |_, s, inbox| {
                                s.push(inbox.len() as u64);
                            },
                        )
                        .unwrap();
                    cluster.rounds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("broadcast_tree", machines),
            &machines,
            |b, &mm| {
                b.iter(|| {
                    let states: Vec<Vec<u64>> = (0..mm).map(|_| vec![0u64]).collect();
                    let cfg = ClusterConfig::new(mm, 1 << 20).with_fanout(4);
                    let mut cluster = Cluster::new(cfg, states).unwrap();
                    cluster.broadcast_words(1024).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_word_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_reduce_job");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let docs: Vec<String> = (0..2000)
        .map(|i| format!("word{} word{} word{}", i % 50, i % 7, i % 13))
        .collect();
    group.bench_function("word_count_2000_docs", |b| {
        b.iter(|| {
            let job = MapReduceJob::new(
                |doc: &String, em: &mut Emitter<String, u64>| {
                    for w in doc.split_whitespace() {
                        em.emit(w.to_string(), 1);
                    }
                },
                |k: &String, vs: Vec<u64>| vec![(k.clone(), vs.iter().sum::<u64>())],
            );
            let inputs = partition_round_robin(docs.clone(), 8);
            job.run(ClusterConfig::new(8, 1 << 20), inputs).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_word_count);
criterion_main!(benches);
