//! Figure 1, matching rows: our weighted 2-approximation (Theorem 5.6) vs
//! layered filtering (8-approx, [27]) vs sequential local ratio and greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::{greedy_weighted_matching, layered_weighted_matching};
use mrlr_bench::weighted_graph;
use mrlr_core::mr::matching::mr_matching;
use mrlr_core::mr::MrConfig;
use mrlr_core::rlr::approx_max_matching;
use mrlr_core::seq::local_ratio_matching;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_matching");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [150usize, 300] {
        let g = weighted_graph(n, 0.5, 9);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 9);
        group.bench_with_input(BenchmarkId::new("mr_theorem_5_6", n), &n, |b, _| {
            b.iter(|| mr_matching(&g, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rlr_driver", n), &n, |b, _| {
            b.iter(|| approx_max_matching(&g, cfg.eta, 9).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seq_local_ratio", n), &n, |b, _| {
            b.iter(|| local_ratio_matching(&g))
        });
        group.bench_with_input(BenchmarkId::new("layered_filtering_8approx", n), &n, |b, _| {
            b.iter(|| layered_weighted_matching(&g, cfg.eta, 9).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy_sequential", n), &n, |b, _| {
            b.iter(|| greedy_weighted_matching(&g))
        });
    }
    group.finish();
}

fn bench_mu_zero(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_mu_zero");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.45, 9);
        group.bench_with_input(BenchmarkId::new("appendix_c_eta_n", n), &n, |b, _| {
            b.iter(|| approx_max_matching(&g, n, 9).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_mu_zero);
criterion_main!(benches);
