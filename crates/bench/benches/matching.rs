//! Figure 1, matching rows: our weighted 2-approximation (Theorem 5.6) on
//! all three backends of the registry driver, vs layered filtering
//! (8-approx, [27]) and sequential greedy. Registry dispatch includes the
//! report's independent verification — the full production path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::{greedy_weighted_matching, layered_weighted_matching};
use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;

fn bench_matching(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("weighted_matching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [150usize, 300] {
        let g = weighted_graph(n, 0.5, 9);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 9);
        let inst = Instance::Graph(g.clone());
        for backend in [Backend::Mr, Backend::Rlr, Backend::Seq] {
            let driver = registry.get_backend("matching", backend).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{backend}_driver"), n),
                &n,
                |b, _| b.iter(|| driver.solve(&inst, &cfg).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("layered_filtering_8approx", n),
            &n,
            |b, _| b.iter(|| layered_weighted_matching(&g, cfg.eta, 9).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("greedy_sequential", n), &n, |b, _| {
            b.iter(|| greedy_weighted_matching(&g))
        });
    }
    group.finish();
}

fn bench_mu_zero(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("matching_mu_zero");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.45, 9);
        // µ = 0 gives the Appendix C regime: η = n.
        let cfg = MrConfig::auto(n, g.m(), 0.0, 9);
        let inst = Instance::Graph(g);
        let driver = registry.get_backend("matching", Backend::Rlr).unwrap();
        group.bench_with_input(BenchmarkId::new("appendix_c_eta_n", n), &n, |b, _| {
            b.iter(|| driver.solve(&inst, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_mu_zero);
criterion_main!(benches);
