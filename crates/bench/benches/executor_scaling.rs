//! Executor scaling: the same cluster run under the sequential executor
//! and 2/4/8-thread pools, on the matching and set-cover drivers — as
//! `Backend::Mr` (classic engine: dynamic scheduling + merge routing,
//! the `threads*` rows) and as `Backend::Shard` (sharded runtime: static
//! shard→thread assignment + per-destination batched routing, the
//! `shard*` rows). Outputs and round counts are bit-identical across
//! every row (asserted before timing); what the bench measures is pure
//! wall-clock — the speedup of running machine supersteps concurrently,
//! and what the batched shuffle buys over the global merge.
//!
//! The rounds of each workload are printed alongside so the timing rows
//! can be read against the model-level cost they cover, as is the host's
//! available parallelism: on a single-CPU host the thread rows read flat
//! (concurrency without parallel hardware cannot cut wall-clock — the
//! substrate's rendezvous test proves the overlap structurally); on a
//! multi-core host the threads2/4/8 rows drop below threads1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;
use mrlr_setsys::generators as setgen;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Times `algorithm` on `instance` across thread counts, first asserting
/// the runs are bit-identical so the numbers compare equal work.
fn scale(
    c: &mut Criterion,
    registry: &Registry,
    group_name: &str,
    label: &str,
    algorithm: &str,
    instance: &Instance,
    cfg: &MrConfig,
) {
    let reference = registry
        .solve(algorithm, instance, &cfg.with_threads(1))
        .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
    eprintln!(
        "# executor_scaling/{group_name}/{label}: {} rounds, {} supersteps \
         (identical at every thread count); host parallelism {}",
        reference.rounds(),
        reference.metrics.as_ref().map_or(0, |m| m.supersteps),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let mut group = c.benchmark_group(format!("executor_scaling/{group_name}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in THREADS {
        let cfg = cfg.with_threads(threads);
        let check = registry.solve(algorithm, instance, &cfg).unwrap();
        assert_eq!(check.solution, reference.solution, "threads = {threads}");
        assert_eq!(check.metrics, reference.metrics, "threads = {threads}");
        group.bench_with_input(
            BenchmarkId::new(format!("threads{threads}"), label),
            &threads,
            |b, _| b.iter(|| registry.solve(algorithm, instance, &cfg).unwrap()),
        );
    }
    // The shard-backend rows: same run on the sharded runtime —
    // bit-identical reports, so the delta against `threads{t}` is pure
    // scheduler + routing-plane wall-clock.
    for threads in THREADS {
        let cfg = cfg.with_threads(threads);
        let check = registry
            .solve_with(algorithm, Backend::Shard, instance, &cfg)
            .unwrap();
        assert_eq!(check.solution, reference.solution, "shard x{threads}");
        assert_eq!(check.metrics, reference.metrics, "shard x{threads}");
        group.bench_with_input(
            BenchmarkId::new(format!("shard{threads}"), label),
            &threads,
            |b, _| {
                b.iter(|| {
                    registry
                        .solve_with(algorithm, Backend::Shard, instance, &cfg)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_matching_scaling(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    for n in [1000usize, 4000] {
        let g = weighted_graph(n, 0.5, 9);
        // Small µ = many machines with η-sized work each — the regime
        // where concurrent supersteps pay.
        let cfg = MrConfig::auto(n, g.m(), 0.05, 9);
        let label = format!("n{n}");
        let inst = Instance::Graph(g);
        scale(c, &registry, "matching", &label, "matching", &inst, &cfg);
    }
}

fn bench_set_cover_scaling(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    for n_sets in [2000usize, 6000] {
        let elements = n_sets * 12;
        let sys = setgen::with_uniform_weights(
            setgen::bounded_frequency(n_sets, elements, 4, 9),
            1.0,
            9.0,
            9,
        );
        let cfg = MrConfig::auto(n_sets, elements, 0.05, 9);
        let label = format!("n{n_sets}");
        let inst = Instance::SetSystem(sys);
        scale(
            c,
            &registry,
            "set_cover",
            &label,
            "set-cover-f",
            &inst,
            &cfg,
        );
    }
}

criterion_group!(benches, bench_matching_scaling, bench_set_cover_scaling);
criterion_main!(benches);
