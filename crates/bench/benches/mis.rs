//! Figure 1, MIS and clique rows: Algorithm 2 (`O(1/µ²)`), Algorithm 6
//! (`O(c/µ)`), Luby's `O(log n)` baseline, and the Appendix B clique.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::luby_mis;
use mrlr_bench::weighted_graph;
use mrlr_core::hungry::MisParams;
use mrlr_core::mr::clique::mr_maximal_clique;
use mrlr_core::mr::mis::{mr_mis_fast, mr_mis_simple};
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::greedy_mis;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.4, 5).unweighted();
        let cfg = MrConfig::auto(n, g.m(), 0.3, 5);
        group.bench_with_input(BenchmarkId::new("mr_mis1_alg2", n), &n, |b, _| {
            b.iter(|| mr_mis_simple(&g, MisParams::mis1(n, 0.3, 5), cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mr_mis2_alg6", n), &n, |b, _| {
            b.iter(|| mr_mis_fast(&g, MisParams::mis2(n, 0.3, 5), cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("luby_baseline", n), &n, |b, _| {
            b.iter(|| luby_mis(&g, 5))
        });
        group.bench_with_input(BenchmarkId::new("greedy_sequential", n), &n, |b, _| {
            b.iter(|| greedy_mis(&g))
        });
    }
    group.finish();
}

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_clique");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 150usize;
    let g = mrlr_graph::generators::gnp(n, 0.6, 5);
    let cfg = MrConfig::auto(n, g.m(), 0.3, 5);
    group.bench_function("mr_appendix_b", |b| {
        b.iter(|| mr_maximal_clique(&g, MisParams::mis2(n, 0.3, 5), cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mis, bench_clique);
criterion_main!(benches);
