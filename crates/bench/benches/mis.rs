//! Figure 1, MIS and clique rows: Algorithm 2 (`O(1/µ²)`), Algorithm 6
//! (`O(c/µ)`), Luby's `O(log n)` baseline, and the sequential greedy
//! backend — the paper's algorithms dispatched through the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::luby_mis;
use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;

fn bench_mis(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("mis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.4, 5).unweighted();
        let cfg = MrConfig::auto(n, g.m(), 0.3, 5);
        let inst = Instance::Graph(g.clone());
        let mis1 = registry.get_backend("mis1", Backend::Mr).unwrap();
        group.bench_with_input(BenchmarkId::new("mr_mis1_alg2", n), &n, |b, _| {
            b.iter(|| mis1.solve(&inst, &cfg).unwrap())
        });
        let mis2 = registry.get_backend("mis2", Backend::Mr).unwrap();
        group.bench_with_input(BenchmarkId::new("mr_mis2_alg6", n), &n, |b, _| {
            b.iter(|| mis2.solve(&inst, &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("luby_baseline", n), &n, |b, _| {
            b.iter(|| luby_mis(&g, 5))
        });
        let seq = registry.get_backend("mis1", Backend::Seq).unwrap();
        group.bench_with_input(BenchmarkId::new("greedy_sequential", n), &n, |b, _| {
            b.iter(|| seq.solve(&inst, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_clique(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("maximal_clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 150usize;
    let g = mrlr_graph::generators::gnp(n, 0.6, 5);
    let cfg = MrConfig::auto(n, g.m(), 0.3, 5);
    let inst = Instance::Graph(g);
    let driver = registry.get_backend("clique", Backend::Mr).unwrap();
    group.bench_function("mr_appendix_b", |b| {
        b.iter(|| driver.solve(&inst, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mis, bench_clique);
criterion_main!(benches);
