//! Figure 1 / Appendix D: b-matching (Theorem D.3) across the registry
//! driver's three backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_bench::weighted_graph;
use mrlr_core::api::{BMatchingInstance, Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;

fn bench_bmatching(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("b_matching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for b_cap in [2u32, 4] {
        let n = 200usize;
        let g = weighted_graph(n, 0.5, 3);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 3);
        let inst = Instance::BMatching(BMatchingInstance::new(g, vec![b_cap; n], 0.25));
        for (label, backend) in [
            ("mr_theorem_d3", Backend::Mr),
            ("rlr_driver", Backend::Rlr),
            ("seq_eps_adjusted", Backend::Seq),
        ] {
            let driver = registry.get_backend("b-matching", backend).unwrap();
            group.bench_with_input(BenchmarkId::new(label, b_cap), &b_cap, |bch, _| {
                bch.iter(|| driver.solve(&inst, &cfg).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bmatching);
criterion_main!(benches);
