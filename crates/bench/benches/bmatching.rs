//! Figure 1 / Appendix D: b-matching (Theorem D.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_bench::weighted_graph;
use mrlr_core::mr::bmatching::mr_b_matching;
use mrlr_core::mr::MrConfig;
use mrlr_core::rlr::{approx_b_matching, BMatchingParams};
use mrlr_core::seq::local_ratio_b_matching;

fn bench_bmatching(c: &mut Criterion) {
    let mut group = c.benchmark_group("b_matching");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for b_cap in [2u32, 4] {
        let n = 200usize;
        let g = weighted_graph(n, 0.5, 3);
        let b = vec![b_cap; n];
        let params = BMatchingParams {
            eps: 0.25,
            n_mu: (n as f64).powf(0.25),
            eta: (n as f64).powf(1.25).ceil() as usize,
            seed: 3,
        };
        let mut cfg = MrConfig::auto(n, g.m(), 0.25, 3);
        cfg.eta = params.eta;
        group.bench_with_input(BenchmarkId::new("mr_theorem_d3", b_cap), &b_cap, |bch, _| {
            bch.iter(|| mr_b_matching(&g, &b, params, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rlr_driver", b_cap), &b_cap, |bch, _| {
            bch.iter(|| approx_b_matching(&g, &b, params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seq_eps_adjusted", b_cap), &b_cap, |bch, _| {
            bch.iter(|| local_ratio_b_matching(&g, &b, 0.25))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bmatching);
criterion_main!(benches);
