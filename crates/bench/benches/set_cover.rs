//! Figure 1, set cover rows: the f-approximation (Theorem 2.4) and the
//! (1+ε)·ln Δ hungry-greedy (Theorem 4.6) vs Chvátal's sequential greedy —
//! each as a backend of its registry driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;
use mrlr_setsys::generators as setgen;

fn bench_set_cover_f(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("set_cover_f");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let driver = registry.get_backend("set-cover-f", Backend::Mr).unwrap();
    for f in [2usize, 4] {
        let n = 200usize;
        let m = 3000usize;
        let sys = setgen::with_uniform_weights(setgen::bounded_frequency(n, m, f, 5), 1.0, 10.0, 5);
        let cfg = MrConfig::auto(n, m, 0.25, 5);
        let inst = Instance::SetSystem(sys);
        group.bench_with_input(BenchmarkId::new("mr_theorem_2_4", f), &f, |b, _| {
            b.iter(|| driver.solve(&inst, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_set_cover_greedy(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("set_cover_ln_delta");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let m = 200usize;
    let sys = setgen::with_uniform_weights(setgen::bounded_set_size(1200, m, 16, 5), 1.0, 10.0, 5);
    let cfg = MrConfig::auto(m, sys.total_size(), 0.4, 5);
    let inst = Instance::SetSystem(sys);
    for (label, backend) in [
        ("mr_theorem_4_6", Backend::Mr),
        ("hungry_driver", Backend::Rlr),
        ("chvatal_greedy_baseline", Backend::Seq),
    ] {
        let driver = registry.get_backend("set-cover-greedy", backend).unwrap();
        group.bench_function(label, |b| b.iter(|| driver.solve(&inst, &cfg).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_set_cover_f, bench_set_cover_greedy);
criterion_main!(benches);
