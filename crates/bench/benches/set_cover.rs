//! Figure 1, set cover rows: the f-approximation (Theorem 2.4) and the
//! (1+ε)·ln Δ hungry-greedy (Theorem 4.6) vs Chvátal's sequential greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_core::hungry::{hungry_set_cover, HungryScParams};
use mrlr_core::mr::set_cover::mr_set_cover_f;
use mrlr_core::mr::set_cover_greedy::mr_hungry_set_cover;
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::greedy_set_cover;
use mrlr_setsys::generators as setgen;

fn bench_set_cover_f(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_cover_f");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for f in [2usize, 4] {
        let n = 200usize;
        let m = 3000usize;
        let sys =
            setgen::with_uniform_weights(setgen::bounded_frequency(n, m, f, 5), 1.0, 10.0, 5);
        let cfg = MrConfig::auto(n, m, 0.25, 5);
        group.bench_with_input(BenchmarkId::new("mr_theorem_2_4", f), &f, |b, _| {
            b.iter(|| mr_set_cover_f(&sys, cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_set_cover_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_cover_ln_delta");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let m = 200usize;
    let sys = setgen::with_uniform_weights(setgen::bounded_set_size(1200, m, 16, 5), 1.0, 10.0, 5);
    let params = HungryScParams::new(m, 0.4, 0.2, 5);
    let cfg = MrConfig::auto(m, sys.total_size(), 0.4, 5);
    group.bench_function("mr_theorem_4_6", |b| {
        b.iter(|| mr_hungry_set_cover(&sys, params, cfg).unwrap())
    });
    group.bench_function("hungry_driver", |b| {
        b.iter(|| hungry_set_cover(&sys, params).unwrap())
    });
    group.bench_function("chvatal_greedy_baseline", |b| {
        b.iter(|| greedy_set_cover(&sys).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_set_cover_f, bench_set_cover_greedy);
criterion_main!(benches);
