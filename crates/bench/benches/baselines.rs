//! Baseline shoot-out (the comparison rows of Figure 1): our randomized
//! local ratio matching vs filtering [27], layered filtering [27],
//! Crouch–Stubbs [14], and the 2-round coreset [4], on the same
//! weight-spread workload; plus the substrate partitioner throughput that
//! all of them share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_baselines::{
    coreset_matching, crouch_stubbs_matching, filtering_maximal_matching, layered_weighted_matching,
};
use mrlr_core::rlr::approx_max_matching;
use mrlr_graph::generators;
use mrlr_mapreduce::partition::{split, BlockPartitioner, HashPartitioner};

fn spread_graph(n: usize, seed: u64) -> mrlr_graph::Graph {
    generators::with_log_uniform_weights(&generators::densified(n, 0.5, seed), 0.5, 256.0, seed + 1)
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [150usize, 300] {
        let g = spread_graph(n, 21);
        let eta = (n as f64).powf(1.25).ceil() as usize;
        group.bench_with_input(BenchmarkId::new("ours_thm_5_6", n), &n, |b, _| {
            b.iter(|| approx_max_matching(&g, eta, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("filtering_unweighted", n), &n, |b, _| {
            b.iter(|| filtering_maximal_matching(&g, eta, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("layered_8approx", n), &n, |b, _| {
            b.iter(|| layered_weighted_matching(&g, eta, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("crouch_stubbs_4eps", n), &n, |b, _| {
            b.iter(|| crouch_stubbs_matching(&g, 0.5, eta, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("coreset_2round", n), &n, |b, _| {
            b.iter(|| coreset_matching(&g, (n as f64).sqrt() as usize, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let items: Vec<u64> = (0..100_000u64).collect();
    for machines in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("hash", machines), &machines, |b, &m| {
            let p = HashPartitioner::new(7, m);
            b.iter(|| split(items.clone(), |&x| x, &p))
        });
        group.bench_with_input(BenchmarkId::new("block", machines), &machines, |b, &m| {
            let p = BlockPartitioner::new(items.len() as u64, m);
            b.iter(|| split(items.clone(), |&x| x, &p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines, bench_partitioners);
criterion_main!(benches);
