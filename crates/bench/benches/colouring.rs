//! Figure 1, colouring rows: Algorithm 5 vertex colouring and the
//! Misra–Gries-based edge colouring (Theorems 6.4/6.6) vs their sequential
//! backends — all through the registry drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_bench::weighted_graph;
use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::mr::MrConfig;

fn bench_colouring(c: &mut Criterion) {
    let registry = Registry::with_defaults();
    let mut group = c.benchmark_group("colouring");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.5, 11);
        let cfg = MrConfig::auto(n, g.m(), 0.25, 11);
        let inst = Instance::Graph(g);
        for (label, key, backend) in [
            ("mr_vertex_alg5", "vertex-colouring", Backend::Mr),
            ("mr_edge_rem65", "edge-colouring", Backend::Mr),
            ("greedy_vertex_seq", "vertex-colouring", Backend::Seq),
            ("misra_gries_seq", "edge-colouring", Backend::Seq),
        ] {
            let driver = registry.get_backend(key, backend).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| driver.solve(&inst, &cfg).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_colouring);
criterion_main!(benches);
