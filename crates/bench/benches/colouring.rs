//! Figure 1, colouring rows: Algorithm 5 vertex colouring and the
//! Misra–Gries-based edge colouring (Theorems 6.4/6.6) vs sequential
//! greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use mrlr_bench::weighted_graph;
use mrlr_core::colouring::group_count;
use mrlr_core::mr::colouring::{mr_edge_colouring, mr_vertex_colouring};
use mrlr_core::mr::MrConfig;
use mrlr_core::seq::{greedy_colouring, misra_gries_edge_colouring};

fn bench_colouring(c: &mut Criterion) {
    let mut group = c.benchmark_group("colouring");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let g = weighted_graph(n, 0.5, 11);
        let mu = 0.25;
        let kappa = group_count(n, g.m(), mu);
        let cfg = MrConfig::auto(n, g.m(), mu, 11);
        group.bench_with_input(BenchmarkId::new("mr_vertex_alg5", n), &n, |b, _| {
            b.iter(|| mr_vertex_colouring(&g, kappa, None, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mr_edge_rem65", n), &n, |b, _| {
            b.iter(|| mr_edge_colouring(&g, kappa, None, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy_vertex_seq", n), &n, |b, _| {
            b.iter(|| greedy_colouring(&g))
        });
        group.bench_with_input(BenchmarkId::new("misra_gries_seq", n), &n, |b, _| {
            b.iter(|| misra_gries_edge_colouring(&g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_colouring);
criterion_main!(benches);
