//! Solution validators.
//!
//! Every algorithm's output can be checked independently of how it was
//! produced; the test suite and the experiment harness route all results
//! through these functions.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_setsys::{SetId, SetSystem};

/// True if `chosen` covers the universe of `sys`.
pub fn is_cover(sys: &SetSystem, chosen: &[SetId]) -> bool {
    sys.covers(chosen)
}

/// True if `edges` is a matching in `g` (distinct edges, disjoint
/// endpoints).
pub fn is_matching(g: &Graph, edges: &[EdgeId]) -> bool {
    let mut used = vec![false; g.n()];
    let mut seen = vec![false; g.m()];
    for &id in edges {
        if (id as usize) >= g.m() || seen[id as usize] {
            return false;
        }
        seen[id as usize] = true;
        let e = g.edge(id);
        if used[e.u as usize] || used[e.v as usize] {
            return false;
        }
        used[e.u as usize] = true;
        used[e.v as usize] = true;
    }
    true
}

/// Total weight of a set of edge ids.
pub fn matching_weight(g: &Graph, edges: &[EdgeId]) -> f64 {
    edges.iter().map(|&e| g.edge(e).w).sum()
}

/// True if `edges` is a b-matching: distinct edges with every vertex `v` in
/// at most `b[v]` of them.
pub fn is_b_matching(g: &Graph, b: &[u32], edges: &[EdgeId]) -> bool {
    assert_eq!(b.len(), g.n());
    let mut load = vec![0u32; g.n()];
    let mut seen = vec![false; g.m()];
    for &id in edges {
        if (id as usize) >= g.m() || seen[id as usize] {
            return false;
        }
        seen[id as usize] = true;
        let e = g.edge(id);
        load[e.u as usize] += 1;
        load[e.v as usize] += 1;
    }
    load.iter().zip(b).all(|(l, cap)| l <= cap)
}

/// True if `vs` is an independent set in `g`.
pub fn is_independent_set(g: &Graph, vs: &[VertexId]) -> bool {
    let mut chosen = vec![false; g.n()];
    for &v in vs {
        if (v as usize) >= g.n() || chosen[v as usize] {
            return false;
        }
        chosen[v as usize] = true;
    }
    g.edges()
        .iter()
        .all(|e| !(chosen[e.u as usize] && chosen[e.v as usize]))
}

/// True if `vs` is a *maximal* independent set: independent, and every
/// non-member has a neighbour in the set.
pub fn is_maximal_independent_set(g: &Graph, vs: &[VertexId]) -> bool {
    if !is_independent_set(g, vs) {
        return false;
    }
    let mut chosen = vec![false; g.n()];
    for &v in vs {
        chosen[v as usize] = true;
    }
    let adj = g.neighbours();
    (0..g.n()).all(|v| chosen[v] || adj[v].iter().any(|&w| chosen[w as usize]))
}

/// True if `vs` is a clique in `g`.
pub fn is_clique(g: &Graph, vs: &[VertexId]) -> bool {
    let mut chosen = vec![false; g.n()];
    for &v in vs {
        if (v as usize) >= g.n() || chosen[v as usize] {
            return false;
        }
        chosen[v as usize] = true;
    }
    let adj = g.neighbours();
    for &v in vs {
        let mut adjacent = 0usize;
        for &w in &adj[v as usize] {
            if chosen[w as usize] {
                adjacent += 1;
            }
        }
        if adjacent + 1 < vs.len() {
            return false;
        }
    }
    true
}

/// True if `vs` is a *maximal* clique: a clique no vertex can extend.
pub fn is_maximal_clique(g: &Graph, vs: &[VertexId]) -> bool {
    if vs.is_empty() {
        // The empty clique is maximal only in the empty graph.
        return g.n() == 0;
    }
    if !is_clique(g, vs) {
        return false;
    }
    let mut chosen = vec![false; g.n()];
    for &v in vs {
        chosen[v as usize] = true;
    }
    let adj = g.neighbours();
    // v extends the clique iff it is adjacent to every member.
    for v in 0..g.n() {
        if chosen[v] {
            continue;
        }
        let count = adj[v].iter().filter(|&&w| chosen[w as usize]).count();
        if count == vs.len() {
            return false;
        }
    }
    true
}

/// True if `colours` (one per vertex) is a proper vertex colouring.
pub fn is_proper_colouring(g: &Graph, colours: &[u32]) -> bool {
    colours.len() == g.n()
        && g.edges()
            .iter()
            .all(|e| colours[e.u as usize] != colours[e.v as usize])
}

/// True if `colours` (one per edge) is a proper edge colouring: edges
/// sharing an endpoint get distinct colours.
pub fn is_proper_edge_colouring(g: &Graph, colours: &[u32]) -> bool {
    if colours.len() != g.m() {
        return false;
    }
    let adj = g.adjacency();
    for nbrs in adj {
        let mut cs: Vec<u32> = nbrs.iter().map(|&(_, e)| colours[e as usize]).collect();
        cs.sort_unstable();
        if cs.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
    }
    true
}

/// True if `chosen` vertices form a vertex cover of `g`.
pub fn is_vertex_cover(g: &Graph, chosen: &[VertexId]) -> bool {
    let mut picked = vec![false; g.n()];
    for &v in chosen {
        if (v as usize) >= g.n() {
            return false;
        }
        picked[v as usize] = true;
    }
    g.edges()
        .iter()
        .all(|e| picked[e.u as usize] || picked[e.v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_graph::generators::{complete, path, star};

    #[test]
    fn matching_checks() {
        let g = path(4); // edges 0:(0,1) 1:(1,2) 2:(2,3)
        assert!(is_matching(&g, &[0, 2]));
        assert!(!is_matching(&g, &[0, 1]));
        assert!(!is_matching(&g, &[0, 0]));
        assert!(!is_matching(&g, &[9]));
        assert!((matching_weight(&g, &[0, 2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn b_matching_checks() {
        let g = star(4);
        assert!(is_b_matching(&g, &[2, 1, 1, 1], &[0, 1]));
        assert!(!is_b_matching(&g, &[1, 1, 1, 1], &[0, 1]));
        assert!(!is_b_matching(&g, &[3, 1, 1, 1], &[0, 0]));
    }

    #[test]
    fn independence_checks() {
        let g = path(4);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_maximal_independent_set(&g, &[0, 2]));
        // {0,3} is maximal on the path 0-1-2-3: both 1 and 2 have a chosen
        // neighbour. {0} alone is not (3 has no chosen neighbour).
        assert!(is_maximal_independent_set(&g, &[0, 3]));
        assert!(!is_maximal_independent_set(&g, &[0]));
        assert!(is_maximal_independent_set(&g, &[1, 3]));
        assert!(!is_independent_set(&g, &[0, 0]));
    }

    #[test]
    fn clique_checks() {
        let g = complete(4);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_maximal_clique(&g, &[0, 1, 2]));
        assert!(is_maximal_clique(&g, &[0, 1, 2, 3]));
        let p = path(3);
        assert!(is_clique(&p, &[0, 1]));
        assert!(is_maximal_clique(&p, &[0, 1]));
        assert!(!is_clique(&p, &[0, 2]));
        assert!(!is_maximal_clique(&p, &[]));
        assert!(is_maximal_clique(&Graph::new(0, vec![]), &[]));
    }

    #[test]
    fn colouring_checks() {
        let g = path(3);
        assert!(is_proper_colouring(&g, &[0, 1, 0]));
        assert!(!is_proper_colouring(&g, &[0, 0, 1]));
        assert!(!is_proper_colouring(&g, &[0, 1]));
        // Edge colouring on a star: all edges share the centre.
        let s = star(4);
        assert!(is_proper_edge_colouring(&s, &[0, 1, 2]));
        assert!(!is_proper_edge_colouring(&s, &[0, 0, 1]));
    }

    #[test]
    fn vertex_cover_checks() {
        let g = path(4);
        assert!(is_vertex_cover(&g, &[1, 2]));
        assert!(!is_vertex_cover(&g, &[0, 3]));
        assert!(is_vertex_cover(&g, &[0, 1, 2, 3]));
    }
}
