//! Re-checkable certificate payloads: the typed [`Witness`] carried by
//! every [`Certificate`], and the audit machinery
//! that re-verifies a stored [`Report`](super::Report) against its
//! instance **without re-running the solver**.
//!
//! Every approximation guarantee in the paper flows through a witness
//! object:
//!
//! * **Cover duals** (Theorems 2.3/2.4, 4.5/4.6) — a vector `y` with
//!   `y_j ≥ 0` and `Σ_{j ∈ S_i} y_j ≤ w_i` for every set `S_i`. Weak LP
//!   duality gives `Σ_j y_j ≤ OPT`, so `w(C) / Σ y_j` upper-bounds the
//!   true approximation ratio. Local-ratio runs emit the reductions
//!   `ε_j`; greedy runs emit the fitted prices `price_j / ((1+ε) H_Δ)`.
//! * **Local-ratio stacks** (Theorems 5.1/5.6, D.1/D.3) — the push-order
//!   transcript `(e, m_e)`. Replaying it reproduces the potentials `ϕ`
//!   *bit-for-bit* (the recorded `m_e` are the exact summands), so the
//!   checker can confirm each push was honest (`m_e = w_e − ϕ(u) − ϕ(v)`
//!   at push time), that the pass was exhaustive (every edge dead at the
//!   end — the premise of `OPT ≤ multiplier · Σ m_e`), and that unwinding
//!   yields exactly the claimed matching.
//! * **Maximality witnesses** (Theorems 3.3/A.3, Corollary B.1) — for
//!   every non-member `v`, a member that *blocks* it: a chosen neighbour
//!   (MIS) or a chosen non-neighbour (clique). Together with
//!   independence/cliqueness of the selection this is the whole
//!   structural guarantee.
//! * **Properness witnesses** (Theorems 6.4/6.6) — the per-colour class
//!   sizes and the degree bound `Δ`, pinned against a recount.
//!
//! [`audit`] dispatches on the registry key and runs every check for the
//! report's family; the `mrlr verify` command is a thin CLI wrapper over
//! it (parsing via [`crate::io::certificate`]).

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_setsys::{ElemId, SetSystem};

use super::problems::BMatchingInstance;
use super::{Certificate, Instance, Solution};
use crate::types::{ColouringResult, CoverResult, MatchingResult, SelectionResult, POS_TOL};

/// Absolute + relative tolerance for float comparisons during an audit.
/// Witness floats round-trip bit-exactly through JSON, so replays are
/// bitwise-faithful; the tolerance only absorbs the non-associativity of
/// recomputed *aggregates* (weights, dual sums) versus stored scalars.
pub const AUDIT_TOL: f64 = 1e-6;

/// `a ≈ b` under [`AUDIT_TOL`] (absolute for small values, relative for
/// large ones).
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= AUDIT_TOL * a.abs().max(b.abs()).max(1.0)
}

/// A failed audit check: where it failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Dotted path of the failing artifact, e.g. `witness.dual[3]` or
    /// `solution.matching`.
    pub location: String,
    /// What went wrong.
    pub message: String,
}

impl AuditError {
    /// A failed check at `location` (a dotted path into the report or its
    /// sidecar transcript).
    pub fn new(location: impl Into<String>, message: impl Into<String>) -> Self {
        AuditError {
            location: location.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

impl std::error::Error for AuditError {}

type AuditResult<T = ()> = Result<T, AuditError>;

/// The typed, re-checkable payload of a [`Certificate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Witness {
    /// A feasible LP dual `(j, y_j)`, ascending by element id; the cover
    /// family (`set-cover-f`, `set-cover-greedy`, `vertex-cover`).
    CoverDual {
        /// `(element, y_j)` with `Σ y_j =` the claimed lower bound.
        dual: Vec<(ElemId, f64)>,
    },
    /// The local-ratio stack transcript in push order; `matching` and
    /// `b-matching`.
    Stack {
        /// `(edge, m_e)` pushes, oldest first.
        stack: Vec<(EdgeId, f64)>,
    },
    /// Per-non-member blockers; `mis1`, `mis2`, `clique`.
    Maximality {
        /// `(non-member, blocking member)`, ascending by non-member.
        blockers: Vec<(VertexId, VertexId)>,
    },
    /// Colour-class sizes against the degree bound; the colourings.
    Properness {
        /// The instance's maximum degree `Δ`.
        max_degree: usize,
        /// `colour_counts[c]` = entities coloured `c`; length is the
        /// number of colours used.
        colour_counts: Vec<usize>,
    },
    /// A hashed commitment to a stack or cover-dual transcript that lives
    /// in a sidecar file: the report stays `O(1)` words while the full
    /// transcript remains auditable chunk by chunk (see
    /// [`super::commit`]). Produced by `mrlr solve --certificates
    /// committed`; audited by [`super::commit::audit_committed`].
    Committed {
        /// Kind tag of the committed transcript (`"stack"` or
        /// `"cover-dual"`).
        of: String,
        /// Total entry count of the transcript.
        entries: usize,
        /// Entries per chunk (the last chunk may be shorter).
        chunk_len: usize,
        /// The shape-bound Merkle root.
        root: super::commit::Digest,
    },
}

impl Witness {
    /// Short kind tag used by the JSON encoding and display.
    pub fn kind(&self) -> &'static str {
        match self {
            Witness::CoverDual { .. } => "cover-dual",
            Witness::Stack { .. } => "stack",
            Witness::Maximality { .. } => "maximality",
            Witness::Properness { .. } => "properness",
            Witness::Committed { .. } => "committed",
        }
    }
}

// ---------------------------------------------------------------- builders

/// The MIS maximality witness: for each vertex outside `vertices`, its
/// smallest neighbour inside (ascending by vertex). Vertices with no
/// chosen neighbour are omitted — [`check_mis_maximality`] then rejects
/// the witness, which is exactly right for a non-maximal selection.
pub fn mis_blockers(g: &Graph, vertices: &[VertexId]) -> Vec<(VertexId, VertexId)> {
    let mut chosen = vec![false; g.n()];
    for &v in vertices {
        if (v as usize) < g.n() {
            chosen[v as usize] = true;
        }
    }
    let adj = g.neighbours();
    let mut blockers = Vec::new();
    for v in 0..g.n() {
        if chosen[v] {
            continue;
        }
        if let Some(&w) = adj[v].iter().filter(|&&w| chosen[w as usize]).min() {
            blockers.push((v as VertexId, w));
        }
    }
    blockers
}

/// The clique maximality witness: for each vertex outside `vertices`, the
/// smallest member it is *not* adjacent to (the obstruction to extending
/// the clique), ascending by vertex. Vertices adjacent to every member
/// are omitted (non-maximal run — rejected by [`check_clique_maximality`]).
pub fn clique_blockers(g: &Graph, vertices: &[VertexId]) -> Vec<(VertexId, VertexId)> {
    let mut chosen = vec![false; g.n()];
    for &v in vertices {
        if (v as usize) < g.n() {
            chosen[v as usize] = true;
        }
    }
    let adj = g.neighbours();
    let members: Vec<usize> = (0..g.n()).filter(|&v| chosen[v]).collect();
    let mut blockers = Vec::new();
    // One marker buffer, cleared per vertex by un-marking only the
    // entries just set — keeps the scan O(n + m + |S|·n̄) instead of
    // allocating an n-sized vector per non-member.
    let mut adjacent = vec![false; g.n()];
    for v in 0..g.n() {
        if chosen[v] {
            continue;
        }
        for &w in &adj[v] {
            adjacent[w as usize] = true;
        }
        if let Some(&w) = members.iter().find(|&&w| !adjacent[w]) {
            blockers.push((v as VertexId, w as VertexId));
        }
        for &w in &adj[v] {
            adjacent[w as usize] = false;
        }
    }
    blockers
}

/// The properness witness of a colouring: colour-class sizes (length
/// `num_colours`; out-of-range colours are ignored here and rejected by
/// [`check_properness`]) plus the instance's `Δ`.
pub fn colour_counts(colours: &[u32], num_colours: usize) -> Vec<usize> {
    let mut counts = vec![0usize; num_colours];
    for &c in colours {
        if (c as usize) < num_colours {
            counts[c as usize] += 1;
        }
    }
    counts
}

// ------------------------------------------------------------------ checks

/// Checks that `dual` is a feasible LP dual of `sys` summing to
/// `claimed_lower_bound`: element ids strictly ascending and in range,
/// values positive and finite, per-set loads `Σ_{j ∈ S_i} y_j ≤ w_i`,
/// total `Σ y_j ≈ claimed_lower_bound`.
pub fn check_cover_dual(
    sys: &SetSystem,
    dual: &[(ElemId, f64)],
    claimed_lower_bound: f64,
) -> AuditResult {
    let mut y = vec![0.0f64; sys.universe()];
    let mut last: Option<ElemId> = None;
    let mut total = 0.0f64;
    for (pos, &(j, v)) in dual.iter().enumerate() {
        let loc = || format!("witness.dual[{pos}]");
        if (j as usize) >= sys.universe() {
            return Err(AuditError::new(
                loc(),
                format!("element {j} outside universe of {}", sys.universe()),
            ));
        }
        if last.is_some_and(|prev| prev >= j) {
            return Err(AuditError::new(
                loc(),
                format!("element ids must be strictly ascending (saw {j} after {last:?})"),
            ));
        }
        if !(v.is_finite() && v > 0.0) {
            return Err(AuditError::new(
                loc(),
                format!("dual value {v} not in (0, ∞)"),
            ));
        }
        last = Some(j);
        y[j as usize] = v;
        total += v;
    }
    for i in 0..sys.n_sets() {
        let load: f64 = sys.set(i as u32).iter().map(|&j| y[j as usize]).sum();
        let w = sys.weight(i as u32);
        if load > w + AUDIT_TOL * w.abs().max(1.0) {
            return Err(AuditError::new(
                "witness.dual",
                format!("dual infeasible at set {i}: load {load} exceeds weight {w}"),
            ));
        }
    }
    if !approx_eq(total, claimed_lower_bound) {
        return Err(AuditError::new(
            "witness.dual",
            format!("dual sums to {total}, report claims lower bound {claimed_lower_bound}"),
        ));
    }
    Ok(())
}

/// Outcome of replaying a local-ratio stack: what the transcript alone
/// implies, for comparison against the claimed solution.
#[derive(Debug, Clone, PartialEq)]
pub struct StackReplay {
    /// The matching obtained by unwinding the stack (ascending ids).
    pub matching: Vec<EdgeId>,
    /// The gain `Σ m_e` of the transcript.
    pub gain: f64,
}

fn check_push(
    g: &Graph,
    pos: usize,
    e: EdgeId,
    m: f64,
    phi: &[f64],
    seen: &mut [bool],
) -> AuditResult<(VertexId, VertexId)> {
    let loc = || format!("witness.stack[{pos}]");
    if (e as usize) >= g.m() {
        return Err(AuditError::new(
            loc(),
            format!("edge {e} outside instance of {} edges", g.m()),
        ));
    }
    if seen[e as usize] {
        return Err(AuditError::new(loc(), format!("edge {e} pushed twice")));
    }
    seen[e as usize] = true;
    if !(m.is_finite() && m > 0.0) {
        return Err(AuditError::new(
            loc(),
            format!("reduction {m} not in (0, ∞)"),
        ));
    }
    let edge = g.edge(e);
    let modified = edge.w - phi[edge.u as usize] - phi[edge.v as usize];
    if !approx_eq(m, modified) {
        return Err(AuditError::new(
            loc(),
            format!(
                "recorded reduction {m} != modified weight {modified} of edge {e} at push time"
            ),
        ));
    }
    Ok((edge.u, edge.v))
}

/// Replays a matching stack transcript (Theorem 5.1's certificate):
/// confirms every push was honest against the replayed potentials, that
/// the pass was exhaustive (every edge of `g` is dead at the end, the
/// premise of `OPT ≤ 2 Σ m_e`), and returns the unwound matching + gain.
pub fn replay_matching_stack(g: &Graph, stack: &[(EdgeId, f64)]) -> AuditResult<StackReplay> {
    let mut phi = vec![0.0f64; g.n()];
    let mut seen = vec![false; g.m()];
    let mut gain = 0.0f64;
    for (pos, &(e, m)) in stack.iter().enumerate() {
        let (u, v) = check_push(g, pos, e, m, &phi, &mut seen)?;
        phi[u as usize] += m;
        phi[v as usize] += m;
        gain += m;
    }
    for (idx, edge) in g.edges().iter().enumerate() {
        let modified = edge.w - phi[edge.u as usize] - phi[edge.v as usize];
        if modified > POS_TOL + AUDIT_TOL {
            return Err(AuditError::new(
                "witness.stack",
                format!("edge {idx} still alive after the transcript (modified {modified} > 0)"),
            ));
        }
    }
    // Greedy unwind, newest push first (the algorithm's rule).
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    for &(e, _) in stack.iter().rev() {
        let edge = g.edge(e);
        if !used[edge.u as usize] && !used[edge.v as usize] {
            used[edge.u as usize] = true;
            used[edge.v as usize] = true;
            matching.push(e);
        }
    }
    matching.sort_unstable();
    Ok(StackReplay { matching, gain })
}

/// Replays a b-matching stack transcript (Theorem D.1's ε-adjusted
/// certificate): pushes reduce `ϕ` by `m_e / b(v)` per endpoint, the
/// exhaustion condition is `w_e ≤ (1+ε)(ϕ(u)+ϕ(v))`, and the unwind
/// respects the capacities.
pub fn replay_b_matching_stack(
    g: &Graph,
    b: &[u32],
    eps: f64,
    stack: &[(EdgeId, f64)],
) -> AuditResult<StackReplay> {
    if b.len() != g.n() {
        return Err(AuditError::new(
            "instance.b",
            format!("{} capacities for {} vertices", b.len(), g.n()),
        ));
    }
    let mut phi = vec![0.0f64; g.n()];
    let mut seen = vec![false; g.m()];
    let mut gain = 0.0f64;
    for (pos, &(e, m)) in stack.iter().enumerate() {
        let (u, v) = check_push(g, pos, e, m, &phi, &mut seen)?;
        phi[u as usize] += m / b[u as usize] as f64;
        phi[v as usize] += m / b[v as usize] as f64;
        gain += m;
    }
    for (idx, edge) in g.edges().iter().enumerate() {
        if seen[idx] {
            continue; // pushed edges are removed, not ε-killed
        }
        let slack = edge.w - (1.0 + eps) * (phi[edge.u as usize] + phi[edge.v as usize]);
        if slack > POS_TOL + AUDIT_TOL {
            return Err(AuditError::new(
                "witness.stack",
                format!("edge {idx} still alive after the transcript (ε-slack {slack} > 0)"),
            ));
        }
    }
    let mut load = vec![0u32; g.n()];
    let mut matching = Vec::new();
    for &(e, _) in stack.iter().rev() {
        let edge = g.edge(e);
        if load[edge.u as usize] < b[edge.u as usize] && load[edge.v as usize] < b[edge.v as usize]
        {
            load[edge.u as usize] += 1;
            load[edge.v as usize] += 1;
            matching.push(e);
        }
    }
    matching.sort_unstable();
    Ok(StackReplay { matching, gain })
}

fn check_blockers(
    g: &Graph,
    vertices: &[VertexId],
    blockers: &[(VertexId, VertexId)],
    valid: impl Fn(VertexId, VertexId) -> bool,
    requirement: &str,
) -> AuditResult {
    let mut chosen = vec![false; g.n()];
    for &v in vertices {
        if (v as usize) < g.n() {
            chosen[v as usize] = true;
        }
    }
    let mut witnessed = vec![false; g.n()];
    for (pos, &(v, w)) in blockers.iter().enumerate() {
        let loc = || format!("witness.blockers[{pos}]");
        if (v as usize) >= g.n() || (w as usize) >= g.n() {
            return Err(AuditError::new(
                loc(),
                format!("vertex pair ({v}, {w}) out of range"),
            ));
        }
        if chosen[v as usize] {
            return Err(AuditError::new(
                loc(),
                format!("vertex {v} is itself a member"),
            ));
        }
        if !chosen[w as usize] {
            return Err(AuditError::new(
                loc(),
                format!("blocker {w} is not a member"),
            ));
        }
        if witnessed[v as usize] {
            return Err(AuditError::new(
                loc(),
                format!("vertex {v} witnessed twice"),
            ));
        }
        if !valid(v, w) {
            return Err(AuditError::new(
                loc(),
                format!("member {w} does not block vertex {v} ({requirement})"),
            ));
        }
        witnessed[v as usize] = true;
    }
    for v in 0..g.n() {
        if !chosen[v] && !witnessed[v] {
            return Err(AuditError::new(
                "witness.blockers",
                format!("non-member {v} has no blocker — the selection is not maximal"),
            ));
        }
    }
    Ok(())
}

/// Checks a MIS maximality witness: `vertices` independent, and every
/// non-member blocked by a chosen neighbour.
pub fn check_mis_maximality(
    g: &Graph,
    vertices: &[VertexId],
    blockers: &[(VertexId, VertexId)],
) -> AuditResult {
    if !crate::verify::is_independent_set(g, vertices) {
        return Err(AuditError::new(
            "solution.vertices",
            "selection is not an independent set",
        ));
    }
    let adj = g.neighbours();
    check_blockers(
        g,
        vertices,
        blockers,
        |v, w| adj[v as usize].contains(&w),
        "must be a neighbour",
    )
}

/// Checks a clique maximality witness: `vertices` a clique, and every
/// non-member blocked by a chosen *non*-neighbour.
pub fn check_clique_maximality(
    g: &Graph,
    vertices: &[VertexId],
    blockers: &[(VertexId, VertexId)],
) -> AuditResult {
    if !crate::verify::is_clique(g, vertices) {
        return Err(AuditError::new(
            "solution.vertices",
            "selection is not a clique",
        ));
    }
    if vertices.is_empty() && g.n() > 0 {
        return Err(AuditError::new(
            "solution.vertices",
            "empty clique in a non-empty graph is never maximal",
        ));
    }
    let adj = g.neighbours();
    check_blockers(
        g,
        vertices,
        blockers,
        |v, w| !adj[v as usize].contains(&w),
        "must be a non-neighbour",
    )
}

/// Checks a properness witness against the instance and solution:
/// colouring proper, colours in `0..num_colours`, class sizes matching a
/// recount (all non-empty — the palette is compacted), `Δ` matching.
pub fn check_properness(
    g: &Graph,
    sol: &ColouringResult,
    max_degree: usize,
    counts: &[usize],
    edges: bool,
) -> AuditResult {
    let proper = if edges {
        crate::verify::is_proper_edge_colouring(g, &sol.colours)
    } else {
        crate::verify::is_proper_colouring(g, &sol.colours)
    };
    if !proper {
        return Err(AuditError::new(
            "solution.colours",
            "colouring is not proper",
        ));
    }
    if counts.len() != sol.num_colours {
        return Err(AuditError::new(
            "witness.colour_counts",
            format!(
                "{} classes recorded, {} colours claimed",
                counts.len(),
                sol.num_colours
            ),
        ));
    }
    if let Some(&c) = sol
        .colours
        .iter()
        .find(|&&c| (c as usize) >= sol.num_colours)
    {
        return Err(AuditError::new(
            "solution.colours",
            format!(
                "colour {c} outside the claimed palette 0..{}",
                sol.num_colours
            ),
        ));
    }
    let recount = colour_counts(&sol.colours, sol.num_colours);
    if recount != counts {
        return Err(AuditError::new(
            "witness.colour_counts",
            "recorded colour-class sizes do not match a recount".to_string(),
        ));
    }
    if let Some(c) = recount.iter().position(|&k| k == 0) {
        return Err(AuditError::new(
            "witness.colour_counts",
            format!("colour {c} is unused — palette not compacted"),
        ));
    }
    if max_degree != g.max_degree() {
        return Err(AuditError::new(
            "witness.max_degree",
            format!(
                "recorded Δ = {max_degree}, instance has Δ = {}",
                g.max_degree()
            ),
        ));
    }
    Ok(())
}

// ------------------------------------------------------------------- audit

/// The scalar claims of a stored certificate, checked by [`audit`]
/// against recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct Claims {
    /// The report claims the solution passed its validator.
    pub feasible: bool,
    /// Claimed objective value.
    pub objective: f64,
    /// Claimed certified approximation ratio.
    pub certified_ratio: Option<f64>,
}

impl From<&Certificate> for Claims {
    fn from(c: &Certificate) -> Claims {
        Claims {
            feasible: c.feasible,
            objective: c.objective,
            certified_ratio: c.certified_ratio,
        }
    }
}

fn require(cond: bool, location: &str, message: impl Into<String>) -> AuditResult {
    if cond {
        Ok(())
    } else {
        Err(AuditError::new(location, message))
    }
}

fn check_ratio_claim(claims: &Claims, recomputed: Option<f64>) -> AuditResult {
    match (claims.certified_ratio, recomputed) {
        (None, None) => Ok(()),
        (Some(a), Some(b)) if approx_eq(a, b) => Ok(()),
        (a, b) => Err(AuditError::new(
            "certificate.certified_ratio",
            format!("claimed {a:?}, recomputed {b:?}"),
        )),
    }
}

/// The cover-family ratio claim, mirroring
/// [`CoverCertificate`](super::CoverCertificate)'s `Into<Certificate>`.
fn cover_ratio(weight: f64, lower_bound: f64) -> Option<f64> {
    if lower_bound > 0.0 {
        Some(weight / lower_bound)
    } else if weight <= 0.0 {
        Some(1.0)
    } else {
        None
    }
}

/// The matching-family ratio claim, mirroring
/// [`MatchingCertificate`](super::MatchingCertificate)'s `Into<Certificate>`.
fn matching_ratio(weight: f64, stack_gain: f64, multiplier: f64) -> Option<f64> {
    if weight > 0.0 {
        Some(multiplier * stack_gain / weight)
    } else if stack_gain <= 0.0 {
        Some(1.0)
    } else {
        None
    }
}

fn audit_cover(
    sys: &SetSystem,
    feasible_check: impl Fn(&CoverResult) -> bool,
    weight_of: impl Fn(&CoverResult) -> f64,
    sol: &CoverResult,
    claims: &Claims,
    witness: &Witness,
    checks: &mut Vec<String>,
) -> AuditResult {
    let Witness::CoverDual { dual } = witness else {
        return Err(AuditError::new(
            "witness",
            format!("expected a cover-dual witness, found {}", witness.kind()),
        ));
    };
    // Range-check before handing untrusted ids to the validators —
    // `SetSystem::covers`/`cover_weight` index sets without bounds checks.
    if let Some(&bad) = sol.cover.iter().find(|&&i| (i as usize) >= sys.n_sets()) {
        return Err(AuditError::new(
            "solution.cover",
            format!("set id {bad} outside instance of {} sets", sys.n_sets()),
        ));
    }
    require(
        feasible_check(sol),
        "solution.cover",
        "not a feasible cover",
    )?;
    require(
        claims.feasible,
        "certificate.feasible",
        "report claims infeasible run",
    )?;
    checks.push(format!(
        "feasibility: {} sets cover the universe",
        sol.cover.len()
    ));
    let recomputed = weight_of(sol);
    require(
        approx_eq(recomputed, sol.weight) && approx_eq(sol.weight, claims.objective),
        "solution.weight",
        format!(
            "recomputed weight {recomputed}, claimed {}",
            claims.objective
        ),
    )?;
    checks.push(format!("objective: cover weight {recomputed:.6} re-added"));
    check_cover_dual(sys, dual, sol.lower_bound)?;
    checks.push(format!(
        "dual: {} reductions feasible, Σy = {:.6} ≤ OPT",
        dual.len(),
        sol.lower_bound
    ));
    check_ratio_claim(claims, cover_ratio(sol.weight, sol.lower_bound))?;
    checks.push("ratio: weight / dual matches the claim".into());
    Ok(())
}

fn audit_matching(
    g: &Graph,
    b: Option<&BMatchingInstance>,
    sol: &MatchingResult,
    claims: &Claims,
    witness: &Witness,
    checks: &mut Vec<String>,
) -> AuditResult {
    let Witness::Stack { stack } = witness else {
        return Err(AuditError::new(
            "witness",
            format!("expected a stack witness, found {}", witness.kind()),
        ));
    };
    let (feasible, replay, multiplier) = match b {
        None => (
            crate::verify::is_matching(g, &sol.matching),
            replay_matching_stack(g, stack)?,
            2.0,
        ),
        Some(inst) => (
            crate::verify::is_b_matching(g, &inst.b, &sol.matching),
            replay_b_matching_stack(g, &inst.b, inst.eps, stack)?,
            inst.multiplier(),
        ),
    };
    require(feasible, "solution.matching", "not a feasible (b-)matching")?;
    require(
        claims.feasible,
        "certificate.feasible",
        "report claims infeasible run",
    )?;
    checks.push(format!("feasibility: {} matched edges", sol.matching.len()));
    require(
        replay.matching == sol.matching,
        "solution.matching",
        "unwinding the transcript yields a different matching",
    )?;
    require(
        approx_eq(replay.gain, sol.stack_gain),
        "solution.stack_gain",
        format!(
            "transcript gain {}, claimed {}",
            replay.gain, sol.stack_gain
        ),
    )?;
    checks.push(format!(
        "transcript: {} pushes replayed, gain {:.6}, pass exhaustive",
        stack.len(),
        replay.gain
    ));
    let recomputed: f64 = sol.matching.iter().map(|&e| g.edge(e).w).sum();
    require(
        approx_eq(recomputed, sol.weight) && approx_eq(sol.weight, claims.objective),
        "solution.weight",
        format!(
            "recomputed weight {recomputed}, claimed {}",
            claims.objective
        ),
    )?;
    checks.push(format!(
        "objective: matching weight {recomputed:.6} re-added"
    ));
    check_ratio_claim(
        claims,
        matching_ratio(sol.weight, sol.stack_gain, multiplier),
    )?;
    checks.push(format!(
        "ratio: multiplier {multiplier:.4} × gain / weight matches the claim"
    ));
    Ok(())
}

fn audit_selection(
    g: &Graph,
    clique: bool,
    sol: &SelectionResult,
    claims: &Claims,
    witness: &Witness,
    checks: &mut Vec<String>,
) -> AuditResult {
    let Witness::Maximality { blockers } = witness else {
        return Err(AuditError::new(
            "witness",
            format!("expected a maximality witness, found {}", witness.kind()),
        ));
    };
    if clique {
        check_clique_maximality(g, &sol.vertices, blockers)?;
    } else {
        check_mis_maximality(g, &sol.vertices, blockers)?;
    }
    require(
        claims.feasible,
        "certificate.feasible",
        "report claims infeasible run",
    )?;
    checks.push(format!(
        "maximality: {} members, {} non-members blocked",
        sol.vertices.len(),
        blockers.len()
    ));
    require(
        approx_eq(sol.vertices.len() as f64, claims.objective),
        "certificate.objective",
        format!("|S| = {}, claimed {}", sol.vertices.len(), claims.objective),
    )?;
    checks.push(format!("objective: |S| = {} recounted", sol.vertices.len()));
    check_ratio_claim(claims, None)?;
    checks.push("ratio: structural guarantee (no ratio claimed)".into());
    Ok(())
}

fn audit_colouring(
    g: &Graph,
    edges: bool,
    sol: &ColouringResult,
    claims: &Claims,
    witness: &Witness,
    checks: &mut Vec<String>,
) -> AuditResult {
    let Witness::Properness {
        max_degree,
        colour_counts,
    } = witness
    else {
        return Err(AuditError::new(
            "witness",
            format!("expected a properness witness, found {}", witness.kind()),
        ));
    };
    check_properness(g, sol, *max_degree, colour_counts, edges)?;
    require(
        claims.feasible,
        "certificate.feasible",
        "report claims infeasible run",
    )?;
    checks.push(format!(
        "properness: {} colours over Δ = {max_degree}, classes recounted",
        sol.num_colours
    ));
    require(
        approx_eq(sol.num_colours as f64, claims.objective),
        "certificate.objective",
        format!("{} colours, claimed {}", sol.num_colours, claims.objective),
    )?;
    checks.push(format!("objective: {} colours recounted", sol.num_colours));
    check_ratio_claim(claims, None)?;
    checks.push("ratio: structural guarantee (no ratio claimed)".into());
    Ok(())
}

/// Re-verifies a stored report against its instance, without re-running
/// the solver: recomputes feasibility and the objective, replays the
/// witness (dual feasibility / stack replay / blockers / recount), and
/// confirms the claimed lower bound and approximation ratio.
///
/// Returns the list of human-readable checks that passed, or the first
/// [`AuditError`] (with a dotted location into the report).
pub fn audit(
    instance: &Instance,
    algorithm: &str,
    solution: &Solution,
    claims: &Claims,
    witness: &Witness,
) -> Result<Vec<String>, AuditError> {
    if let Witness::Committed { .. } = witness {
        return Err(AuditError::new(
            "witness",
            "committed witness: the sidecar transcript is required to audit it — \
             use `mrlr verify --witness <transcript>` (crate users: \
             `commit::audit_committed`)",
        ));
    }
    let mut checks = Vec::new();
    let wrong_solution = |expected: &str| {
        AuditError::new(
            "solution",
            format!("algorithm '{algorithm}' expects a {expected} solution"),
        )
    };
    let wrong_instance = |expected: &str| {
        AuditError::new(
            "instance",
            format!(
                "algorithm '{algorithm}' expects a {expected} instance, got a {}",
                instance.kind()
            ),
        )
    };
    match algorithm {
        "set-cover-f" | "set-cover-greedy" => {
            let Instance::SetSystem(sys) = instance else {
                return Err(wrong_instance("set system"));
            };
            let Solution::Cover(sol) = solution else {
                return Err(wrong_solution("cover"));
            };
            audit_cover(
                sys,
                |s| crate::verify::is_cover(sys, &s.cover),
                |s| sys.cover_weight(&s.cover),
                sol,
                claims,
                witness,
                &mut checks,
            )?;
        }
        "vertex-cover" => {
            let Instance::VertexWeighted(inst) = instance else {
                return Err(wrong_instance("vertex-weighted graph"));
            };
            let Solution::Cover(sol) = solution else {
                return Err(wrong_solution("cover"));
            };
            // The dual lives on the set-system view: vertices are sets,
            // edges elements.
            let sys = inst.as_set_system();
            audit_cover(
                &sys,
                |s| crate::verify::is_vertex_cover(&inst.graph, &s.cover),
                |s| s.cover.iter().map(|&v| inst.weights[v as usize]).sum(),
                sol,
                claims,
                witness,
                &mut checks,
            )?;
        }
        "matching" => {
            let Instance::Graph(g) = instance else {
                return Err(wrong_instance("graph"));
            };
            let Solution::Matching(sol) = solution else {
                return Err(wrong_solution("matching"));
            };
            audit_matching(g, None, sol, claims, witness, &mut checks)?;
        }
        "b-matching" => {
            let Instance::BMatching(inst) = instance else {
                return Err(wrong_instance("b-matching instance"));
            };
            let Solution::Matching(sol) = solution else {
                return Err(wrong_solution("matching"));
            };
            audit_matching(&inst.graph, Some(inst), sol, claims, witness, &mut checks)?;
        }
        "mis1" | "mis2" | "clique" => {
            let Instance::Graph(g) = instance else {
                return Err(wrong_instance("graph"));
            };
            let Solution::Selection(sol) = solution else {
                return Err(wrong_solution("selection"));
            };
            audit_selection(g, algorithm == "clique", sol, claims, witness, &mut checks)?;
        }
        "vertex-colouring" | "edge-colouring" => {
            let Instance::Graph(g) = instance else {
                return Err(wrong_instance("graph"));
            };
            let Solution::Colouring(sol) = solution else {
                return Err(wrong_solution("colouring"));
            };
            audit_colouring(
                g,
                algorithm == "edge-colouring",
                sol,
                claims,
                witness,
                &mut checks,
            )?;
        }
        other => {
            return Err(AuditError::new(
                "algorithm",
                format!("unknown registry key '{other}'"),
            ));
        }
    }
    Ok(checks)
}

/// [`audit`]s an in-memory [`Report`](super::Report) produced by the
/// registry — the same checks `mrlr verify` runs on a stored one.
pub fn audit_report(
    instance: &Instance,
    report: &super::Report<Solution>,
) -> Result<Vec<String>, AuditError> {
    audit(
        instance,
        report.algorithm,
        &report.solution,
        &Claims::from(&report.certificate),
        &report.certificate.witness,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Registry;
    use crate::mr::MrConfig;
    use mrlr_graph::generators;

    fn graph_instance(seed: u64) -> (Instance, MrConfig) {
        let g =
            generators::with_uniform_weights(&generators::densified(30, 0.4, seed), 1.0, 9.0, seed);
        let cfg = MrConfig::auto(30, g.m(), 0.3, seed);
        (Instance::Graph(g), cfg)
    }

    #[test]
    fn every_registry_report_audits_clean() {
        let registry = Registry::with_defaults();
        let (graph, cfg) = graph_instance(3);
        let unweighted = Instance::Graph(graph.graph().unwrap().unweighted());
        let sys = mrlr_setsys::generators::with_uniform_weights(
            mrlr_setsys::generators::bounded_frequency(20, 150, 3, 3),
            1.0,
            8.0,
            3,
        );
        let vw = Instance::VertexWeighted(crate::api::VertexWeightedGraph::new(
            graph.graph().unwrap().clone(),
            (0..30).map(|v| 1.0 + v as f64).collect(),
        ));
        let bm = Instance::BMatching(crate::api::BMatchingInstance::new(
            graph.graph().unwrap().clone(),
            (0..30).map(|v| 1 + (v % 3) as u32).collect(),
            0.25,
        ));
        let setsys = Instance::SetSystem(sys);
        let cases: Vec<(&str, &Instance)> = vec![
            ("set-cover-f", &setsys),
            ("set-cover-greedy", &setsys),
            ("vertex-cover", &vw),
            ("matching", &graph),
            ("b-matching", &bm),
            ("mis1", &unweighted),
            ("mis2", &unweighted),
            ("clique", &unweighted),
            ("vertex-colouring", &graph),
            ("edge-colouring", &graph),
        ];
        for backend in crate::api::Backend::ALL {
            for (key, instance) in &cases {
                let scfg = instance.auto_config(0.4, 3);
                let _ = cfg; // graph cases reuse auto parameters
                let report = registry.solve_with(key, backend, instance, &scfg).unwrap();
                let checks = audit_report(instance, &report)
                    .unwrap_or_else(|e| panic!("{key} ({backend}): {e}"));
                assert!(checks.len() >= 3, "{key}: too few checks: {checks:?}");
            }
        }
    }

    #[test]
    fn tampered_dual_is_rejected() {
        let sys = mrlr_setsys::generators::with_uniform_weights(
            mrlr_setsys::generators::bounded_frequency(20, 150, 3, 1),
            1.0,
            8.0,
            1,
        );
        let instance = Instance::SetSystem(sys);
        let cfg = instance.auto_config(0.4, 1);
        let registry = Registry::with_defaults();
        let mut report = registry.solve("set-cover-f", &instance, &cfg).unwrap();
        // Inflate one dual value: the sum no longer matches the claimed
        // lower bound (and may break feasibility too).
        let Witness::CoverDual { dual } = &mut report.certificate.witness else {
            panic!("cover run must carry a dual")
        };
        dual[0].1 *= 2.0;
        let err = audit_report(&instance, &report).unwrap_err();
        assert!(err.location.contains("witness.dual"), "{err}");
    }

    #[test]
    fn tampered_stack_is_rejected() {
        let (instance, cfg) = graph_instance(5);
        let registry = Registry::with_defaults();
        let mut report = registry.solve("matching", &instance, &cfg).unwrap();
        let Witness::Stack { stack } = &mut report.certificate.witness else {
            panic!("matching run must carry a stack")
        };
        stack[0].1 += 0.5; // push no longer matches the modified weight
        let err = audit_report(&instance, &report).unwrap_err();
        assert!(err.location.contains("witness.stack"), "{err}");
    }

    #[test]
    fn tampered_solution_is_rejected() {
        let (instance, cfg) = graph_instance(7);
        let registry = Registry::with_defaults();
        let mut report = registry.solve("matching", &instance, &cfg).unwrap();
        let Solution::Matching(m) = &mut report.solution else {
            panic!("matching solution expected")
        };
        assert!(!m.matching.is_empty());
        m.matching.remove(0); // drop an edge: unwind no longer matches
        let err = audit_report(&instance, &report).unwrap_err();
        assert!(err.location.starts_with("solution."), "{err}");
    }

    #[test]
    fn tampered_blockers_are_rejected() {
        let (weighted, cfg) = graph_instance(9);
        let instance = Instance::Graph(weighted.graph().unwrap().unweighted());
        let registry = Registry::with_defaults();
        let mut report = registry.solve("mis1", &instance, &cfg).unwrap();
        let Witness::Maximality { blockers } = &mut report.certificate.witness else {
            panic!("mis run must carry blockers")
        };
        if blockers.is_empty() {
            return; // selection covers everything — nothing to tamper
        }
        blockers.remove(0); // some non-member loses its witness
        let err = audit_report(&instance, &report).unwrap_err();
        assert!(err.location.contains("witness.blockers"), "{err}");
    }

    #[test]
    fn tampered_colour_counts_are_rejected() {
        let (instance, cfg) = graph_instance(11);
        let registry = Registry::with_defaults();
        let mut report = registry.solve("vertex-colouring", &instance, &cfg).unwrap();
        let Witness::Properness { colour_counts, .. } = &mut report.certificate.witness else {
            panic!("colouring run must carry properness")
        };
        colour_counts[0] += 1;
        let err = audit_report(&instance, &report).unwrap_err();
        assert!(err.location.contains("witness.colour_counts"), "{err}");
    }

    #[test]
    fn witness_kind_tags_are_stable() {
        assert_eq!(Witness::CoverDual { dual: vec![] }.kind(), "cover-dual");
        assert_eq!(Witness::Stack { stack: vec![] }.kind(), "stack");
        assert_eq!(
            Witness::Maximality { blockers: vec![] }.kind(),
            "maximality"
        );
        assert_eq!(
            Witness::Properness {
                max_degree: 0,
                colour_counts: vec![]
            }
            .kind(),
            "properness"
        );
    }
}
