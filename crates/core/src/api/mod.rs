//! The unified solver API: [`Problem`]s, [`Driver`]s, [`Report`]s and the
//! string-keyed [`Registry`].
//!
//! Every algorithm in this crate shares one shape — an instance, a cluster
//! regime `(M, η, µ)` captured by [`MrConfig`], and a round/space-accounted
//! run. This module makes that shape a first-class interface:
//!
//! * [`Problem`] names a problem family and ties together its instance,
//!   solution and verification-certificate types.
//! * [`Driver`] is one algorithm for one problem, available in up to five
//!   [`Backend`]s: `Seq` (deterministic sequential reference), `Rlr` (the
//!   paper's randomized in-memory driver from [`crate::rlr`],
//!   [`crate::hungry`] or [`crate::colouring`]), `Mr` (the cluster
//!   implementation from [`crate::mr`] on the classic engine), `Shard`
//!   (the same cluster implementation on the sharded runtime — static
//!   shard→thread scheduling with per-destination batched routing) and
//!   `Dist` (the same implementation again, shuffling through the
//!   master/worker control plane of [`mrlr_mapreduce::dist`] with
//!   fault-tolerant re-execution). For identical seeds the `Rlr`, `Mr`,
//!   `Shard` and `Dist` backends return **bit-identical** solutions; the
//!   cluster backends additionally report honest (and mutually
//!   identical) [`Metrics`].
//! * [`Report`] uniformly bundles the solution with its certificate,
//!   cluster metrics and wall-clock timing.
//! * [`Registry`] enumerates every driver under a stable string key
//!   (`"matching"`, `"vertex-cover"`, …) for data-driven dispatch: the
//!   experiment binaries, benches and examples loop over the registry
//!   instead of hand-wiring per-algorithm entry points.
//!   [`Registry::solve_batch`] runs one instance set across many
//!   `(algorithm, cfg)` jobs, pre-warming the executor pools the jobs
//!   name once for the whole batch.
//!
//! `Backend::Mr` runs machine supersteps on the pluggable executor
//! behind [`crate::mr::MrConfig::exec`] ([`crate::mr::ExecConfig`]):
//! thread count changes wall-clock only — solutions and [`Metrics`] are
//! bit-identical at every setting (see `tests/executor_determinism.rs`).
//!
//! ```
//! use mrlr_core::api::{Backend, Instance, Registry};
//! use mrlr_core::mr::MrConfig;
//! use mrlr_graph::generators;
//!
//! let g = generators::with_uniform_weights(&generators::densified(40, 0.4, 7), 1.0, 9.0, 7);
//! let cfg = MrConfig::auto(40, g.m(), 0.3, 7);
//! let registry = Registry::with_defaults();
//!
//! let report = registry.solve("matching", &Instance::Graph(g), &cfg).unwrap();
//! assert!(report.certificate.feasible);
//! assert!(report.metrics.as_ref().unwrap().rounds > 0);
//! ```

pub mod commit;
mod drivers;
mod problems;
mod registry;
pub mod stream;
pub mod witness;

use std::fmt;
use std::time::Duration;

use mrlr_mapreduce::{Metrics, MrResult};

use crate::mr::MrConfig;

pub use commit::{audit_chunk, audit_committed, commit_witness, open_witness, Commitment, Digest};
pub use drivers::{
    BMatchingDriver, CliqueDriver, ColouringDriver, EdgeLimit, GreedySetCoverDriver,
    MatchingDriver, MisDriver, MisVariant, SetCoverFDriver, VertexCoverDriver,
    DEFAULT_BMATCHING_EPS, DEFAULT_GREEDY_SC_EPS,
};
pub use problems::{
    BMatching, BMatchingInstance, ColouringCertificate, CoverCertificate, EdgeColouring, Matching,
    MatchingCertificate, MaximalClique, Mis, SelectionCertificate, SetCover, VertexColouring,
    VertexCover, VertexWeightedGraph,
};
pub use registry::{
    AlgorithmInfo, ErasedDriver, FromInstance, Instance, InstanceKind, IntoSolution, Registry,
    Solution, ALGORITHM_INFO, ALL_BACKENDS,
};
pub use stream::{solve_matching_stream, solve_matching_stream_from_graph, StreamError};
pub use witness::{audit, audit_report, AuditError, Claims, Witness};

/// Which implementation of an algorithm a [`Driver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Deterministic sequential reference (test oracle / baseline).
    Seq,
    /// The paper's randomized driver on an in-memory instance
    /// ([`crate::rlr`], [`crate::hungry`], [`crate::colouring`]).
    Rlr,
    /// The cluster implementation ([`crate::mr`]) on the classic engine
    /// (dynamic scheduling + merge routing), metered by the simulator.
    /// Bit-identical to `Rlr` for identical seeds.
    Mr,
    /// The cluster implementation on the sharded runtime
    /// ([`mrlr_mapreduce::RuntimeKind::Shard`]: work-stealing-free
    /// static shard→thread assignment + per-destination batched
    /// routing). Same drivers, same coins — `Report`s (solution,
    /// `Metrics`, witness) are **bit-identical** to `Mr`.
    Shard,
    /// The cluster implementation on the distributed runtime
    /// ([`mrlr_mapreduce::RuntimeKind::Dist`]): a master/worker control
    /// plane over real OS transport, with heartbeats and fault-tolerant
    /// re-execution of killed workers ([`mrlr_mapreduce::dist`]). Same
    /// drivers, same coins — `Report`s are **bit-identical** to `Mr` and
    /// `Shard`, even across an injected worker kill.
    Dist,
}

impl Backend {
    /// All backends, in `Seq < Rlr < Mr < Shard < Dist` order.
    pub const ALL: [Backend; 5] = [
        Backend::Seq,
        Backend::Rlr,
        Backend::Mr,
        Backend::Shard,
        Backend::Dist,
    ];
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Seq => "seq",
            Backend::Rlr => "rlr",
            Backend::Mr => "mr",
            Backend::Shard => "shard",
            Backend::Dist => "dist",
        })
    }
}

/// Uniform verification record carried by every [`Report`]: the scalar
/// summary (feasibility, objective, certified ratio) **plus** the typed
/// [`Witness`] that makes the record independently re-checkable — the LP
/// dual behind a cover's lower bound, the local-ratio stack behind a
/// matching's gain, the blockers behind a maximality claim, the
/// colour-class recount behind a properness claim.
///
/// Problem-specific certificates ([`CoverCertificate`],
/// [`MatchingCertificate`], …) convert into this via `Into`, so registry
/// consumers can print one table without knowing the problem family. A
/// serialized certificate (see [`crate::io::certificate`]) can be audited
/// offline by [`witness::audit`] / `mrlr verify` without re-running the
/// solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The solution passed its independent feasibility validator
    /// ([`crate::verify`]).
    pub feasible: bool,
    /// The objective value (cover weight, matching weight, |S|, #colours).
    pub objective: f64,
    /// A certified upper bound on the approximation ratio, when the
    /// algorithm produces a dual/stack certificate (`None` for problems
    /// whose guarantee is structural, e.g. maximality or properness).
    pub certified_ratio: Option<f64>,
    /// Human-readable summary of what was checked.
    pub detail: String,
    /// The re-checkable payload backing the scalars above.
    pub witness: Witness,
}

/// Uniform outcome of one [`Driver::solve`] call.
#[derive(Debug, Clone)]
pub struct Report<S> {
    /// Registry key of the algorithm that produced this report.
    pub algorithm: &'static str,
    /// Backend that ran.
    pub backend: Backend,
    /// The typed solution.
    pub solution: S,
    /// Verification certificate (computed by the problem's validator, not
    /// by the algorithm under test).
    pub certificate: Certificate,
    /// Cluster metrics; `Some` exactly for the cluster backends
    /// ([`Backend::Mr`], [`Backend::Shard`] and [`Backend::Dist`], which
    /// report identical metrics), `None` for the in-memory ones.
    pub metrics: Option<Metrics>,
    /// Wall-clock time of the solve call, including the certificate
    /// verification (the production path a registry consumer pays).
    pub wall: Duration,
}

impl<S> Report<S> {
    /// Maps the solution type, keeping everything else.
    pub fn map<T>(self, f: impl FnOnce(S) -> T) -> Report<T> {
        Report {
            algorithm: self.algorithm,
            backend: self.backend,
            solution: f(self.solution),
            certificate: self.certificate,
            metrics: self.metrics,
            wall: self.wall,
        }
    }

    /// Communication rounds, or 0 for in-memory backends.
    pub fn rounds(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.rounds)
    }

    /// Peak words resident on any machine, or 0 for in-memory backends.
    pub fn peak_words(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.peak_machine_words)
    }
}

/// A problem family: ties instance, solution and certificate types
/// together and provides the independent validator.
pub trait Problem {
    /// Input instance type.
    type Instance;
    /// Solution type.
    type Solution;
    /// Problem-specific certificate, convertible to the uniform
    /// [`Certificate`].
    type Certificate: Into<Certificate>;
    /// Stable name of the problem family (e.g. `"set-cover"`).
    const NAME: &'static str;
    /// Validates `solution` against `instance`, independently of the
    /// algorithm that produced it.
    fn certify(instance: &Self::Instance, solution: &Self::Solution) -> Self::Certificate;
}

/// One algorithm for one problem, in one [`Backend`].
///
/// Implementations derive every per-algorithm parameter (phase granularity
/// `α`, group sizes, `κ`, sampling budgets) from the instance and the
/// cluster regime in `cfg`, exactly as the paper's theorems parameterize
/// them — so a [`Registry`] consumer needs nothing beyond `(instance,
/// cfg)`.
pub trait Driver: Send + Sync {
    /// Input instance type.
    type Instance;
    /// Solution type.
    type Solution;
    /// Registry key of this algorithm (e.g. `"set-cover-f"`, `"mis2"`).
    fn algorithm(&self) -> &'static str;
    /// Which backend this driver runs.
    fn backend(&self) -> Backend;
    /// Runs the algorithm and bundles the outcome into a [`Report`].
    fn solve(&self, instance: &Self::Instance, cfg: &MrConfig) -> MrResult<Report<Self::Solution>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_order_and_display() {
        assert!(Backend::Seq < Backend::Rlr && Backend::Rlr < Backend::Mr);
        assert!(Backend::Mr < Backend::Shard && Backend::Shard < Backend::Dist);
        assert_eq!(Backend::Mr.to_string(), "mr");
        assert_eq!(Backend::Shard.to_string(), "shard");
        assert_eq!(Backend::Dist.to_string(), "dist");
        assert_eq!(Backend::ALL.len(), 5);
        // Display names are unique and stable — CLI parsing and golden
        // files key off them.
        let names: Vec<String> = Backend::ALL.iter().map(Backend::to_string).collect();
        assert_eq!(names, ["seq", "rlr", "mr", "shard", "dist"]);
    }

    #[test]
    fn report_map_preserves_envelope() {
        let r = Report {
            algorithm: "x",
            backend: Backend::Seq,
            solution: 41usize,
            certificate: Certificate {
                feasible: true,
                objective: 41.0,
                certified_ratio: None,
                detail: String::new(),
                witness: Witness::Maximality { blockers: vec![] },
            },
            metrics: None,
            wall: Duration::from_millis(1),
        };
        let mapped = r.map(|s| s + 1);
        assert_eq!(mapped.solution, 42);
        assert_eq!(mapped.algorithm, "x");
        assert_eq!(mapped.rounds(), 0);
        assert_eq!(mapped.peak_words(), 0);
    }
}
