//! Graph-free streamed solving: instance records flow from a chunked
//! reader (or a generator) straight onto the cluster's machines, and the
//! solve runs without a central [`Instance`][super::Instance] copy.
//!
//! This is the out-of-core entry the MRC regime actually prescribes: the
//! input's `Θ(n^{1+c})` records are distributed across machines before
//! round one, and the central machine only ever holds `O(η)`-scale state —
//! the ϕ-potential vector, gathered samples, and the local-ratio stack
//! (`O(n log n)` edges w.h.p.). The materialized pipeline
//! (`parse_instance` → [`Graph`] → per-machine snapshot) holds the input
//! on one host **three times** before the first round; this path holds it
//! exactly once, already partitioned.
//!
//! Bit-identity: the streamed distribution reproduces the materialized
//! per-machine layout record by record (asserted by the equivalence
//! tests), and the driver loop is literally the same function — so the
//! solution, the stack witness and the [`Metrics`][super::Metrics] of a
//! streamed solve
//! are byte-identical to `Registry::solve("matching", …)` on the same
//! instance, and its reports interoperate with every existing golden.
//!
//! Currently streams the flagship `matching` key (Algorithm 4 — the
//! paper's headline `O(1/µ)`-round result); other keys still go through
//! the materialized registry path.

use std::time::Instant;

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::{MrError, MrResult};

use super::drivers::cluster_cfg;
use super::problems::MatchingCertificate;
use super::{Backend, Report};
use crate::io::stream::{stream_records, Record, RecordSink, StreamHeader};
use crate::io::IoError;
use crate::mr::matching::{RunOutcome, StreamedMatching};
use crate::mr::MrConfig;
use crate::types::MatchingResult;

/// What a streamed solve can fail with: a parse/ingest error positioned
/// in the input stream, or a cluster error from the run itself.
#[derive(Debug)]
pub enum StreamError {
    /// Parse or ingest failure, with its line/column position.
    Io(IoError),
    /// Cluster failure (capacity, algorithm `fail` branch, bad config).
    Mr(MrError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "{e}"),
            StreamError::Mr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<IoError> for StreamError {
    fn from(e: IoError) -> Self {
        StreamError::Io(e)
    }
}

impl From<MrError> for StreamError {
    fn from(e: MrError) -> Self {
        StreamError::Mr(e)
    }
}

/// A [`RecordSink`] that scatters `e`-records of a `p graph` stream into
/// the per-machine blocks of a [`StreamedMatching`] distribution.
struct MatchingSink<F> {
    configure: Option<F>,
    built: Option<StreamedMatching>,
}

impl<F: FnOnce(usize, usize) -> MrConfig> RecordSink for MatchingSink<F> {
    type Out = StreamedMatching;

    fn header(&mut self, header: &StreamHeader) -> Result<(), IoError> {
        let StreamHeader::Graph { n, m } = *header else {
            return Err(IoError {
                line: 0,
                col: 0,
                message: "streamed solve supports `p graph` instances (key `matching`); \
                          use the materialized path for other kinds"
                    .into(),
            });
        };
        let configure = self.configure.take().expect("header delivered once");
        let built = StreamedMatching::new(n, m, configure(n, m)).map_err(|e| IoError {
            line: 0,
            col: 0,
            message: e.to_string(),
        })?;
        self.built = Some(built);
        Ok(())
    }

    fn record(&mut self, record: Record) -> Result<(), IoError> {
        let Record::Edge { index, u, v, w } = record else {
            unreachable!("`p graph` bodies carry only edge records");
        };
        self.built
            .as_mut()
            .expect("header precedes records")
            .push_edge(index as EdgeId, u, v, w)
            .map_err(|e| IoError {
                line: 0,
                col: 0,
                message: format!("ingest: {e}"),
            })
    }

    fn finish(self, _header: &StreamHeader) -> Result<StreamedMatching, IoError> {
        Ok(self.built.expect("header precedes finish"))
    }
}

/// Streams a `p graph` instance from `reader` (fixed `buf_len`-byte
/// window) and solves `matching` on `backend` (`Mr`, `Shard` or `Dist`).
/// `configure` receives the header's `(n, m)` and returns the cluster
/// regime — typically [`MrConfig::auto`]`(n, 2 m, µ, seed)`.
///
/// The report (solution, certificate, stack witness, metrics) is
/// bit-identical to `Registry::solve("matching", …)` on the materialized
/// instance with the same config.
pub fn solve_matching_stream<R: std::io::Read>(
    reader: R,
    buf_len: usize,
    backend: Backend,
    configure: impl FnOnce(usize, usize) -> MrConfig,
) -> Result<Report<MatchingResult>, StreamError> {
    let started = Instant::now();
    require_cluster(backend)?;
    let sink = MatchingSink {
        configure: Some(move |n, m| cluster_cfg(backend, &configure(n, m))),
        built: None,
    };
    let prepared = stream_records(reader, buf_len, sink)?;
    let outcome = prepared.solve()?;
    Ok(matching_report(backend, outcome, started))
}

/// Generator-backed streamed solve: scatters `g`'s edges straight into
/// the per-machine blocks (no instance text, no file, no adjacency
/// build). This is the `mrlr solve --gen … --stream` path: a 10^8-edge
/// synthetic run never touches disk.
pub fn solve_matching_stream_from_graph(
    g: &Graph,
    backend: Backend,
    configure: impl FnOnce(usize, usize) -> MrConfig,
) -> Result<Report<MatchingResult>, StreamError> {
    let started = Instant::now();
    require_cluster(backend)?;
    let cfg = cluster_cfg(backend, &configure(g.n(), g.m()));
    let mut built = StreamedMatching::new(g.n(), g.m(), cfg)?;
    for (id, e) in g.edges().iter().enumerate() {
        built.push_edge(id as EdgeId, e.u, e.v, e.w)?;
    }
    let outcome = built.solve()?;
    Ok(matching_report(backend, outcome, started))
}

fn require_cluster(backend: Backend) -> MrResult<()> {
    match backend {
        Backend::Mr | Backend::Shard | Backend::Dist => Ok(()),
        other => Err(MrError::BadConfig(format!(
            "streamed solve requires a cluster backend (mr, shard or dist), got `{other}`"
        ))),
    }
}

/// Assembles the [`Report`] from a streamed run: the certificate is
/// computed exactly as [`super::Problem::certify`] for `Matching` would —
/// feasibility re-derived from the recorded endpoints of the stacked
/// edges (a matched edge is always stacked), same multiplier, same
/// detail string — so streamed reports are byte-identical to
/// materialized ones under the report renderers.
fn matching_report(
    backend: Backend,
    outcome: RunOutcome,
    started: Instant,
) -> Report<MatchingResult> {
    let RunOutcome {
        result,
        metrics,
        pushed,
        n,
    } = outcome;
    // `verify::is_matching` without the graph: ids distinct and known,
    // endpoints vertex-disjoint. Unwind guarantees all three, so this
    // matches the materialized validator's verdict bit for bit.
    let mut used = vec![false; n];
    let mut seen = std::collections::HashSet::new();
    let mut feasible = true;
    for &id in &result.matching {
        let Some(&(u, v, _)) = pushed.get(&id) else {
            feasible = false;
            break;
        };
        if !seen.insert(id) || used[u as usize] || used[v as usize] {
            feasible = false;
            break;
        }
        used[u as usize] = true;
        used[v as usize] = true;
    }
    let certificate = MatchingCertificate {
        feasible,
        weight: result.weight,
        stack_gain: result.stack_gain,
        multiplier: 2.0,
        stack: result.stack.clone(),
    }
    .into();
    Report {
        algorithm: "matching",
        backend,
        solution: result,
        certificate,
        metrics: Some(metrics),
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Instance, Registry};
    use crate::io::render_instance;
    use mrlr_graph::generators::{densified, with_uniform_weights};

    fn sample(seed: u64) -> Graph {
        with_uniform_weights(&densified(48, 0.4, seed), 0.5, 10.0, seed + 17)
    }

    #[test]
    fn streamed_report_matches_materialized_bit_for_bit() {
        for seed in 0..3 {
            let g = sample(seed);
            let cfg = MrConfig::auto(g.n(), 2 * g.m(), 0.25, seed);
            let direct = Registry::with_defaults()
                .solve("matching", &Instance::Graph(g.clone()), &cfg)
                .unwrap();
            let text = render_instance(&Instance::Graph(g.clone()));
            for buf in [1usize, 7, 4096] {
                let streamed = solve_matching_stream(
                    std::io::Cursor::new(text.as_bytes()),
                    buf,
                    Backend::Mr,
                    |_, _| cfg,
                )
                .unwrap();
                let dm = direct.solution.as_matching().unwrap();
                assert_eq!(&streamed.solution, dm, "seed {seed} buf {buf}");
                assert_eq!(streamed.certificate, direct.certificate);
                assert_eq!(streamed.metrics, direct.metrics);
            }
            let from_gen = solve_matching_stream_from_graph(&g, Backend::Mr, |_, _| cfg).unwrap();
            assert_eq!(
                &from_gen.solution,
                direct.solution.as_matching().unwrap(),
                "seed {seed} generator-backed"
            );
            assert_eq!(from_gen.certificate, direct.certificate);
        }
    }

    #[test]
    fn non_cluster_backend_rejected() {
        let g = sample(1);
        let cfg = MrConfig::auto(g.n(), 2 * g.m(), 0.25, 1);
        let err = solve_matching_stream_from_graph(&g, Backend::Seq, |_, _| cfg).unwrap_err();
        assert!(err.to_string().contains("cluster backend"), "{err}");
    }

    #[test]
    fn non_graph_kind_rejected() {
        let text = "p set-system 3 1\ns 1.0 0 2\n";
        let cfg = MrConfig::auto(4, 8, 0.25, 1);
        let err = solve_matching_stream(
            std::io::Cursor::new(text.as_bytes()),
            64,
            Backend::Mr,
            |_, _| cfg,
        )
        .unwrap_err();
        assert!(err.to_string().contains("`p graph`"), "{err}");
    }
}
