//! [`Driver`] implementations: one struct per paper algorithm, each
//! dispatching across its [`Backend`] variants.
//!
//! Per-algorithm parameters (phase granularity `α`, group sizes `n^{µ/2}`,
//! colour-group counts `κ`, sampling budgets) are derived from the
//! instance and the cluster regime exactly as the paper parameterizes
//! them, so `Rlr` and `Mr` runs of the same driver use the same coins and
//! return bit-identical solutions.

use std::time::Instant;

use mrlr_graph::Graph;
use mrlr_mapreduce::{Metrics, MrError, MrResult, RuntimeKind};
use mrlr_setsys::SetSystem;

use super::problems::{
    BMatching, BMatchingInstance, EdgeColouring, Matching, MaximalClique, Mis, SetCover,
    VertexColouring, VertexCover, VertexWeightedGraph,
};
use super::{Backend, Driver, Problem, Report};
use crate::colouring::{self, group_count};
use crate::hungry::{self, HungryScParams, MisParams};
use crate::mr::{self, MrConfig};
use crate::rlr::{self, BMatchingParams};
use crate::seq;
use crate::types::{ColouringResult, CoverResult, MatchingResult, SelectionResult};

/// Default ε of the `(1+ε) ln Δ` greedy set cover (Algorithm 3).
pub const DEFAULT_GREEDY_SC_EPS: f64 = 0.2;

/// Default ε of the b-matching reduction (Algorithm 7) used by
/// [`BMatchingInstance`] constructors that don't specify one.
pub const DEFAULT_BMATCHING_EPS: f64 = 0.25;

fn seq_err(e: String) -> MrError {
    MrError::Infeasible(e)
}

/// The cluster shape a `Mr`/`Shard`/`Dist` run uses: `Backend::Shard`
/// forces the sharded runtime ([`RuntimeKind::Shard`]), `Backend::Dist`
/// the distributed master/worker runtime ([`RuntimeKind::Dist`]);
/// `Backend::Mr` keeps the config's (env-default) runtime. This is the
/// single runtime-aware entry every cluster driver dispatches through —
/// the run itself is the same `mr::*::run` in all cases, so
/// Rlr/Mr/Shard/Dist reports (witnesses included) are bit-identical.
pub(crate) fn cluster_cfg(backend: Backend, cfg: &MrConfig) -> MrConfig {
    match backend {
        Backend::Shard => cfg.with_runtime(RuntimeKind::Shard),
        Backend::Dist => cfg.with_runtime(RuntimeKind::Dist),
        _ => *cfg,
    }
}

/// Assembles a [`Report`], running the problem validator on the solution.
fn report<P: Problem>(
    algorithm: &'static str,
    backend: Backend,
    instance: &P::Instance,
    solution: P::Solution,
    metrics: Option<Metrics>,
    started: Instant,
) -> Report<P::Solution> {
    let certificate = P::certify(instance, &solution).into();
    Report {
        algorithm,
        backend,
        solution,
        certificate,
        metrics,
        wall: started.elapsed(),
    }
}

/// Algorithm 1 / Theorem 2.4: `f`-approximate weighted set cover.
#[derive(Debug, Clone, Copy)]
pub struct SetCoverFDriver {
    /// Backend to run.
    pub backend: Backend,
}

impl Driver for SetCoverFDriver {
    type Instance = SetSystem;
    type Solution = CoverResult;

    fn algorithm(&self) -> &'static str {
        "set-cover-f"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, sys: &SetSystem, cfg: &MrConfig) -> MrResult<Report<CoverResult>> {
        let t = Instant::now();
        let (sol, metrics) = match self.backend {
            Backend::Seq => (seq::local_ratio_set_cover(sys).map_err(seq_err)?, None),
            Backend::Rlr => (rlr::approx_set_cover_f(sys, cfg.eta, cfg.seed)?, None),
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, m) = mr::set_cover::run(sys, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        Ok(report::<SetCover>(
            self.algorithm(),
            self.backend,
            sys,
            sol,
            metrics,
            t,
        ))
    }
}

/// Algorithm 3 / Theorem 4.6: `(1+ε) ln Δ` greedy set cover.
#[derive(Debug, Clone, Copy)]
pub struct GreedySetCoverDriver {
    /// Backend to run.
    pub backend: Backend,
    /// The ε-greedy slack (`> 0`); approximation `(1+ε) H_Δ`.
    pub eps: f64,
}

impl GreedySetCoverDriver {
    /// Driver with the default ε.
    pub fn new(backend: Backend) -> Self {
        GreedySetCoverDriver {
            backend,
            eps: DEFAULT_GREEDY_SC_EPS,
        }
    }
}

impl Driver for GreedySetCoverDriver {
    type Instance = SetSystem;
    type Solution = CoverResult;

    fn algorithm(&self) -> &'static str {
        "set-cover-greedy"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, sys: &SetSystem, cfg: &MrConfig) -> MrResult<Report<CoverResult>> {
        let t = Instant::now();
        let params = HungryScParams::new(sys.universe(), cfg.mu, self.eps, cfg.seed);
        let (sol, metrics) = match self.backend {
            Backend::Seq => (seq::greedy_set_cover(sys).map_err(seq_err)?, None),
            Backend::Rlr => {
                let (s, _trace) = hungry::hungry_set_cover(sys, params)?;
                (s, None)
            }
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, _trace, m) =
                    mr::set_cover_greedy::run(sys, params, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        Ok(report::<SetCover>(
            self.algorithm(),
            self.backend,
            sys,
            sol,
            metrics,
            t,
        ))
    }
}

/// Theorem 2.4's `f = 2` fast path: 2-approximate weighted vertex cover.
#[derive(Debug, Clone, Copy)]
pub struct VertexCoverDriver {
    /// Backend to run.
    pub backend: Backend,
}

impl Driver for VertexCoverDriver {
    type Instance = VertexWeightedGraph;
    type Solution = CoverResult;

    fn algorithm(&self) -> &'static str {
        "vertex-cover"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, inst: &VertexWeightedGraph, cfg: &MrConfig) -> MrResult<Report<CoverResult>> {
        let t = Instant::now();
        let (sol, metrics) = match self.backend {
            Backend::Seq => {
                let sys = inst.as_set_system();
                (seq::local_ratio_set_cover(&sys).map_err(seq_err)?, None)
            }
            Backend::Rlr => {
                let sys = inst.as_set_system();
                (rlr::approx_set_cover_f(&sys, cfg.eta, cfg.seed)?, None)
            }
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, m) = mr::vertex_cover::run(
                    &inst.graph,
                    &inst.weights,
                    cluster_cfg(self.backend, cfg),
                )?;
                (s, Some(m))
            }
        };
        Ok(report::<VertexCover>(
            self.algorithm(),
            self.backend,
            inst,
            sol,
            metrics,
            t,
        ))
    }
}

/// Algorithm 4 / Theorem 5.6 (and Appendix C at `η = n`): 2-approximate
/// maximum weight matching.
#[derive(Debug, Clone, Copy)]
pub struct MatchingDriver {
    /// Backend to run.
    pub backend: Backend,
}

impl Driver for MatchingDriver {
    type Instance = Graph;
    type Solution = MatchingResult;

    fn algorithm(&self) -> &'static str {
        "matching"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, g: &Graph, cfg: &MrConfig) -> MrResult<Report<MatchingResult>> {
        let t = Instant::now();
        let (sol, metrics) = match self.backend {
            Backend::Seq => (seq::local_ratio_matching(g), None),
            Backend::Rlr => (rlr::approx_max_matching(g, cfg.eta, cfg.seed)?, None),
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, m) = mr::matching::run(g, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        Ok(report::<Matching>(
            self.algorithm(),
            self.backend,
            g,
            sol,
            metrics,
            t,
        ))
    }
}

/// Algorithm 7 / Theorem D.3: `(3 − 2/b + 2ε)`-approximate maximum weight
/// b-matching.
#[derive(Debug, Clone, Copy)]
pub struct BMatchingDriver {
    /// Backend to run.
    pub backend: Backend,
}

impl BMatchingDriver {
    /// The paper's parameters for `inst` under regime `cfg`.
    fn params(inst: &BMatchingInstance, cfg: &MrConfig) -> BMatchingParams {
        BMatchingParams {
            eps: inst.eps,
            n_mu: (inst.graph.n().max(2) as f64).powf(cfg.mu).max(1.0),
            eta: cfg.eta,
            seed: cfg.seed,
        }
    }
}

impl Driver for BMatchingDriver {
    type Instance = BMatchingInstance;
    type Solution = MatchingResult;

    fn algorithm(&self) -> &'static str {
        "b-matching"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, inst: &BMatchingInstance, cfg: &MrConfig) -> MrResult<Report<MatchingResult>> {
        let t = Instant::now();
        let (sol, metrics) = match self.backend {
            Backend::Seq => (
                seq::local_ratio_b_matching(&inst.graph, &inst.b, inst.eps),
                None,
            ),
            Backend::Rlr => (
                rlr::approx_b_matching(&inst.graph, &inst.b, Self::params(inst, cfg))?,
                None,
            ),
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, m) = mr::bmatching::run(
                    &inst.graph,
                    &inst.b,
                    Self::params(inst, cfg),
                    cluster_cfg(self.backend, cfg),
                )?;
                (s, Some(m))
            }
        };
        Ok(report::<BMatching>(
            self.algorithm(),
            self.backend,
            inst,
            sol,
            metrics,
            t,
        ))
    }
}

/// Which hungry-greedy MIS algorithm a [`MisDriver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisVariant {
    /// Algorithm 2 (`MIS1`): `O(1/µ²)` rounds.
    Mis1,
    /// Algorithm 6 (`MIS2`): `O(c/µ)` rounds.
    Mis2,
}

/// Algorithms 2 and 6 / Theorems 3.3 and A.3: maximal independent set.
#[derive(Debug, Clone, Copy)]
pub struct MisDriver {
    /// Backend to run.
    pub backend: Backend,
    /// Which MIS algorithm.
    pub variant: MisVariant,
}

impl MisDriver {
    /// The paper's parameters for an `n`-vertex graph under regime `cfg`.
    fn params(&self, n: usize, cfg: &MrConfig) -> MisParams {
        match self.variant {
            MisVariant::Mis1 => MisParams::mis1(n, cfg.mu, cfg.seed),
            MisVariant::Mis2 => MisParams::mis2(n, cfg.mu, cfg.seed),
        }
    }
}

impl Driver for MisDriver {
    type Instance = Graph;
    type Solution = SelectionResult;

    fn algorithm(&self) -> &'static str {
        match self.variant {
            MisVariant::Mis1 => "mis1",
            MisVariant::Mis2 => "mis2",
        }
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, g: &Graph, cfg: &MrConfig) -> MrResult<Report<SelectionResult>> {
        let t = Instant::now();
        let params = self.params(g.n(), cfg);
        let (sol, metrics) = match (self.backend, self.variant) {
            (Backend::Seq, _) => (seq::greedy_mis(g), None),
            (Backend::Rlr, MisVariant::Mis1) => (hungry::mis_simple(g, params)?, None),
            (Backend::Rlr, MisVariant::Mis2) => (hungry::mis_fast(g, params)?, None),
            (Backend::Mr | Backend::Shard | Backend::Dist, MisVariant::Mis1) => {
                let (s, m) = mr::mis::run_simple(g, params, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
            (Backend::Mr | Backend::Shard | Backend::Dist, MisVariant::Mis2) => {
                let (s, m) = mr::mis::run_fast(g, params, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        Ok(report::<Mis>(
            self.algorithm(),
            self.backend,
            g,
            sol,
            metrics,
            t,
        ))
    }
}

/// Appendix B / Corollary B.1: maximal clique via hungry greedy on the
/// complement degrees.
#[derive(Debug, Clone, Copy)]
pub struct CliqueDriver {
    /// Backend to run.
    pub backend: Backend,
}

impl Driver for CliqueDriver {
    type Instance = Graph;
    type Solution = SelectionResult;

    fn algorithm(&self) -> &'static str {
        "clique"
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, g: &Graph, cfg: &MrConfig) -> MrResult<Report<SelectionResult>> {
        let t = Instant::now();
        let params = MisParams::mis2(g.n(), cfg.mu, cfg.seed);
        let (sol, metrics) = match self.backend {
            Backend::Seq => (seq::greedy_maximal_clique(g), None),
            Backend::Rlr => (hungry::maximal_clique(g, params)?, None),
            Backend::Mr | Backend::Shard | Backend::Dist => {
                let (s, m) = mr::clique::run(g, params, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        Ok(report::<MaximalClique>(
            self.algorithm(),
            self.backend,
            g,
            sol,
            metrics,
            t,
        ))
    }
}

/// Per-group edge budget of the colouring drivers (Lemma 6.2's line-4
/// guard): exceeding it is an algorithm failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeLimit {
    /// The paper's budget `⌈13 · n^{1+µ}⌉`, derived from the instance and
    /// `cfg.mu` (the default — runs that would exceed the memory bound
    /// the theorems assume fail loudly instead of reporting quietly).
    Paper,
    /// No guard: never fail on group size (the groups still exist; only
    /// the Lemma 6.2 check is skipped).
    Unlimited,
    /// An explicit budget in edges per group.
    Words(usize),
}

/// Algorithm 5 / Theorems 6.4 and 6.6: vertex or edge colouring with
/// `(1+o(1))Δ` colours in `O(1)` rounds.
#[derive(Debug, Clone, Copy)]
pub struct ColouringDriver {
    /// Backend to run.
    pub backend: Backend,
    /// `false` = vertex colouring (Algorithm 5), `true` = edge colouring
    /// (Remark 6.5, on the line graph's groups).
    pub edges: bool,
    /// Number of random groups `κ`; `None` derives the paper's
    /// [`group_count`] from the instance and `cfg.mu`.
    pub kappa: Option<usize>,
    /// Per-group edge budget (Lemma 6.2 guard).
    pub edge_limit: EdgeLimit,
}

impl ColouringDriver {
    /// Vertex-colouring driver with the paper's default `κ` and budget.
    pub fn vertex(backend: Backend) -> Self {
        ColouringDriver {
            backend,
            edges: false,
            kappa: None,
            edge_limit: EdgeLimit::Paper,
        }
    }

    /// Edge-colouring driver with the paper's default `κ` and budget.
    pub fn edge(backend: Backend) -> Self {
        ColouringDriver {
            backend,
            edges: true,
            kappa: None,
            edge_limit: EdgeLimit::Paper,
        }
    }

    fn kappa_for(&self, g: &Graph, cfg: &MrConfig) -> usize {
        self.kappa
            .unwrap_or_else(|| group_count(g.n().max(2), g.m().max(1), cfg.mu))
            .max(1)
    }

    /// The Lemma 6.2 budget for an `n`-vertex graph at exponent `µ`.
    pub fn paper_edge_limit(n: usize, mu: f64) -> usize {
        (13.0 * (n.max(2) as f64).powf(1.0 + mu)).ceil() as usize
    }

    fn limit_for(&self, g: &Graph, cfg: &MrConfig) -> Option<usize> {
        match self.edge_limit {
            EdgeLimit::Paper => Some(Self::paper_edge_limit(g.n(), cfg.mu)),
            EdgeLimit::Unlimited => None,
            EdgeLimit::Words(w) => Some(w),
        }
    }
}

impl Driver for ColouringDriver {
    type Instance = Graph;
    type Solution = ColouringResult;

    fn algorithm(&self) -> &'static str {
        if self.edges {
            "edge-colouring"
        } else {
            "vertex-colouring"
        }
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn solve(&self, g: &Graph, cfg: &MrConfig) -> MrResult<Report<ColouringResult>> {
        let t = Instant::now();
        let kappa = self.kappa_for(g, cfg);
        let limit = self.limit_for(g, cfg);
        let (sol, metrics) = match (self.backend, self.edges) {
            (Backend::Seq, false) => (seq::greedy_colouring(g), None),
            (Backend::Seq, true) => (seq::misra_gries_edge_colouring(g), None),
            (Backend::Rlr, false) => (
                colouring::vertex_colouring(g, kappa, limit, cfg.seed)?,
                None,
            ),
            (Backend::Rlr, true) => (colouring::edge_colouring(g, kappa, limit, cfg.seed)?, None),
            (Backend::Mr | Backend::Shard | Backend::Dist, false) => {
                let (s, m) =
                    mr::colouring::run_vertex(g, kappa, limit, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
            (Backend::Mr | Backend::Shard | Backend::Dist, true) => {
                let (s, m) =
                    mr::colouring::run_edge(g, kappa, limit, cluster_cfg(self.backend, cfg))?;
                (s, Some(m))
            }
        };
        let problem_report = if self.edges {
            report::<EdgeColouring>(self.algorithm(), self.backend, g, sol, metrics, t)
        } else {
            report::<VertexColouring>(self.algorithm(), self.backend, g, sol, metrics, t)
        };
        Ok(problem_report)
    }
}
