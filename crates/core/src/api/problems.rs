//! The eight problem families of the paper, as [`Problem`] implementations,
//! plus the instance bundles and certificate types they share.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_setsys::{ElemId, SetSystem};

use super::witness::{self, Witness};
use super::{Certificate, Problem};
use crate::seq::b_matching_multiplier;
use crate::types::{ColouringResult, CoverResult, MatchingResult, SelectionResult};
use crate::verify;

/// A graph with per-vertex weights (vertex-cover instances).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexWeightedGraph {
    /// The graph.
    pub graph: Graph,
    /// Weight of each vertex (`len == graph.n()`).
    pub weights: Vec<f64>,
}

impl VertexWeightedGraph {
    /// Bundles `graph` with `weights`, checking lengths.
    pub fn new(graph: Graph, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), graph.n(), "one weight per vertex");
        VertexWeightedGraph { graph, weights }
    }

    /// The equivalent set-cover view (vertices are sets, edges elements).
    pub fn as_set_system(&self) -> SetSystem {
        SetSystem::vertex_cover_of(&self.graph, self.weights.clone())
    }
}

/// A graph with per-vertex capacities and the reduction slack `ε`
/// (b-matching instances). `ε` is part of the instance spec so that a
/// registry dispatch is fully determined by `(instance, cfg)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BMatchingInstance {
    /// The graph.
    pub graph: Graph,
    /// Capacity `b(v) ≥ 1` of each vertex (`len == graph.n()`).
    pub b: Vec<u32>,
    /// The adjustment `ε > 0`; the guarantee is `3 − 2/max{2,b} + 2ε`.
    pub eps: f64,
}

impl BMatchingInstance {
    /// Bundles `graph` with capacities `b` at slack `eps`.
    pub fn new(graph: Graph, b: Vec<u32>, eps: f64) -> Self {
        assert_eq!(b.len(), graph.n(), "one capacity per vertex");
        BMatchingInstance { graph, b, eps }
    }

    /// The approximation multiplier `3 − 2/max{2,b_max} + 2ε` certified by
    /// Theorem D.3 for this instance.
    pub fn multiplier(&self) -> f64 {
        b_matching_multiplier(&self.b, self.eps)
    }
}

/// Certificate of a cover-type solution: feasibility plus the dual lower
/// bound the local-ratio/dual-fitting algorithms emit, with the
/// per-element dual vector as the re-checkable witness.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverCertificate {
    /// The chosen sets cover the universe.
    pub feasible: bool,
    /// Total cover weight.
    pub weight: f64,
    /// Certified lower bound on the optimum (a feasible dual value).
    pub lower_bound: f64,
    /// The per-element dual `(j, y_j)` behind `lower_bound` (see
    /// [`CoverResult::dual`]).
    pub dual: Vec<(ElemId, f64)>,
}

impl From<CoverCertificate> for Certificate {
    fn from(c: CoverCertificate) -> Certificate {
        let ratio = if c.lower_bound > 0.0 {
            Some(c.weight / c.lower_bound)
        } else if c.weight <= 0.0 {
            Some(1.0)
        } else {
            None
        };
        Certificate {
            feasible: c.feasible,
            objective: c.weight,
            certified_ratio: ratio,
            detail: format!(
                "cover weight {:.3}, dual lower bound {:.3}",
                c.weight, c.lower_bound
            ),
            witness: Witness::CoverDual { dual: c.dual },
        }
    }
}

/// Certificate of a matching-type solution: feasibility plus the
/// local-ratio stack bound (`OPT ≤ multiplier · stack_gain`).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingCertificate {
    /// The chosen edges form a (b-)matching.
    pub feasible: bool,
    /// Total matching weight.
    pub weight: f64,
    /// Stack gain `Σ m_e`.
    pub stack_gain: f64,
    /// Problem multiplier (2 for matching, `3 − 2/b + 2ε` for b-matching).
    pub multiplier: f64,
    /// The push-order stack transcript behind `stack_gain` (see
    /// [`MatchingResult::stack`]).
    pub stack: Vec<(EdgeId, f64)>,
}

impl From<MatchingCertificate> for Certificate {
    fn from(c: MatchingCertificate) -> Certificate {
        let ratio = if c.weight > 0.0 {
            Some(c.multiplier * c.stack_gain / c.weight)
        } else if c.stack_gain <= 0.0 {
            Some(1.0)
        } else {
            None
        };
        Certificate {
            feasible: c.feasible,
            objective: c.weight,
            certified_ratio: ratio,
            detail: format!(
                "matching weight {:.3}, stack gain {:.3}, multiplier {:.2}",
                c.weight, c.stack_gain, c.multiplier
            ),
            witness: Witness::Stack { stack: c.stack },
        }
    }
}

/// Certificate of a vertex-selection solution (MIS / maximal clique):
/// the guarantee is structural (maximality), so `feasible` is the whole
/// statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionCertificate {
    /// The selection passed its maximality validator.
    pub feasible: bool,
    /// Number of chosen vertices.
    pub size: usize,
    /// Per-non-member maximality witnesses: `(v, blocking member)` —
    /// a chosen neighbour for MIS, a chosen non-neighbour for clique
    /// (see [`witness::mis_blockers`] / [`witness::clique_blockers`]).
    pub blockers: Vec<(VertexId, VertexId)>,
}

impl From<SelectionCertificate> for Certificate {
    fn from(c: SelectionCertificate) -> Certificate {
        Certificate {
            feasible: c.feasible,
            objective: c.size as f64,
            certified_ratio: None,
            detail: format!("|S| = {} (maximality verified)", c.size),
            witness: Witness::Maximality {
                blockers: c.blockers,
            },
        }
    }
}

/// Certificate of a colouring solution: properness plus the colour count
/// against the degree bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColouringCertificate {
    /// The colouring is proper.
    pub feasible: bool,
    /// Colours used.
    pub num_colours: usize,
    /// Maximum degree of the instance (the `Δ` in `(1+o(1))Δ`).
    pub max_degree: usize,
    /// Colour-class sizes (see [`witness::colour_counts`]).
    pub colour_counts: Vec<usize>,
}

impl From<ColouringCertificate> for Certificate {
    fn from(c: ColouringCertificate) -> Certificate {
        Certificate {
            feasible: c.feasible,
            objective: c.num_colours as f64,
            // Properness is a structural guarantee: there is no certified
            // approximation bound (colours/Δ is *not* one — χ can be far
            // below Δ), so per the contract this stays `None`.
            certified_ratio: None,
            detail: format!("{} colours, Δ = {}", c.num_colours, c.max_degree),
            witness: Witness::Properness {
                max_degree: c.max_degree,
                colour_counts: c.colour_counts,
            },
        }
    }
}

/// Weighted set cover (Theorems 2.4 and 4.6).
#[derive(Debug, Clone, Copy)]
pub enum SetCover {}

impl Problem for SetCover {
    type Instance = SetSystem;
    type Solution = CoverResult;
    type Certificate = CoverCertificate;
    const NAME: &'static str = "set-cover";
    fn certify(sys: &SetSystem, sol: &CoverResult) -> CoverCertificate {
        CoverCertificate {
            feasible: verify::is_cover(sys, &sol.cover),
            weight: sol.weight,
            lower_bound: sol.lower_bound,
            dual: sol.dual.clone(),
        }
    }
}

/// Weighted vertex cover (Theorem 2.4, `f = 2`).
#[derive(Debug, Clone, Copy)]
pub enum VertexCover {}

impl Problem for VertexCover {
    type Instance = VertexWeightedGraph;
    type Solution = CoverResult;
    type Certificate = CoverCertificate;
    const NAME: &'static str = "vertex-cover";
    fn certify(inst: &VertexWeightedGraph, sol: &CoverResult) -> CoverCertificate {
        CoverCertificate {
            feasible: verify::is_vertex_cover(&inst.graph, &sol.cover),
            weight: sol.weight,
            lower_bound: sol.lower_bound,
            dual: sol.dual.clone(),
        }
    }
}

/// Maximum weight matching (Theorems 5.5/5.6, Appendix C).
#[derive(Debug, Clone, Copy)]
pub enum Matching {}

impl Problem for Matching {
    type Instance = Graph;
    type Solution = MatchingResult;
    type Certificate = MatchingCertificate;
    const NAME: &'static str = "matching";
    fn certify(g: &Graph, sol: &MatchingResult) -> MatchingCertificate {
        MatchingCertificate {
            feasible: verify::is_matching(g, &sol.matching),
            weight: sol.weight,
            stack_gain: sol.stack_gain,
            multiplier: 2.0,
            stack: sol.stack.clone(),
        }
    }
}

/// Maximum weight b-matching (Theorem D.3).
#[derive(Debug, Clone, Copy)]
pub enum BMatching {}

impl Problem for BMatching {
    type Instance = BMatchingInstance;
    type Solution = MatchingResult;
    type Certificate = MatchingCertificate;
    const NAME: &'static str = "b-matching";
    fn certify(inst: &BMatchingInstance, sol: &MatchingResult) -> MatchingCertificate {
        MatchingCertificate {
            feasible: verify::is_b_matching(&inst.graph, &inst.b, &sol.matching),
            weight: sol.weight,
            stack_gain: sol.stack_gain,
            multiplier: inst.multiplier(),
            stack: sol.stack.clone(),
        }
    }
}

/// Maximal independent set (Theorems 3.3 and A.3).
#[derive(Debug, Clone, Copy)]
pub enum Mis {}

impl Problem for Mis {
    type Instance = Graph;
    type Solution = SelectionResult;
    type Certificate = SelectionCertificate;
    const NAME: &'static str = "mis";
    fn certify(g: &Graph, sol: &SelectionResult) -> SelectionCertificate {
        SelectionCertificate {
            feasible: verify::is_maximal_independent_set(g, &sol.vertices),
            size: sol.vertices.len(),
            blockers: witness::mis_blockers(g, &sol.vertices),
        }
    }
}

/// Maximal clique (Appendix B).
#[derive(Debug, Clone, Copy)]
pub enum MaximalClique {}

impl Problem for MaximalClique {
    type Instance = Graph;
    type Solution = SelectionResult;
    type Certificate = SelectionCertificate;
    const NAME: &'static str = "clique";
    fn certify(g: &Graph, sol: &SelectionResult) -> SelectionCertificate {
        SelectionCertificate {
            feasible: verify::is_maximal_clique(g, &sol.vertices),
            size: sol.vertices.len(),
            blockers: witness::clique_blockers(g, &sol.vertices),
        }
    }
}

/// Vertex colouring with `(1+o(1))Δ` colours (Theorem 6.4).
#[derive(Debug, Clone, Copy)]
pub enum VertexColouring {}

impl Problem for VertexColouring {
    type Instance = Graph;
    type Solution = ColouringResult;
    type Certificate = ColouringCertificate;
    const NAME: &'static str = "vertex-colouring";
    fn certify(g: &Graph, sol: &ColouringResult) -> ColouringCertificate {
        ColouringCertificate {
            feasible: verify::is_proper_colouring(g, &sol.colours),
            num_colours: sol.num_colours,
            max_degree: g.max_degree(),
            colour_counts: witness::colour_counts(&sol.colours, sol.num_colours),
        }
    }
}

/// Edge colouring with `(1+o(1))Δ` colours (Remark 6.5 / Theorem 6.6).
#[derive(Debug, Clone, Copy)]
pub enum EdgeColouring {}

impl Problem for EdgeColouring {
    type Instance = Graph;
    type Solution = ColouringResult;
    type Certificate = ColouringCertificate;
    const NAME: &'static str = "edge-colouring";
    fn certify(g: &Graph, sol: &ColouringResult) -> ColouringCertificate {
        ColouringCertificate {
            feasible: verify::is_proper_edge_colouring(g, &sol.colours),
            num_colours: sol.num_colours,
            max_degree: g.max_degree(),
            colour_counts: witness::colour_counts(&sol.colours, sol.num_colours),
        }
    }
}
