//! The string-keyed driver [`Registry`]: type-erased dispatch over every
//! algorithm × backend combination, plus the paper-bounds table
//! ([`ALGORITHM_INFO`]) mapping each key to its theorem.
//!
//! # Registry keys and their theorems
//!
//! Every key is backed by a theorem of the paper (PAPER.md; Harvey–Liaw–Liu,
//! SPAA 2018). `c` is the density exponent (`m = n^{1+c}` input records),
//! `µ` the memory exponent (`n^{1+µ}` words per machine), `ε` the greedy /
//! reduction slack:
//!
//! | key | theorem | rounds | space/machine | certified ratio | witness |
//! |-----|---------|--------|---------------|-----------------|---------|
//! | `set-cover-f` | Theorem 2.4 | `O((c/µ)²)` | `O(f·n^{1+µ})` | `f` | dual |
//! | `set-cover-greedy` | Theorem 4.6 | `O((c/µ)·(1/µ)·log(Δ)/ε)` | `O(n^{1+µ})` | `(1+ε)·H_Δ` | dual |
//! | `vertex-cover` | Theorem 2.4 (f = 2) | `O(c/µ)` | `O(n^{1+µ})` | `2` | dual |
//! | `matching` | Theorems 5.5/5.6, App. C | `O(c/µ)`; `O(log n)` at `µ = 0` | `O(n^{1+µ})` | `2` | stack |
//! | `b-matching` | Theorem D.3 | `O(c/µ · log(1/ε))` | `O(n^{1+µ})` | `3 − 2/max{2,b} + 2ε` | stack |
//! | `mis1` | Theorem 3.3 | `O(1/µ²)` | `O(n^{1+µ})` | maximal | maximality |
//! | `mis2` | Theorem A.3 | `O(c/µ)` | `O(n^{1+µ})` | maximal | maximality |
//! | `clique` | Corollary B.1 | `O(c/µ)` | `O(n^{1+µ})` | maximal | maximality |
//! | `vertex-colouring` | Theorem 6.4 | `O(1)` | `O(n^{1+µ})` | `(1+o(1))Δ` colours | properness |
//! | `edge-colouring` | Theorem 6.6 | `O(1)` | `O(n^{1+µ})` | `(1+o(1))Δ` colours | properness |
//!
//! The same table is available programmatically as [`ALGORITHM_INFO`] /
//! [`Registry::info`] and is served by `mrlr list --format json`. The
//! *witness* column names the [`Witness`](super::Witness) kind each
//! driver's [`Certificate`](super::Certificate) carries, re-checkable
//! offline via [`super::witness::audit`] / `mrlr verify`. Every key runs
//! on all five [`Backend`]s ([`AlgorithmInfo::backends`]); the three
//! cluster backends (`mr` on the classic engine, `shard` on the sharded
//! runtime, `dist` on the master/worker control plane) return
//! bit-identical reports.

use std::collections::BTreeMap;
use std::fmt;

use mrlr_graph::Graph;
use mrlr_mapreduce::{MrError, MrResult};
use mrlr_setsys::SetSystem;

use super::drivers::{
    BMatchingDriver, CliqueDriver, ColouringDriver, GreedySetCoverDriver, MatchingDriver,
    MisDriver, MisVariant, SetCoverFDriver, VertexCoverDriver,
};
use super::problems::{BMatchingInstance, VertexWeightedGraph};
use super::{Backend, Driver, MrConfig, Report};
use crate::types::{ColouringResult, CoverResult, MatchingResult, SelectionResult};

/// The shape of instance an algorithm consumes; lets data-driven harnesses
/// build the right workload without knowing the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceKind {
    /// A (possibly weighted) graph.
    Graph,
    /// A graph with per-vertex weights.
    VertexWeighted,
    /// A graph with per-vertex capacities and reduction slack.
    BMatching,
    /// A weighted set system.
    SetSystem,
}

impl fmt::Display for InstanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstanceKind::Graph => "graph",
            InstanceKind::VertexWeighted => "vertex-weighted graph",
            InstanceKind::BMatching => "b-matching instance",
            InstanceKind::SetSystem => "set system",
        })
    }
}

/// A type-erased instance, for dispatch through the [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instance {
    /// A (possibly weighted) graph.
    Graph(Graph),
    /// A graph with per-vertex weights (vertex cover).
    VertexWeighted(VertexWeightedGraph),
    /// A graph with per-vertex capacities (b-matching).
    BMatching(BMatchingInstance),
    /// A weighted set system (set cover).
    SetSystem(SetSystem),
}

impl Instance {
    /// The kind tag of this instance.
    pub fn kind(&self) -> InstanceKind {
        match self {
            Instance::Graph(_) => InstanceKind::Graph,
            Instance::VertexWeighted(_) => InstanceKind::VertexWeighted,
            Instance::BMatching(_) => InstanceKind::BMatching,
            Instance::SetSystem(_) => InstanceKind::SetSystem,
        }
    }

    /// The underlying graph, when there is one.
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            Instance::Graph(g) => Some(g),
            Instance::VertexWeighted(vw) => Some(&vw.graph),
            Instance::BMatching(bm) => Some(&bm.graph),
            Instance::SetSystem(_) => None,
        }
    }

    /// The paper's auto-shaped cluster regime for this instance at memory
    /// exponent `mu`: graphs play `n` vertices against `m` edge records,
    /// set systems play `n` sets against the universe (the element records
    /// Algorithm 1 distributes) — the same parameterization the experiment
    /// binaries use. This is what makes a registry dispatch fully
    /// file-driven: `(instance file, mu, seed)` determines the whole run.
    pub fn auto_config(&self, mu: f64, seed: u64) -> MrConfig {
        match self {
            Instance::Graph(g) => MrConfig::auto(g.n(), g.m().max(1), mu, seed),
            Instance::VertexWeighted(vw) => {
                MrConfig::auto(vw.graph.n(), vw.graph.m().max(1), mu, seed)
            }
            Instance::BMatching(bm) => MrConfig::auto(bm.graph.n(), bm.graph.m().max(1), mu, seed),
            Instance::SetSystem(s) => MrConfig::auto(s.n_sets(), s.universe().max(1), mu, seed),
        }
    }
}

/// Paper-derived metadata of one registry key: theorem number, round and
/// space bounds, certified approximation ratio and witness kind. The
/// bounds are the *symbolic* statements of the theorems (they depend on
/// the regime `(c, µ, ε)`), kept as display strings for dashboards and
/// `mrlr list --format json`; the module-level docs of
/// `crates/core/src/api/registry.rs` carry the full key → theorem table
/// with context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgorithmInfo {
    /// Registry key.
    pub key: &'static str,
    /// Theorem (or appendix result) of the paper backing the bounds.
    pub theorem: &'static str,
    /// Communication-round bound.
    pub rounds: &'static str,
    /// Per-machine space bound in words.
    pub space: &'static str,
    /// Certified approximation guarantee.
    pub ratio: &'static str,
    /// Witness kind the driver's certificate carries
    /// (`cover-dual` / `stack` / `maximality` / `properness`).
    pub witness: &'static str,
    /// Backends this key supports, in `Backend::ALL` order. Every paper
    /// key runs on all five; the cluster backends (`mr`, `shard`,
    /// `dist`) are bit-identical (a cross-check against
    /// [`Registry::backends`] lives in the tests).
    pub backends: &'static [Backend],
}

/// The backend set every paper key supports (all of [`Backend::ALL`] —
/// one source of truth; this is a slice view of that array).
pub const ALL_BACKENDS: &[Backend] = &Backend::ALL;

/// One [`AlgorithmInfo`] row per registry key, sorted by key (the order
/// [`Registry::algorithms`] returns).
pub const ALGORITHM_INFO: &[AlgorithmInfo] = &[
    AlgorithmInfo {
        key: "b-matching",
        theorem: "Theorem D.3",
        rounds: "O(c/µ · log(1/ε))",
        space: "O(n^{1+µ})",
        ratio: "3 − 2/max{2,b} + 2ε",
        witness: "stack",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "clique",
        theorem: "Corollary B.1",
        rounds: "O(c/µ)",
        space: "O(n^{1+µ})",
        ratio: "maximal",
        witness: "maximality",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "edge-colouring",
        theorem: "Theorem 6.6",
        rounds: "O(1)",
        space: "O(n^{1+µ})",
        ratio: "(1+o(1))Δ colours",
        witness: "properness",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "matching",
        theorem: "Theorems 5.5/5.6, Appendix C",
        rounds: "O(c/µ); O(log n) at µ = 0",
        space: "O(n^{1+µ})",
        ratio: "2",
        witness: "stack",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "mis1",
        theorem: "Theorem 3.3",
        rounds: "O(1/µ²)",
        space: "O(n^{1+µ})",
        ratio: "maximal",
        witness: "maximality",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "mis2",
        theorem: "Theorem A.3",
        rounds: "O(c/µ)",
        space: "O(n^{1+µ})",
        ratio: "maximal",
        witness: "maximality",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "set-cover-f",
        theorem: "Theorem 2.4",
        rounds: "O((c/µ)²)",
        space: "O(f·n^{1+µ})",
        ratio: "f",
        witness: "cover-dual",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "set-cover-greedy",
        theorem: "Theorem 4.6",
        rounds: "O((c/µ)·(1/µ)·log(Δ)/ε)",
        space: "O(n^{1+µ})",
        ratio: "(1+ε)·H_Δ",
        witness: "cover-dual",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "vertex-colouring",
        theorem: "Theorem 6.4",
        rounds: "O(1)",
        space: "O(n^{1+µ})",
        ratio: "(1+o(1))Δ colours",
        witness: "properness",
        backends: ALL_BACKENDS,
    },
    AlgorithmInfo {
        key: "vertex-cover",
        theorem: "Theorem 2.4 (f = 2)",
        rounds: "O(c/µ)",
        space: "O(n^{1+µ})",
        ratio: "2",
        witness: "cover-dual",
        backends: ALL_BACKENDS,
    },
];

/// A type-erased solution returned by [`Registry`] dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// A set/vertex cover.
    Cover(CoverResult),
    /// A (b-)matching.
    Matching(MatchingResult),
    /// A vertex selection (MIS / clique).
    Selection(SelectionResult),
    /// A colouring.
    Colouring(ColouringResult),
}

impl Solution {
    /// The cover, if this is a cover solution.
    pub fn as_cover(&self) -> Option<&CoverResult> {
        match self {
            Solution::Cover(c) => Some(c),
            _ => None,
        }
    }

    /// The matching, if this is a matching solution.
    pub fn as_matching(&self) -> Option<&MatchingResult> {
        match self {
            Solution::Matching(m) => Some(m),
            _ => None,
        }
    }

    /// The selection, if this is a selection solution.
    pub fn as_selection(&self) -> Option<&SelectionResult> {
        match self {
            Solution::Selection(s) => Some(s),
            _ => None,
        }
    }

    /// The colouring, if this is a colouring solution.
    pub fn as_colouring(&self) -> Option<&ColouringResult> {
        match self {
            Solution::Colouring(c) => Some(c),
            _ => None,
        }
    }

    /// Iterations of the algorithm's outer loop, uniformly across
    /// solution families (colourings run in a constant round budget and
    /// report their group count instead).
    pub fn iterations(&self) -> usize {
        match self {
            Solution::Cover(c) => c.iterations,
            Solution::Matching(m) => m.iterations,
            Solution::Selection(s) => s.iterations,
            Solution::Colouring(c) => c.groups,
        }
    }
}

/// Typed instances that can be pulled out of an [`Instance`].
pub trait FromInstance: Sized {
    /// The kind tag this type corresponds to.
    const KIND: InstanceKind;
    /// Borrows the typed instance, if `inst` holds this kind.
    fn from_instance(inst: &Instance) -> Option<&Self>;
}

impl FromInstance for Graph {
    const KIND: InstanceKind = InstanceKind::Graph;
    fn from_instance(inst: &Instance) -> Option<&Self> {
        match inst {
            Instance::Graph(g) => Some(g),
            _ => None,
        }
    }
}

impl FromInstance for VertexWeightedGraph {
    const KIND: InstanceKind = InstanceKind::VertexWeighted;
    fn from_instance(inst: &Instance) -> Option<&Self> {
        match inst {
            Instance::VertexWeighted(vw) => Some(vw),
            _ => None,
        }
    }
}

impl FromInstance for BMatchingInstance {
    const KIND: InstanceKind = InstanceKind::BMatching;
    fn from_instance(inst: &Instance) -> Option<&Self> {
        match inst {
            Instance::BMatching(bm) => Some(bm),
            _ => None,
        }
    }
}

impl FromInstance for SetSystem {
    const KIND: InstanceKind = InstanceKind::SetSystem;
    fn from_instance(inst: &Instance) -> Option<&Self> {
        match inst {
            Instance::SetSystem(s) => Some(s),
            _ => None,
        }
    }
}

/// Typed solutions that can be erased into a [`Solution`].
pub trait IntoSolution {
    /// Wraps the typed solution.
    fn into_solution(self) -> Solution;
}

impl IntoSolution for CoverResult {
    fn into_solution(self) -> Solution {
        Solution::Cover(self)
    }
}

impl IntoSolution for MatchingResult {
    fn into_solution(self) -> Solution {
        Solution::Matching(self)
    }
}

impl IntoSolution for SelectionResult {
    fn into_solution(self) -> Solution {
        Solution::Selection(self)
    }
}

impl IntoSolution for ColouringResult {
    fn into_solution(self) -> Solution {
        Solution::Colouring(self)
    }
}

/// Object-safe view of a registered [`Driver`].
pub trait ErasedDriver: Send + Sync {
    /// Registry key of the algorithm.
    fn algorithm(&self) -> &'static str;
    /// Backend this entry runs.
    fn backend(&self) -> Backend;
    /// The instance shape this algorithm consumes.
    fn instance_kind(&self) -> InstanceKind;
    /// Dispatches [`Driver::solve`], checking the instance kind.
    fn solve(&self, instance: &Instance, cfg: &MrConfig) -> MrResult<Report<Solution>>;
}

struct Erased<D>(D);

impl<D> ErasedDriver for Erased<D>
where
    D: Driver,
    D::Instance: FromInstance,
    D::Solution: IntoSolution,
{
    fn algorithm(&self) -> &'static str {
        self.0.algorithm()
    }

    fn backend(&self) -> Backend {
        self.0.backend()
    }

    fn instance_kind(&self) -> InstanceKind {
        D::Instance::KIND
    }

    fn solve(&self, instance: &Instance, cfg: &MrConfig) -> MrResult<Report<Solution>> {
        let typed = D::Instance::from_instance(instance).ok_or_else(|| {
            MrError::BadConfig(format!(
                "algorithm '{}' expects a {} instance, got a {}",
                self.0.algorithm(),
                D::Instance::KIND,
                instance.kind()
            ))
        })?;
        Ok(self.0.solve(typed, cfg)?.map(IntoSolution::into_solution))
    }
}

/// String-keyed collection of every registered driver, for data-driven
/// dispatch. See the [module docs](crate::api) for an example.
pub struct Registry {
    entries: BTreeMap<(&'static str, Backend), Box<dyn ErasedDriver>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry holding all eight paper algorithms (ten registry keys —
    /// MIS and colouring contribute two each) in every backend that
    /// implements them: 50 entries, five [`Backend`]s per key.
    pub fn with_defaults() -> Self {
        let mut r = Registry::new();
        for backend in Backend::ALL {
            r.register(SetCoverFDriver { backend });
            r.register(GreedySetCoverDriver::new(backend));
            r.register(VertexCoverDriver { backend });
            r.register(MatchingDriver { backend });
            r.register(BMatchingDriver { backend });
            r.register(MisDriver {
                backend,
                variant: MisVariant::Mis1,
            });
            r.register(MisDriver {
                backend,
                variant: MisVariant::Mis2,
            });
            r.register(CliqueDriver { backend });
            r.register(ColouringDriver::vertex(backend));
            r.register(ColouringDriver::edge(backend));
        }
        r
    }

    /// Registers `driver` under `(driver.algorithm(), driver.backend())`,
    /// replacing any previous entry for that key.
    pub fn register<D>(&mut self, driver: D)
    where
        D: Driver + 'static,
        D::Instance: FromInstance,
        D::Solution: IntoSolution,
    {
        self.entries.insert(
            (driver.algorithm(), driver.backend()),
            Box::new(Erased(driver)),
        );
    }

    /// The cluster ([`Backend::Mr`]) driver registered under `algorithm`.
    pub fn get(&self, algorithm: &str) -> Option<&dyn ErasedDriver> {
        self.get_backend(algorithm, Backend::Mr)
    }

    /// The driver registered under `(algorithm, backend)`.
    pub fn get_backend(&self, algorithm: &str, backend: Backend) -> Option<&dyn ErasedDriver> {
        // The map is keyed by `&'static str`; a lookup by a short-lived
        // `&str` can't borrow into the tuple key, and with ~30 entries a
        // scan is as good as a tree descent.
        self.entries
            .iter()
            .find(|((name, b), _)| *name == algorithm && *b == backend)
            .map(|(_, d)| d.as_ref())
    }

    /// Dispatches `instance` to the [`Backend::Mr`] driver of `algorithm`.
    pub fn solve(
        &self,
        algorithm: &str,
        instance: &Instance,
        cfg: &MrConfig,
    ) -> MrResult<Report<Solution>> {
        self.solve_with(algorithm, Backend::Mr, instance, cfg)
    }

    /// Dispatches every instance to every `(algorithm, cfg)` job on the
    /// [`Backend::Mr`] drivers, returning `results[instance][job]`.
    ///
    /// The batch amortizes executor startup: the thread pools named by
    /// the jobs' [`MrConfig::exec`] configs are spawned (or fetched warm
    /// from the process-wide cache) once up front, so each solve pays
    /// instance distribution and superstep work only — not thread spawns.
    /// Distribution itself is amortized too: each instance's jobs run
    /// inside a `mrlr_core::mr::dist_cache` scope, so jobs sharing an
    /// instance and a cluster shape (thread sweeps, MIS1/MIS2, the
    /// colouring pair) clone
    /// the first job's distributed per-machine snapshot instead of
    /// re-distributing — bit-identical results either way, since
    /// distribution is a pure function of `(instance, machines, seed)`.
    /// Per-pair failures (unknown key, instance-kind mismatch, capacity
    /// exhaustion) land in that pair's slot without aborting the batch.
    pub fn solve_batch(
        &self,
        instances: &[Instance],
        jobs: &[(&str, MrConfig)],
    ) -> Vec<Vec<MrResult<Report<Solution>>>> {
        self.solve_batch_with(Backend::Mr, instances, jobs)
    }

    /// [`Registry::solve_batch`] on an explicit backend (`Mr`, `Shard`
    /// and `Dist` are the metered cluster backends and return
    /// bit-identical reports; `Seq`/`Rlr` batches skip the cluster
    /// entirely but still share the distribution-cache scope, which is
    /// simply idle for them).
    pub fn solve_batch_with(
        &self,
        backend: Backend,
        instances: &[Instance],
        jobs: &[(&str, MrConfig)],
    ) -> Vec<Vec<MrResult<Report<Solution>>>> {
        // Warm each *distinct* thread count exactly once and pin the pool
        // handles for the whole batch: consecutive jobs sharing a count
        // reuse one cached pool instead of re-resolving it per job, and
        // because the shard scheduler resolves its executor through the
        // same process-wide cache, classic and sharded jobs in one batch
        // share a single warm pool per count.
        let mut counts: Vec<usize> = jobs.iter().map(|(_, cfg)| cfg.exec.threads).collect();
        counts.sort_unstable();
        counts.dedup();
        let _pools: Vec<std::sync::Arc<dyn mrlr_mapreduce::Executor>> = counts
            .into_iter()
            .map(mrlr_mapreduce::executor_for)
            .collect();
        instances
            .iter()
            .map(|instance| {
                // One scope per instance: keys carry the instance address,
                // so cross-instance hits are impossible and a narrower
                // scope drops each snapshot as soon as its instance is
                // done instead of holding all of them to the end.
                crate::mr::dist_cache::scope(|| {
                    jobs.iter()
                        .map(|(algorithm, cfg)| self.solve_with(algorithm, backend, instance, cfg))
                        .collect()
                })
            })
            .collect()
    }

    /// Dispatches `instance` to the `(algorithm, backend)` driver.
    pub fn solve_with(
        &self,
        algorithm: &str,
        backend: Backend,
        instance: &Instance,
        cfg: &MrConfig,
    ) -> MrResult<Report<Solution>> {
        let driver = self.get_backend(algorithm, backend).ok_or_else(|| {
            MrError::BadConfig(format!(
                "no driver registered for algorithm '{algorithm}' on backend '{backend}'"
            ))
        })?;
        driver.solve(instance, cfg)
    }

    /// The paper-bounds row of `algorithm` (theorem, round/space bounds,
    /// ratio, witness kind), if the key is one of the ten paper keys.
    pub fn info(&self, algorithm: &str) -> Option<&'static AlgorithmInfo> {
        ALGORITHM_INFO.iter().find(|i| i.key == algorithm)
    }

    /// Distinct algorithm keys, sorted.
    pub fn algorithms(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.entries.keys().map(|(n, _)| *n).collect();
        names.dedup();
        names
    }

    /// Backends registered for `algorithm`, in `Seq < Rlr < Mr` order.
    pub fn backends(&self, algorithm: &str) -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| self.get_backend(algorithm, *b).is_some())
            .collect()
    }

    /// All registered entries, ordered by `(algorithm, backend)`.
    pub fn entries(&self) -> impl Iterator<Item = &dyn ErasedDriver> {
        self.entries.values().map(AsRef::as_ref)
    }

    /// Number of registered `(algorithm, backend)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("entries", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_graph::generators;

    #[test]
    fn defaults_cover_all_algorithms_and_backends() {
        let r = Registry::with_defaults();
        assert_eq!(r.len(), 50);
        let names = r.algorithms();
        for name in [
            "b-matching",
            "clique",
            "edge-colouring",
            "matching",
            "mis1",
            "mis2",
            "set-cover-f",
            "set-cover-greedy",
            "vertex-colouring",
            "vertex-cover",
        ] {
            assert!(names.contains(&name), "missing {name}");
            assert_eq!(r.backends(name), Backend::ALL.to_vec(), "{name}");
            assert!(r.get(name).is_some(), "{name} has no Mr driver");
        }
    }

    #[test]
    fn info_table_covers_exactly_the_registry_keys() {
        let r = Registry::with_defaults();
        let keys = r.algorithms();
        let info_keys: Vec<&str> = ALGORITHM_INFO.iter().map(|i| i.key).collect();
        assert_eq!(keys, info_keys, "ALGORITHM_INFO must mirror the registry");
        for key in keys {
            let info = r.info(key).unwrap();
            assert!(info.theorem.contains("eorem") || info.theorem.contains("orollary"));
            assert!(info.rounds.starts_with('O'), "{key}");
            assert!(!info.ratio.is_empty() && !info.witness.is_empty());
            // The static backends column must mirror what is registered.
            assert_eq!(info.backends, r.backends(key), "{key} backends drifted");
        }
        assert!(r.info("max-cut").is_none());
    }

    #[test]
    fn kind_mismatch_is_a_clean_error() {
        let r = Registry::with_defaults();
        let g = generators::densified(10, 0.3, 1);
        let cfg = MrConfig::auto(10, g.m().max(1), 0.3, 1);
        let err = r
            .solve("set-cover-f", &Instance::Graph(g), &cfg)
            .unwrap_err();
        assert!(matches!(err, MrError::BadConfig(_)), "{err:?}");
        assert!(err.to_string().contains("set system"), "{err}");
    }

    #[test]
    fn unknown_algorithm_is_a_clean_error() {
        let r = Registry::with_defaults();
        let g = generators::densified(10, 0.3, 1);
        let cfg = MrConfig::auto(10, g.m().max(1), 0.3, 1);
        let err = r.solve("max-cut", &Instance::Graph(g), &cfg).unwrap_err();
        assert!(err.to_string().contains("no driver"), "{err}");
    }

    #[test]
    fn solve_batch_covers_the_cross_product_and_isolates_failures() {
        let r = Registry::with_defaults();
        let g = generators::with_uniform_weights(&generators::densified(30, 0.4, 3), 1.0, 9.0, 3);
        let cfg = MrConfig::auto(30, g.m(), 0.3, 3);
        let instances = [Instance::Graph(g.clone()), Instance::Graph(g.unweighted())];
        let jobs = [
            ("matching", cfg),
            ("matching", cfg.with_threads(2)),
            ("set-cover-f", cfg), // kind mismatch: per-slot error
            ("no-such-algo", cfg),
        ];
        let results = r.solve_batch(&instances, &jobs);
        assert_eq!(results.len(), 2);
        for per_instance in &results {
            assert_eq!(per_instance.len(), 4);
            let seq = per_instance[0].as_ref().unwrap();
            let threaded = per_instance[1].as_ref().unwrap();
            // Thread count is wall-clock only: solutions and metrics match.
            assert_eq!(seq.solution, threaded.solution);
            assert_eq!(seq.metrics, threaded.metrics);
            assert!(per_instance[2].is_err(), "kind mismatch must error");
            assert!(per_instance[3].is_err(), "unknown key must error");
        }
    }

    #[test]
    fn solve_batch_distribution_cache_is_transparent() {
        // Jobs sharing an instance + cluster shape hit the distribution
        // cache inside the batch scope; results (solutions, certificates
        // AND model-level Metrics) must be bit-identical to uncached
        // standalone solves.
        let r = Registry::with_defaults();
        let g = generators::with_uniform_weights(&generators::densified(40, 0.4, 5), 1.0, 9.0, 5);
        let cfg = MrConfig::auto(40, g.m(), 0.3, 5);
        let instances = [Instance::Graph(g)];
        let jobs = [
            ("matching", cfg),
            ("matching", cfg.with_threads(2)), // same shape: cache hit
            ("mis1", cfg),
            ("mis2", cfg), // shares the MIS partition with mis1
            ("vertex-colouring", cfg),
            ("edge-colouring", cfg), // shares the edge partition
        ];
        let batch = r.solve_batch(&instances, &jobs);
        let (hits, misses) = crate::mr::dist_cache::stats();
        assert!(hits >= 3, "expected cache hits in the batch, got {hits}");
        assert!(misses >= 1);
        for (i, (algorithm, job_cfg)) in jobs.iter().enumerate() {
            let standalone = r.solve(algorithm, &instances[0], job_cfg).unwrap();
            let cached = batch[0][i].as_ref().unwrap();
            assert_eq!(cached.solution, standalone.solution, "{algorithm}");
            assert_eq!(cached.certificate, standalone.certificate, "{algorithm}");
            assert_eq!(cached.metrics, standalone.metrics, "{algorithm}");
        }
    }

    #[test]
    fn auto_config_shapes_match_the_experiment_parameterization() {
        let g = generators::densified(30, 0.4, 1);
        let m = g.m();
        let from_graph = Instance::Graph(g).auto_config(0.3, 9);
        let direct = MrConfig::auto(30, m, 0.3, 9);
        assert_eq!(from_graph.machines, direct.machines);
        assert_eq!(from_graph.eta, direct.eta);
        assert_eq!(from_graph.seed, 9);

        let sys = mrlr_setsys::generators::bounded_frequency(20, 200, 3, 1);
        let from_sys = Instance::SetSystem(sys).auto_config(0.25, 3);
        let sdirect = MrConfig::auto(20, 200, 0.25, 3);
        assert_eq!(from_sys.machines, sdirect.machines);
        assert_eq!(from_sys.eta, sdirect.eta);
    }

    #[test]
    fn solve_runs_via_registry() {
        let r = Registry::with_defaults();
        let g = generators::with_uniform_weights(&generators::densified(30, 0.4, 3), 1.0, 9.0, 3);
        let cfg = MrConfig::auto(30, g.m(), 0.3, 3);
        let report = r.solve("matching", &Instance::Graph(g), &cfg).unwrap();
        assert!(report.certificate.feasible);
        assert!(report.solution.as_matching().is_some());
        assert!(report.metrics.is_some());
        assert_eq!(report.backend, Backend::Mr);
    }
}
