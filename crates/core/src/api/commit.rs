//! Hashed witness commitments: a compact, tamper-evident stand-in for the
//! `O(m)`-scale witness transcripts that [`super::Witness`] otherwise
//! embeds in every report.
//!
//! At out-of-core scale the local-ratio stack (`matching`, `b-matching`)
//! and the LP dual (the cover family) are the only report components that
//! grow with the instance. Shipping them inline breaks the same memory
//! regime the streamed solve path restores: a report reader would hold
//! `Θ(n^{1+µ})` words again. A *commitment* fixes this asymmetry:
//!
//! * the transcript is split into fixed-size **chunks** of `(id, value)`
//!   entries;
//! * each chunk hashes to a **leaf** digest; leaves are padded to the next
//!   power of two and folded pairwise into a Merkle **root**;
//! * the root is bound to the transcript's shape — kind, entry count,
//!   chunk length — so none of those can be reinterpreted after the fact;
//! * the report carries only [`Witness::Committed`] (a few words), while
//!   the full transcript travels in a line-oriented **sidecar** file that
//!   also records each chunk's **authentication path** (the sibling
//!   digests from its leaf to the root).
//!
//! `mrlr verify --witness <sidecar>` can then either reconstruct the full
//! witness (authenticating every chunk) and run the ordinary audit, or
//! spot-check any single chunk in `O(chunk_len + log #chunks)` work via
//! its authentication path — without reading the rest of the transcript.
//!
//! The digest is a hand-rolled 256-bit ARX sponge (the offline build has
//! no hashing crates). It is **tamper-evident, not cryptographic**: it
//! detects corruption, truncation and accidental or casual modification
//! of a stored transcript, exactly what a reproducibility artifact needs;
//! it makes no claim against an adversary searching for collisions.
//!
//! ## Worked example
//!
//! A 5-entry stack committed with `chunk_len = 2` yields chunks
//! `{0: 2 entries, 1: 2 entries, 2: 1 entry}`, padded to 4 leaves
//! `L0..L3` (`L3` the pad digest). The tree is
//! `root* = H(H(L0, L1), H(L2, L3))`, and the committed root is
//! `H_bind("stack", 5, 2, root*)`. Chunk 2's authentication path is
//! `[L3, H(L0, L1)]`: the verifier recomputes `L2` from the chunk's
//! entries, folds `H(H(L2, L3))` — direction chosen by the bits of the
//! chunk index — re-binds, and compares against the committed root.

use super::witness::{audit, AuditError, Claims};
use super::{Instance, Solution, Witness};

// ------------------------------------------------------------------ digest

/// A 256-bit digest, rendered as 64 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(pub [u64; 4]);

impl Digest {
    /// Parses the 64-hex-digit rendering back. `None` on any malformation.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut out = [0u64; 4];
        for (i, word) in out.iter_mut().enumerate() {
            *word = u64::from_str_radix(&s[16 * i..16 * (i + 1)], 16).ok()?;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for w in self.0 {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

// Domain-separation tags (ASCII mnemonics): a leaf can never collide with
// an interior node, a pad, the empty tree or the binding wrapper.
const TAG_LEAF: u64 = 0x6d72_6c72_6c65_6166; // "mrlr leaf"
const TAG_NODE: u64 = 0x6d72_6c72_6e6f_6465; // "mrlr node"
const TAG_PAD: u64 = 0x6d72_6c72_0070_6164; // "mrlr pad"
const TAG_EMPTY: u64 = 0x6d72_6c72_656d_7074; // "mrlr empt"
const TAG_ROOT: u64 = 0x6d72_6c72_726f_6f74; // "mrlr root"

/// The sponge: rate one 64-bit word, capacity three, permuted after every
/// absorbed word with four double-rounds of an add-rotate-xor mix.
pub struct Hasher {
    state: [u64; 4],
}

impl Hasher {
    /// A fresh sponge, domain-separated by `tag`.
    pub fn new(tag: u64) -> Hasher {
        let mut h = Hasher {
            // Arbitrary odd constants (splitmix / Weyl increments).
            state: [
                tag ^ 0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ],
        };
        h.permute();
        h
    }

    fn permute(&mut self) {
        // First 256 fractional bits of π as round constants.
        const RC: [u64; 4] = [
            0x243f_6a88_85a3_08d3,
            0x1319_8a2e_0370_7344,
            0xa409_3822_299f_31d0,
            0x082e_fa98_ec4e_6c89,
        ];
        let [mut a, mut b, mut c, mut d] = self.state;
        for rc in RC {
            a = a.wrapping_add(b);
            d = (d ^ a).rotate_left(32);
            c = c.wrapping_add(d);
            b = (b ^ c).rotate_left(24);
            a = a.wrapping_add(b);
            d = (d ^ a).rotate_left(16);
            c = c.wrapping_add(d);
            b = (b ^ c).rotate_left(63);
            a ^= rc;
        }
        self.state = [a, b, c, d];
    }

    /// Absorbs one word.
    pub fn write_u64(&mut self, w: u64) {
        self.state[0] ^= w;
        self.permute();
    }

    /// Absorbs a float by its exact bit pattern.
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Absorbs a byte string, length-prefixed (so `"ab" ++ "c"` and
    /// `"a" ++ "bc"` digest differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Absorbs a whole digest (for interior tree nodes).
    pub fn write_digest(&mut self, d: &Digest) {
        for &w in &d.0 {
            self.write_u64(w);
        }
    }

    /// Final padding + extraction.
    pub fn finish(mut self) -> Digest {
        self.state[3] ^= 0x6d72_6c72_6669_6e69; // "mrlr fini"
        self.permute();
        self.permute();
        Digest(self.state)
    }
}

// -------------------------------------------------------------------- tree

/// Number of chunks a transcript of `entries` entries splits into under
/// `chunk_len` (the last chunk may be shorter; zero entries → zero chunks).
pub fn chunk_count(entries: usize, chunk_len: usize) -> usize {
    entries.div_ceil(chunk_len)
}

/// Entries in chunk `index` of a transcript of `entries` total.
fn chunk_entries(entries: usize, chunk_len: usize, index: usize) -> usize {
    (entries - index * chunk_len).min(chunk_len)
}

/// Depth of the padded Merkle tree over `num_chunks` leaves — the length
/// of every authentication path.
pub fn tree_depth(num_chunks: usize) -> usize {
    if num_chunks <= 1 {
        return 0;
    }
    num_chunks.next_power_of_two().trailing_zeros() as usize
}

fn leaf_hash(index: usize, entries: &[(u32, f64)]) -> Digest {
    let mut h = Hasher::new(TAG_LEAF);
    h.write_u64(index as u64);
    h.write_u64(entries.len() as u64);
    for &(id, x) in entries {
        h.write_u64(id as u64);
        h.write_f64(x);
    }
    h.finish()
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Hasher::new(TAG_NODE);
    h.write_digest(left);
    h.write_digest(right);
    h.finish()
}

fn pad_leaf() -> Digest {
    Hasher::new(TAG_PAD).finish()
}

fn empty_tree() -> Digest {
    Hasher::new(TAG_EMPTY).finish()
}

/// Binds the bare tree root to the transcript's shape, yielding the
/// committed root: reinterpreting the same tree under a different kind,
/// entry count or chunk length changes the digest.
fn bind_root(of: &str, entries: usize, chunk_len: usize, tree_root: &Digest) -> Digest {
    let mut h = Hasher::new(TAG_ROOT);
    h.write_bytes(of.as_bytes());
    h.write_u64(entries as u64);
    h.write_u64(chunk_len as u64);
    h.write_digest(tree_root);
    h.finish()
}

/// Merkle root + per-leaf authentication paths (sibling digests, leaf
/// level first; fold direction comes from the leaf index's bits).
fn tree_root_and_paths(leaves: &[Digest]) -> (Digest, Vec<Vec<Digest>>) {
    if leaves.is_empty() {
        return (empty_tree(), Vec::new());
    }
    let width = leaves.len().next_power_of_two();
    let mut level: Vec<Digest> = leaves.to_vec();
    level.resize(width, pad_leaf());
    let mut paths: Vec<Vec<Digest>> = vec![Vec::new(); leaves.len()];
    let mut pos: Vec<usize> = (0..leaves.len()).collect();
    while level.len() > 1 {
        for (path, p) in paths.iter_mut().zip(pos.iter_mut()) {
            path.push(level[*p ^ 1]);
            *p >>= 1;
        }
        level = level
            .chunks(2)
            .map(|pair| node_hash(&pair[0], &pair[1]))
            .collect();
    }
    (level[0], paths)
}

// ------------------------------------------------------------- commitment

/// A committed witness plus its sidecar transcript text — what
/// `mrlr solve --certificates committed` writes to the report and the
/// `--witness-out` file respectively.
#[derive(Debug, Clone)]
pub struct Commitment {
    /// The [`Witness::Committed`] stand-in to embed in the report.
    pub witness: Witness,
    /// The sidecar transcript (line-oriented; format in the module docs).
    pub transcript: String,
}

/// Transcript kinds that can be committed: the two witness families whose
/// size grows with the instance.
fn committable_pairs(w: &Witness) -> Option<(&'static str, &[(u32, f64)])> {
    match w {
        Witness::CoverDual { dual } => Some(("cover-dual", dual)),
        Witness::Stack { stack } => Some(("stack", stack)),
        _ => None,
    }
}

/// Commits `witness` under `chunk_len`: returns the compact
/// [`Witness::Committed`] and the sidecar transcript. Errors if the
/// witness kind has no transcript to commit (maximality / properness
/// witnesses are already `O(n)` and stay inline) or `chunk_len` is zero.
pub fn commit_witness(witness: &Witness, chunk_len: usize) -> Result<Commitment, AuditError> {
    if chunk_len == 0 {
        return Err(AuditError::new(
            "witness.committed.chunk_len",
            "chunk length must be positive",
        ));
    }
    let Some((of, pairs)) = committable_pairs(witness) else {
        return Err(AuditError::new(
            "witness",
            format!(
                "a {} witness has no transcript to commit — only stack and cover-dual \
                 witnesses support `--certificates committed`",
                witness.kind()
            ),
        ));
    };
    let leaves: Vec<Digest> = pairs
        .chunks(chunk_len)
        .enumerate()
        .map(|(i, c)| leaf_hash(i, c))
        .collect();
    let (tree_root, paths) = tree_root_and_paths(&leaves);
    let root = bind_root(of, pairs.len(), chunk_len, &tree_root);
    let transcript = render_transcript(of, pairs, chunk_len, &root, &paths);
    Ok(Commitment {
        witness: Witness::Committed {
            of: of.to_string(),
            entries: pairs.len(),
            chunk_len,
            root,
        },
        transcript,
    })
}

/// Renders the sidecar transcript:
///
/// ```text
/// mrlr-commit v1 <of> <entries> <chunk_len> <root-hex>
/// chunk 0 <sibling-hex> <sibling-hex> …
/// <id> <value>
/// <id> <value>
/// chunk 1 …
/// ```
///
/// Entry lines belong to the preceding `chunk` line; values use the `{:?}`
/// float rendering, so a parsed transcript is bit-identical to the
/// committed one.
fn render_transcript(
    of: &str,
    pairs: &[(u32, f64)],
    chunk_len: usize,
    root: &Digest,
    paths: &[Vec<Digest>],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mrlr-commit v1 {of} {} {chunk_len} {root}",
        pairs.len()
    );
    for (i, chunk) in pairs.chunks(chunk_len).enumerate() {
        let _ = write!(out, "chunk {i}");
        for sib in &paths[i] {
            let _ = write!(out, " {sib}");
        }
        out.push('\n');
        for &(id, x) in chunk {
            let _ = writeln!(out, "{id} {x:?}");
        }
    }
    out
}

// ------------------------------------------------------------- transcript

/// One parsed chunk of a sidecar transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// The chunk's index as recorded in the file.
    pub index: usize,
    /// Sibling digests from leaf to root.
    pub auth: Vec<Digest>,
    /// The chunk's `(id, value)` entries.
    pub entries: Vec<(u32, f64)>,
}

/// A parsed sidecar transcript (header + chunks, in file order).
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Underlying witness kind (`stack` or `cover-dual`).
    pub of: String,
    /// Total entry count the header claims.
    pub entries: usize,
    /// Chunk length the header claims.
    pub chunk_len: usize,
    /// Committed root the header claims.
    pub root: Digest,
    /// The chunks, in file order (audited for contiguity separately).
    pub chunks: Vec<Chunk>,
}

fn terr(location: String, line: usize, what: impl std::fmt::Display) -> AuditError {
    AuditError::new(location, format!("line {line}: {what}"))
}

/// Parses a sidecar transcript. Errors carry a dotted location
/// (`transcript` for the header, `transcript.chunk[i]` for chunk `i`) and
/// the 1-based line number in the message.
pub fn parse_transcript(text: &str) -> Result<Transcript, AuditError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(AuditError::new("transcript", "empty transcript file"));
    };
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() != 6 || head[0] != "mrlr-commit" || head[1] != "v1" {
        return Err(terr(
            "transcript".into(),
            1,
            "header must be `mrlr-commit v1 <of> <entries> <chunk_len> <root>`",
        ));
    }
    let of = head[2].to_string();
    let entries: usize = head[3]
        .parse()
        .map_err(|_| terr("transcript".into(), 1, "bad entry count in header"))?;
    let chunk_len: usize = head[4]
        .parse()
        .map_err(|_| terr("transcript".into(), 1, "bad chunk length in header"))?;
    if chunk_len == 0 {
        return Err(terr(
            "transcript".into(),
            1,
            "chunk length must be positive",
        ));
    }
    let root = Digest::from_hex(head[5])
        .ok_or_else(|| terr("transcript".into(), 1, "bad root digest in header"))?;

    let mut chunks: Vec<Chunk> = Vec::new();
    for (lineno, line) in lines {
        let line_no = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("chunk ") {
            let mut toks = rest.split_whitespace();
            let loc = format!("transcript.chunk[{}]", chunks.len());
            let index: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| terr(loc.clone(), line_no, "bad chunk index"))?;
            let auth = toks
                .map(|t| {
                    Digest::from_hex(t).ok_or_else(|| {
                        terr(
                            format!("transcript.chunk[{index}]"),
                            line_no,
                            "bad digest in authentication path",
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            chunks.push(Chunk {
                index,
                auth,
                entries: Vec::new(),
            });
        } else {
            let Some(chunk) = chunks.last_mut() else {
                return Err(terr(
                    "transcript".into(),
                    line_no,
                    "entry line before the first `chunk` line",
                ));
            };
            let loc = || format!("transcript.chunk[{}]", chunk.index);
            let mut toks = line.split_whitespace();
            let id: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| terr(loc(), line_no, "bad entry id"))?;
            let x: f64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| terr(loc(), line_no, "bad entry value"))?;
            if toks.next().is_some() {
                return Err(terr(loc(), line_no, "trailing tokens on entry line"));
            }
            chunk.entries.push((id, x));
        }
    }
    Ok(Transcript {
        of,
        entries,
        chunk_len,
        root,
        chunks,
    })
}

// ------------------------------------------------------------------ audit

/// The shape parameters of a [`Witness::Committed`], destructured.
fn committed_parts(w: &Witness) -> Result<(&str, usize, usize, &Digest), AuditError> {
    match w {
        Witness::Committed {
            of,
            entries,
            chunk_len,
            root,
        } => Ok((of, *entries, *chunk_len, root)),
        other => Err(AuditError::new(
            "witness",
            format!("expected a committed witness, found {}", other.kind()),
        )),
    }
}

/// Authenticates one parsed chunk against the committed shape and root:
/// index in range, entry count exactly what the shape dictates,
/// authentication path of exactly tree depth, and the folded + re-bound
/// digest equal to the committed root.
pub fn verify_chunk(
    of: &str,
    entries: usize,
    chunk_len: usize,
    root: &Digest,
    chunk: &Chunk,
) -> Result<(), AuditError> {
    let num_chunks = chunk_count(entries, chunk_len);
    let loc = || format!("transcript.chunk[{}]", chunk.index);
    if chunk.index >= num_chunks {
        return Err(AuditError::new(
            loc(),
            format!("chunk index out of range: the commitment has {num_chunks} chunks"),
        ));
    }
    let expected = chunk_entries(entries, chunk_len, chunk.index);
    if chunk.entries.len() != expected {
        return Err(AuditError::new(
            loc(),
            format!(
                "chunk carries {} entries, the commitment dictates {expected}",
                chunk.entries.len()
            ),
        ));
    }
    let depth = tree_depth(num_chunks);
    if chunk.auth.len() != depth {
        return Err(AuditError::new(
            loc(),
            format!(
                "authentication path has {} digests, tree depth is {depth}",
                chunk.auth.len()
            ),
        ));
    }
    let mut node = leaf_hash(chunk.index, &chunk.entries);
    let mut pos = chunk.index;
    for sib in &chunk.auth {
        node = if pos & 1 == 0 {
            node_hash(&node, sib)
        } else {
            node_hash(sib, &node)
        };
        pos >>= 1;
    }
    if bind_root(of, entries, chunk_len, &node) != *root {
        return Err(AuditError::new(
            loc(),
            "chunk does not authenticate against the committed root",
        ));
    }
    Ok(())
}

/// Checks a parsed transcript's header against the committed witness it
/// claims to open.
fn check_header(
    of: &str,
    entries: usize,
    chunk_len: usize,
    root: &Digest,
    t: &Transcript,
) -> Result<(), AuditError> {
    if t.of != of || t.entries != entries || t.chunk_len != chunk_len {
        return Err(AuditError::new(
            "transcript",
            format!(
                "header shape ({} × {} entries, chunk length {}) does not match the \
                 committed witness ({of} × {entries} entries, chunk length {chunk_len})",
                t.of, t.entries, t.chunk_len
            ),
        ));
    }
    if t.root != *root {
        return Err(AuditError::new(
            "transcript",
            format!(
                "header root {} does not match the committed root {root}",
                t.root
            ),
        ));
    }
    Ok(())
}

/// Reconstructs the full underlying witness from a committed witness and
/// its sidecar transcript text, authenticating **every** chunk: header
/// shape and root must match, chunk indexes must be exactly
/// `0..chunk_count` in order, and each chunk must fold to the committed
/// root through its authentication path.
pub fn open_witness(committed: &Witness, transcript: &str) -> Result<Witness, AuditError> {
    let (of, entries, chunk_len, root) = committed_parts(committed)?;
    let t = parse_transcript(transcript)?;
    check_header(of, entries, chunk_len, root, &t)?;
    let num_chunks = chunk_count(entries, chunk_len);
    if t.chunks.len() != num_chunks {
        return Err(AuditError::new(
            "transcript",
            format!(
                "transcript carries {} chunks, the commitment has {num_chunks}",
                t.chunks.len()
            ),
        ));
    }
    let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(entries);
    for (want, chunk) in t.chunks.iter().enumerate() {
        if chunk.index != want {
            return Err(AuditError::new(
                format!("transcript.chunk[{}]", chunk.index),
                format!("expected chunk {want} at this position — chunks dropped or reordered"),
            ));
        }
        verify_chunk(of, entries, chunk_len, root, chunk)?;
        pairs.extend_from_slice(&chunk.entries);
    }
    match of {
        "cover-dual" => Ok(Witness::CoverDual { dual: pairs }),
        "stack" => Ok(Witness::Stack { stack: pairs }),
        other => Err(AuditError::new(
            "witness.committed.of",
            format!("unknown committed witness kind `{other}`"),
        )),
    }
}

/// Audits a single chunk of a committed witness: finds chunk `index` in
/// the transcript and authenticates it against the committed root without
/// touching the other chunks. Returns a human-readable check line.
pub fn audit_chunk(
    committed: &Witness,
    transcript: &str,
    index: usize,
) -> Result<String, AuditError> {
    let (of, entries, chunk_len, root) = committed_parts(committed)?;
    let t = parse_transcript(transcript)?;
    check_header(of, entries, chunk_len, root, &t)?;
    let Some(chunk) = t.chunks.iter().find(|c| c.index == index) else {
        return Err(AuditError::new(
            format!("transcript.chunk[{index}]"),
            format!(
                "chunk {index} not present in the transcript ({} chunks committed)",
                chunk_count(entries, chunk_len)
            ),
        ));
    };
    verify_chunk(of, entries, chunk_len, root, chunk)?;
    Ok(format!(
        "chunk {index}: {} entries authenticated against root {root} \
         (path of {} digests)",
        chunk.entries.len(),
        chunk.auth.len()
    ))
}

/// The committed-witness analogue of [`audit`]: opens the commitment
/// (authenticating every chunk), then runs the full ordinary audit on the
/// reconstructed witness. The returned check list is the ordinary audit's,
/// prefixed with the commitment check.
pub fn audit_committed(
    instance: &Instance,
    algorithm: &str,
    solution: &Solution,
    claims: &Claims,
    committed: &Witness,
    transcript: &str,
) -> Result<Vec<String>, AuditError> {
    let (of, entries, chunk_len, root) = committed_parts(committed)?;
    let opened = open_witness(committed, transcript)?;
    let mut checks = vec![format!(
        "commitment: {entries} {of} entries in {} chunks (length {chunk_len}) \
         authenticated against root {root}",
        chunk_count(entries, chunk_len)
    )];
    checks.extend(audit(instance, algorithm, solution, claims, &opened)?);
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_witness(n: usize) -> Witness {
        Witness::Stack {
            stack: (0..n as u32).map(|e| (e, 0.5 + e as f64 * 0.25)).collect(),
        }
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = Hasher::new(TAG_LEAF).finish();
        let hex = d.to_string();
        assert_eq!(hex.len(), 64);
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&hex[..63]), None);
    }

    #[test]
    fn digest_is_sensitive_and_deterministic() {
        let h = |pairs: &[(u32, f64)]| leaf_hash(0, pairs);
        let base = h(&[(1, 2.0), (3, 4.0)]);
        assert_eq!(base, h(&[(1, 2.0), (3, 4.0)]), "deterministic");
        assert_ne!(base, h(&[(1, 2.0), (3, 4.000000001)]));
        assert_ne!(base, h(&[(3, 4.0), (1, 2.0)]), "order matters");
        assert_ne!(base, h(&[(1, 2.0)]), "length matters");
        assert_ne!(base, leaf_hash(1, &[(1, 2.0), (3, 4.0)]), "index matters");
    }

    #[test]
    fn commit_and_open_round_trip() {
        for n in [0usize, 1, 2, 3, 5, 8, 17] {
            for chunk_len in [1usize, 2, 3, 7, 64] {
                let w = stack_witness(n);
                let c = commit_witness(&w, chunk_len).unwrap();
                let Witness::Committed { entries, .. } = &c.witness else {
                    panic!("commit must yield a committed witness")
                };
                assert_eq!(*entries, n);
                let opened = open_witness(&c.witness, &c.transcript)
                    .unwrap_or_else(|e| panic!("n={n} chunk_len={chunk_len}: {e}"));
                assert_eq!(opened, w, "n={n} chunk_len={chunk_len}");
            }
        }
    }

    #[test]
    fn every_chunk_audits_individually() {
        let w = stack_witness(11);
        let c = commit_witness(&w, 3).unwrap();
        for k in 0..chunk_count(11, 3) {
            let line = audit_chunk(&c.witness, &c.transcript, k).unwrap();
            assert!(line.contains(&format!("chunk {k}")), "{line}");
        }
        let err = audit_chunk(&c.witness, &c.transcript, 99).unwrap_err();
        assert!(err.location.contains("chunk[99]"), "{err}");
    }

    #[test]
    fn shape_is_bound_into_the_root() {
        // Same entries, different chunk length → different root.
        let w = stack_witness(8);
        let a = commit_witness(&w, 2).unwrap();
        let b = commit_witness(&w, 4).unwrap();
        let root = |c: &Commitment| match &c.witness {
            Witness::Committed { root, .. } => *root,
            _ => unreachable!(),
        };
        assert_ne!(root(&a), root(&b));
        // Same pairs as a dual → different root (kind is bound).
        let Witness::Stack { stack } = &w else {
            unreachable!()
        };
        let dual = Witness::CoverDual {
            dual: stack.clone(),
        };
        assert_ne!(root(&a), root(&commit_witness(&dual, 2).unwrap()));
    }

    #[test]
    fn uncommittable_witnesses_are_rejected() {
        let err = commit_witness(&Witness::Maximality { blockers: vec![] }, 4).unwrap_err();
        assert!(err.message.contains("maximality"), "{err}");
        let err = commit_witness(&stack_witness(3), 0).unwrap_err();
        assert!(err.location.contains("chunk_len"), "{err}");
    }
}
