//! The sequential local-ratio algorithm for maximum weight matching
//! (Paz–Schwartzman style; Theorem 5.1 of the paper), in the ϕ-potential
//! formulation of Theorem 5.6.
//!
//! The central machine maintains `ϕ(v)` = total weight reductions applied to
//! edges incident to `v`. The *modified weight* of an edge `e = {u,v}` that
//! was never pushed is `w_e − ϕ(u) − ϕ(v)`. Selecting `e` applies the
//! reduction by adding its modified weight `m_e` to both `ϕ(u)` and `ϕ(v)`
//! and pushes `(e, m_e)`. Unwinding the stack greedily yields a matching of
//! weight at least `Σ m_e`, while `OPT ≤ 2 Σ m_e`.
//!
//! Because `ϕ` only grows, modified weights only shrink, so a *single pass*
//! over any edge order is exhaustive: an edge skipped while non-positive can
//! never become positive again. This is what lets the MapReduce driver
//! finish the tail of the instance in one central round.

use mrlr_graph::{EdgeId, Graph, VertexId};

use crate::types::{MatchingResult, POS_TOL};

/// Mutable matching local-ratio state (the central machine of Algorithm 4).
#[derive(Debug, Clone)]
pub struct MatchingLocalRatio {
    phi: Vec<f64>,
    stack: Vec<(EdgeId, f64)>,
    gain: f64,
}

impl MatchingLocalRatio {
    /// Fresh state for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        MatchingLocalRatio {
            phi: vec![0.0; n],
            stack: Vec::new(),
            gain: 0.0,
        }
    }

    /// Current potential of vertex `v`.
    pub fn phi(&self, v: VertexId) -> f64 {
        self.phi[v as usize]
    }

    /// The full potential vector.
    pub fn phis(&self) -> &[f64] {
        &self.phi
    }

    /// Modified weight of an edge `{u, v}` of original weight `w` that has
    /// not been pushed.
    #[inline]
    pub fn modified(&self, u: VertexId, v: VertexId, w: f64) -> f64 {
        w - self.phi[u as usize] - self.phi[v as usize]
    }

    /// True if the edge is still alive (positive modified weight).
    #[inline]
    pub fn alive(&self, u: VertexId, v: VertexId, w: f64) -> bool {
        self.modified(u, v, w) > POS_TOL
    }

    /// Attempts the local-ratio step on edge `id = {u, v}` with original
    /// weight `w`. If its modified weight is positive, applies the
    /// reduction, pushes it, and returns `true`.
    pub fn push(&mut self, id: EdgeId, u: VertexId, v: VertexId, w: f64) -> bool {
        let m = self.modified(u, v, w);
        if m <= POS_TOL {
            return false;
        }
        self.phi[u as usize] += m;
        self.phi[v as usize] += m;
        self.stack.push((id, m));
        self.gain += m;
        true
    }

    /// Number of stacked edges.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// The stack transcript `(e, m_e)` in push order — the re-checkable
    /// witness: replaying it reproduces `ϕ`, the unwound matching and the
    /// gain (see [`crate::api::witness::replay_matching_stack`]).
    pub fn stack(&self) -> &[(EdgeId, f64)] {
        &self.stack
    }

    /// Total gain `Σ m_e` (the certificate: `OPT ≤ 2 ×` this).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Unwinds the stack, adding edges greedily (latest pushed first) when
    /// both endpoints are free. Returns matching edge ids, ascending.
    pub fn unwind(&self, g: &Graph) -> Vec<EdgeId> {
        self.unwind_with(g.n(), |id| {
            let e = g.edge(id);
            (e.u, e.v, e.w)
        })
    }

    /// [`MatchingLocalRatio::unwind`] against any edge lookup — the
    /// streamed driver has no central [`Graph`], only the recorded
    /// endpoints of the `O(n log n)` stacked edges, which is all the
    /// unwind ever consults.
    pub fn unwind_with(
        &self,
        n: usize,
        edge: impl Fn(EdgeId) -> (VertexId, VertexId, f64),
    ) -> Vec<EdgeId> {
        let mut used = vec![false; n];
        let mut matching = Vec::new();
        for &(id, _) in self.stack.iter().rev() {
            let (u, v, _) = edge(id);
            if !used[u as usize] && !used[v as usize] {
                used[u as usize] = true;
                used[v as usize] = true;
                matching.push(id);
            }
        }
        matching.sort_unstable();
        matching
    }
}

/// Runs the sequential local-ratio matching algorithm: one pass over the
/// edges in the given order (any order is exhaustive; see module docs),
/// then unwinds.
pub fn local_ratio_matching_with_order(g: &Graph, order: &[EdgeId]) -> MatchingResult {
    let mut lr = MatchingLocalRatio::new(g.n());
    for &id in order {
        let e = g.edge(id);
        lr.push(id, e.u, e.v, e.w);
    }
    finish(g, lr, 1)
}

/// [`local_ratio_matching_with_order`] in natural edge order.
pub fn local_ratio_matching(g: &Graph) -> MatchingResult {
    let order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    local_ratio_matching_with_order(g, &order)
}

pub(crate) fn finish(g: &Graph, lr: MatchingLocalRatio, iterations: usize) -> MatchingResult {
    finish_with(g.n(), lr, iterations, |id| {
        let e = g.edge(id);
        (e.u, e.v, e.w)
    })
}

/// [`finish`] against any edge lookup (see
/// [`MatchingLocalRatio::unwind_with`]): unwinds and sums the matching
/// weight in ascending edge-id order — the same float summation order as
/// the materialized path, so results are bit-identical.
pub(crate) fn finish_with(
    n: usize,
    lr: MatchingLocalRatio,
    iterations: usize,
    edge: impl Fn(EdgeId) -> (VertexId, VertexId, f64),
) -> MatchingResult {
    let matching = lr.unwind_with(n, &edge);
    let weight: f64 = matching.iter().map(|&e| edge(e).2).sum();
    debug_assert!(
        weight + 1e-6 >= lr.gain(),
        "unwound matching weight {} below stack gain {}",
        weight,
        lr.gain()
    );
    MatchingResult {
        matching,
        weight,
        stack_gain: lr.gain(),
        stack: lr.stack,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_matching;
    use mrlr_graph::generators::{gnm, path, with_uniform_weights};
    use mrlr_graph::Edge;

    #[test]
    fn path_of_three_edges() {
        // Path 0-1-2-3 with weights 1, 10, 1: optimum picks the middle.
        let g = Graph::new(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 10.0),
                Edge::new(2, 3, 1.0),
            ],
        );
        let r = local_ratio_matching(&g);
        assert!(is_matching(&g, &r.matching));
        // 2-approx certificate: weight >= gain, OPT <= 2*gain.
        assert!(r.weight + 1e-9 >= r.stack_gain);
        assert!(r.weight >= 10.0 / 2.0);
    }

    #[test]
    fn single_pass_exhausts() {
        // After one pass in any order, every edge is dead or stacked.
        let g = with_uniform_weights(&gnm(30, 120, 5), 1.0, 10.0, 6);
        let mut lr = MatchingLocalRatio::new(g.n());
        for (i, e) in g.edges().iter().enumerate() {
            lr.push(i as EdgeId, e.u, e.v, e.w);
        }
        for e in g.edges() {
            assert!(!lr.alive(e.u, e.v, e.w));
        }
    }

    #[test]
    fn unwind_is_maximal_on_stack() {
        let g = path(6);
        let r = local_ratio_matching(&g);
        assert!(is_matching(&g, &r.matching));
        // On an unweighted path the local-ratio matching is maximal, hence
        // at least half of maximum (= 2 of floor(5/2)).
        assert!(r.matching.len() >= 2);
    }

    #[test]
    fn certificate_holds_randomly() {
        for seed in 0..8 {
            let g = with_uniform_weights(&gnm(24, 80, seed), 0.5, 20.0, seed + 100);
            let r = local_ratio_matching(&g);
            assert!(is_matching(&g, &r.matching));
            assert!(r.weight + 1e-6 >= r.stack_gain);
            assert!(r.certified_ratio(2.0) <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn order_changes_output_not_guarantee() {
        let g = with_uniform_weights(&gnm(20, 60, 3), 1.0, 9.0, 4);
        let forward = local_ratio_matching(&g);
        let rev: Vec<EdgeId> = (0..g.m() as EdgeId).rev().collect();
        let backward = local_ratio_matching_with_order(&g, &rev);
        for r in [&forward, &backward] {
            assert!(is_matching(&g, &r.matching));
            assert!(r.weight + 1e-6 >= r.stack_gain);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, vec![]);
        let r = local_ratio_matching(&g);
        assert!(r.matching.is_empty());
        assert_eq!(r.weight, 0.0);
    }
}
