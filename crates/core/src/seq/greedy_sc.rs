//! Sequential greedy and ε-greedy weighted set cover (Chvátal; the
//! `H_Δ`-approximation Section 4 parallelizes).
//!
//! Both variants carry a dual-fitting certificate: when a set of weight `w`
//! covers `d` new elements, each gets price `w/d`; the scaled prices
//! `price_j / H_Δ` (greedy) or `price_j / ((1+ε) H_Δ)` (ε-greedy) form a
//! feasible dual, so their sum lower-bounds OPT.

use mrlr_mapreduce::DetRng;
use mrlr_setsys::{ElemId, SetId, SetSystem};

use crate::types::CoverResult;

/// The harmonic number `H_k = Σ_{i=1..k} 1/i`.
pub fn harmonic(k: usize) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

/// Scales raw greedy prices `(j, price_j)` into the fitted dual
/// `(j, price_j / ((1+ε) h))`, sorted by element id — the re-checkable
/// witness all three greedy set-cover implementations emit (`h = H_Δ`).
/// Dual fitting (Lemma 4.2 / Chvátal's analysis) guarantees the fitted
/// vector is feasible, so its sum lower-bounds OPT.
pub fn fitted_dual(prices: &[(ElemId, f64)], eps: f64, h: f64) -> Vec<(ElemId, f64)> {
    let norm = (1.0 + eps) * h;
    let mut v: Vec<(ElemId, f64)> = prices.iter().map(|&(j, p)| (j, p / norm)).collect();
    v.sort_unstable_by_key(|&(j, _)| j);
    v
}

fn uncovered_count(set: &[u32], covered: &[bool]) -> usize {
    set.iter().filter(|&&j| !covered[j as usize]).count()
}

/// Chvátal's greedy: repeatedly add the set maximizing
/// `|S \ C| / w`. `H_Δ`-approximate; returns the dual-fitting bound.
pub fn greedy_set_cover(sys: &SetSystem) -> Result<CoverResult, String> {
    eps_greedy_set_cover(sys, 0.0, 0)
}

/// The ε-greedy variant (Kumar et al.): add any set whose ratio is within
/// `(1+ε)` of the best. `(1+ε) H_Δ`-approximate. With `eps = 0` this is
/// exactly greedy; with `eps > 0` ties are broken by `seed`.
pub fn eps_greedy_set_cover(sys: &SetSystem, eps: f64, seed: u64) -> Result<CoverResult, String> {
    assert!(eps >= 0.0 && eps.is_finite());
    if !sys.is_coverable() {
        return Err("instance is not coverable".into());
    }
    let m = sys.universe();
    let n = sys.n_sets();
    let mut covered = vec![false; m];
    let mut covered_count = 0usize;
    let mut chosen: Vec<SetId> = Vec::new();
    let mut picked = vec![false; n];
    let mut price_sum = 0.0f64;
    let mut prices: Vec<(ElemId, f64)> = Vec::new();
    let mut rng = DetRng::derive(seed, &[0x6567_7363]);
    let mut iterations = 0usize;

    while covered_count < m {
        iterations += 1;
        // Best current ratio.
        let mut best_ratio = 0.0f64;
        for (i, &is_picked) in picked.iter().enumerate() {
            if is_picked {
                continue;
            }
            let d = uncovered_count(sys.set(i as SetId), &covered);
            if d == 0 {
                continue;
            }
            best_ratio = best_ratio.max(d as f64 / sys.weight(i as SetId));
        }
        debug_assert!(
            best_ratio > 0.0,
            "coverable instance must have a useful set"
        );
        // Candidates within (1+eps) of the best; greedy (eps = 0) keeps the
        // argmax only.
        let threshold = best_ratio / (1.0 + eps);
        let candidates: Vec<usize> = (0..n)
            .filter(|&i| {
                if picked[i] {
                    return false;
                }
                let d = uncovered_count(sys.set(i as SetId), &covered);
                d > 0 && d as f64 / sys.weight(i as SetId) + 1e-15 >= threshold
            })
            .collect();
        let pick = if eps == 0.0 {
            candidates[0]
        } else {
            candidates[rng.range_usize(candidates.len())]
        };
        let d = uncovered_count(sys.set(pick as SetId), &covered);
        let price = sys.weight(pick as SetId) / d as f64;
        for &j in sys.set(pick as SetId) {
            if !covered[j as usize] {
                covered[j as usize] = true;
                covered_count += 1;
                price_sum += price;
                prices.push((j, price));
            }
        }
        picked[pick] = true;
        chosen.push(pick as SetId);
    }

    let h = harmonic(sys.max_set_size());
    let weight = sys.cover_weight(&chosen);
    chosen.sort_unstable();
    Ok(CoverResult {
        cover: chosen,
        weight,
        lower_bound: price_sum / ((1.0 + eps) * h),
        dual: fitted_dual(&prices, eps, h),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_setsys::generators::{bounded_set_size, greedy_trap, with_uniform_weights};

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        assert_eq!(harmonic(0), 0.0);
    }

    #[test]
    fn greedy_covers_and_certifies() {
        for seed in 0..5 {
            let sys = with_uniform_weights(bounded_set_size(60, 40, 6, seed), 1.0, 4.0, seed);
            let r = greedy_set_cover(&sys).unwrap();
            assert!(sys.covers(&r.cover));
            let h = harmonic(sys.max_set_size());
            assert!(
                r.weight <= h * r.lower_bound * (1.0 + 1e-9) + 1e-9,
                "greedy exceeded H_D bound: {} > {}",
                r.weight,
                h * r.lower_bound
            );
        }
    }

    #[test]
    fn eps_greedy_covers_and_certifies() {
        for seed in 0..5 {
            let sys = with_uniform_weights(bounded_set_size(60, 40, 6, seed), 1.0, 4.0, seed);
            let eps = 0.3;
            let r = eps_greedy_set_cover(&sys, eps, seed).unwrap();
            assert!(sys.covers(&r.cover));
            let bound = (1.0 + eps) * harmonic(sys.max_set_size());
            assert!(r.weight <= bound * r.lower_bound * (1.0 + 1e-9) + 1e-9);
        }
    }

    #[test]
    fn greedy_falls_into_the_trap() {
        // On the classic tight instance greedy pays H_m while OPT = 1 + ε.
        let m = 32;
        let sys = greedy_trap(m, 0.05);
        let r = greedy_set_cover(&sys).unwrap();
        assert!(sys.covers(&r.cover));
        let hm = harmonic(m);
        assert!(
            (r.weight - hm).abs() < 1e-9,
            "greedy should pay H_m = {hm}, paid {}",
            r.weight
        );
    }

    #[test]
    fn infeasible_rejected() {
        let sys = SetSystem::unit(2, vec![vec![0]]);
        assert!(greedy_set_cover(&sys).is_err());
    }

    #[test]
    fn greedy_is_deterministic_eps_greedy_seeded() {
        let sys = with_uniform_weights(bounded_set_size(40, 30, 5, 1), 1.0, 3.0, 1);
        assert_eq!(
            greedy_set_cover(&sys).unwrap().cover,
            greedy_set_cover(&sys).unwrap().cover
        );
        let a = eps_greedy_set_cover(&sys, 0.5, 7).unwrap();
        let b = eps_greedy_set_cover(&sys, 0.5, 7).unwrap();
        assert_eq!(a.cover, b.cover);
    }
}
