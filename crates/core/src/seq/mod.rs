//! Sequential reference implementations.
//!
//! These are (a) the exact subroutines the paper's central machine runs,
//! (b) standalone baselines, and (c) test oracles for the randomized and
//! MapReduce drivers.

pub mod greedy_graph;
pub mod greedy_sc;
pub mod local_ratio_bmatching;
pub mod local_ratio_matching;
pub mod local_ratio_sc;
pub mod misra_gries;

pub use greedy_graph::{
    degeneracy_colouring, greedy_colouring, greedy_colouring_with_order, greedy_maximal_clique,
    greedy_maximal_clique_with_order, greedy_mis, greedy_mis_with_order,
};
pub use greedy_sc::{eps_greedy_set_cover, fitted_dual, greedy_set_cover, harmonic};
pub use local_ratio_bmatching::{
    b_matching_multiplier, local_ratio_b_matching, local_ratio_b_matching_with_order,
    BMatchingLocalRatio,
};
pub use local_ratio_matching::{
    local_ratio_matching, local_ratio_matching_with_order, MatchingLocalRatio,
};
pub use local_ratio_sc::{local_ratio_set_cover, local_ratio_set_cover_with_order, ScLocalRatio};
pub use misra_gries::misra_gries_edge_colouring;
