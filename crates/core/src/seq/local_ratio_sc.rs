//! The sequential local-ratio algorithm for minimum weight set cover
//! (Bar-Yehuda & Even; Theorem 2.1 of the paper).
//!
//! The state object [`ScLocalRatio`] is also the *central-machine
//! subroutine* of the randomized Algorithm 1: it processes elements in any
//! order, reducing the residual weight of every set containing the element
//! by the minimum such residual; sets that hit zero enter the cover. The
//! reductions `ε_j` form a feasible dual, so `Σ ε_j ≤ OPT ≤ w(C) ≤ f Σ ε_j`.

use mrlr_setsys::{ElemId, SetId, SetSystem};

use crate::types::{CoverResult, POS_TOL};

/// Mutable local-ratio state over a set system's weights.
#[derive(Debug, Clone)]
pub struct ScLocalRatio {
    residual: Vec<f64>,
    dual: f64,
    reductions: Vec<(ElemId, f64)>,
}

impl ScLocalRatio {
    /// Starts with the system's original weights.
    pub fn new(weights: &[f64]) -> Self {
        ScLocalRatio {
            residual: weights.to_vec(),
            dual: 0.0,
            reductions: Vec::new(),
        }
    }

    /// Residual weight of set `i`.
    pub fn residual(&self, i: SetId) -> f64 {
        self.residual[i as usize]
    }

    /// True if set `i` has been driven to zero (is in the cover).
    pub fn in_cover(&self, i: SetId) -> bool {
        self.residual[i as usize] <= POS_TOL
    }

    /// Sum of reductions so far — a feasible dual, lower-bounding OPT.
    pub fn dual(&self) -> f64 {
        self.dual
    }

    /// Processes element `j`, whose containing sets are `tj`. If every
    /// containing set still has positive residual weight, performs the
    /// local-ratio reduction, records `(j, ε)` in the dual transcript and
    /// returns `Some(ε)`; if the element is already covered (some
    /// containing set has zero residual), returns `None`.
    ///
    /// # Panics
    /// Panics if `tj` is empty (an uncoverable element).
    pub fn process(&mut self, j: ElemId, tj: &[SetId]) -> Option<f64> {
        assert!(!tj.is_empty(), "element contained in no set");
        let mut eps = f64::INFINITY;
        for &i in tj {
            let w = self.residual[i as usize];
            if w <= POS_TOL {
                return None;
            }
            eps = eps.min(w);
        }
        for &i in tj {
            self.residual[i as usize] -= eps;
        }
        self.dual += eps;
        self.reductions.push((j, eps));
        Some(eps)
    }

    /// The recorded reductions as a dual vector `(j, ε_j)`, sorted by
    /// element id (each element is reduced at most once, so the order is
    /// canonical). Feasibility — `Σ_{j ∈ S_i} ε_j ≤ w_i` for every set —
    /// is what makes `Σ ε_j` a lower bound on OPT; see
    /// [`crate::api::witness::check_cover_dual`].
    pub fn dual_vector(&self) -> Vec<(ElemId, f64)> {
        let mut v = self.reductions.clone();
        v.sort_unstable_by_key(|&(j, _)| j);
        v
    }

    /// All sets currently in the cover, ascending.
    pub fn cover(&self) -> Vec<SetId> {
        (0..self.residual.len() as SetId)
            .filter(|&i| self.in_cover(i))
            .collect()
    }
}

/// Runs the sequential local-ratio set-cover algorithm, processing elements
/// in the order produced by `order` (Theorem 2.1 holds for *any* order;
/// Algorithm 1 exploits exactly this freedom).
///
/// Returns [`MrError::Infeasible`](mrlr_mapreduce::MrError::Infeasible)-style
/// panic-free result: the function checks coverability first.
pub fn local_ratio_set_cover_with_order<I>(sys: &SetSystem, order: I) -> Result<CoverResult, String>
where
    I: IntoIterator<Item = ElemId>,
{
    if !sys.is_coverable() {
        return Err("instance is not coverable".into());
    }
    let dual_view = sys.dual();
    let mut lr = ScLocalRatio::new(sys.weights());
    for j in order {
        lr.process(j, &dual_view[j as usize]);
    }
    let cover = lr.cover();
    debug_assert!(sys.covers(&cover), "local ratio must produce a cover");
    let weight = sys.cover_weight(&cover);
    Ok(CoverResult {
        cover,
        weight,
        lower_bound: lr.dual(),
        dual: lr.dual_vector(),
        iterations: 1,
    })
}

/// [`local_ratio_set_cover_with_order`] in natural element order.
pub fn local_ratio_set_cover(sys: &SetSystem) -> Result<CoverResult, String> {
    local_ratio_set_cover_with_order(sys, 0..sys.universe() as ElemId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_setsys::generators::{bounded_frequency, with_uniform_weights};

    #[test]
    fn covers_toy_instance() {
        // Sets: {0,1} w=1, {1,2} w=1, {2,3} w=1, {0,3} w=10
        let sys = SetSystem::new(
            4,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            vec![1.0, 1.0, 1.0, 10.0],
        );
        let r = local_ratio_set_cover(&sys).unwrap();
        assert!(sys.covers(&r.cover));
        assert!(r.lower_bound <= r.weight + 1e-9);
        // f = 2 here, so certified ratio at most 2.
        assert!(r.certified_ratio() <= 2.0 + 1e-9);
    }

    #[test]
    fn dual_bounds_weight_by_f() {
        for seed in 0..5 {
            let sys = with_uniform_weights(bounded_frequency(30, 400, 3, seed), 1.0, 10.0, seed);
            let f = sys.max_frequency() as f64;
            let r = local_ratio_set_cover(&sys).unwrap();
            assert!(sys.covers(&r.cover));
            assert!(
                r.weight <= f * r.lower_bound + 1e-6,
                "w {} > f*dual {}",
                r.weight,
                f * r.lower_bound
            );
        }
    }

    #[test]
    fn order_invariance_of_guarantee() {
        let sys = with_uniform_weights(bounded_frequency(20, 200, 2, 3), 1.0, 5.0, 3);
        let forward = local_ratio_set_cover(&sys).unwrap();
        let backward =
            local_ratio_set_cover_with_order(&sys, (0..sys.universe() as ElemId).rev()).unwrap();
        for r in [&forward, &backward] {
            assert!(sys.covers(&r.cover));
            assert!(r.certified_ratio() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn skips_covered_elements() {
        let sys = SetSystem::new(2, vec![vec![0, 1]], vec![3.0]);
        let mut lr = ScLocalRatio::new(sys.weights());
        let t = sys.dual();
        assert_eq!(lr.process(0, &t[0]), Some(3.0));
        // Element 1 is covered by the zero-weight set now.
        assert_eq!(lr.process(1, &t[1]), None);
        assert_eq!(lr.cover(), vec![0]);
        assert!((lr.dual() - 3.0).abs() < 1e-12);
        // The transcript records the one reduction only.
        assert_eq!(lr.dual_vector(), vec![(0, 3.0)]);
    }

    #[test]
    fn infeasible_detected() {
        let sys = SetSystem::unit(2, vec![vec![0]]);
        assert!(local_ratio_set_cover(&sys).is_err());
    }

    #[test]
    #[should_panic(expected = "no set")]
    fn empty_tj_panics() {
        ScLocalRatio::new(&[1.0]).process(0, &[]);
    }
}
