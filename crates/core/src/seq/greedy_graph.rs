//! Sequential greedy graph algorithms: maximal independent set, maximal
//! clique, and (Δ+1) vertex colouring.
//!
//! These are the classical one-pass algorithms: the baselines the paper's
//! hungry-greedy technique parallelizes (MIS, clique) and the per-group
//! subroutine of Algorithm 5 (colouring).

use mrlr_graph::{Graph, VertexId};

use crate::types::{ColouringResult, SelectionResult};

/// Greedy maximal independent set, scanning vertices in `order`.
pub fn greedy_mis_with_order(g: &Graph, order: &[VertexId]) -> SelectionResult {
    let adj = g.neighbours();
    let mut blocked = vec![false; g.n()];
    let mut chosen = vec![false; g.n()];
    for &v in order {
        if !blocked[v as usize] {
            chosen[v as usize] = true;
            blocked[v as usize] = true;
            for &w in &adj[v as usize] {
                blocked[w as usize] = true;
            }
        }
    }
    SelectionResult {
        vertices: (0..g.n() as VertexId)
            .filter(|&v| chosen[v as usize])
            .collect(),
        phases: 1,
        iterations: 1,
    }
}

/// Greedy maximal independent set in natural vertex order.
pub fn greedy_mis(g: &Graph) -> SelectionResult {
    let order: Vec<VertexId> = (0..g.n() as VertexId).collect();
    greedy_mis_with_order(g, &order)
}

/// Greedy maximal clique, scanning vertices in `order`: keeps a clique `K`
/// and its common-neighbour set, adding each scanned vertex that is
/// adjacent to all of `K`.
pub fn greedy_maximal_clique_with_order(g: &Graph, order: &[VertexId]) -> SelectionResult {
    let adj = g.neighbours();
    let n = g.n();
    if n == 0 {
        return SelectionResult {
            vertices: vec![],
            phases: 1,
            iterations: 1,
        };
    }
    // active[v]: v is adjacent to every clique member (candidates).
    let mut active = vec![true; n];
    let mut clique: Vec<VertexId> = Vec::new();
    for &v in order {
        if !active[v as usize] {
            continue;
        }
        clique.push(v);
        // New candidate set: active ∩ N(v).
        let mut next = vec![false; n];
        for &w in &adj[v as usize] {
            if active[w as usize] {
                next[w as usize] = true;
            }
        }
        next[v as usize] = false;
        active = next;
    }
    clique.sort_unstable();
    SelectionResult {
        vertices: clique,
        phases: 1,
        iterations: 1,
    }
}

/// Greedy maximal clique in natural vertex order.
pub fn greedy_maximal_clique(g: &Graph) -> SelectionResult {
    let order: Vec<VertexId> = (0..g.n() as VertexId).collect();
    greedy_maximal_clique_with_order(g, &order)
}

/// Greedy vertex colouring in `order`: each vertex takes the smallest
/// colour unused by its neighbours. Uses at most `Δ+1` colours.
pub fn greedy_colouring_with_order(g: &Graph, order: &[VertexId]) -> ColouringResult {
    let adj = g.neighbours();
    let n = g.n();
    let mut colour = vec![u32::MAX; n];
    let mut used_mark = vec![usize::MAX; g.max_degree() + 2];
    for (step, &v) in order.iter().enumerate() {
        for &w in &adj[v as usize] {
            let c = colour[w as usize];
            if c != u32::MAX {
                used_mark[c as usize] = step;
            }
        }
        let mut c = 0u32;
        while used_mark[c as usize] == step {
            c += 1;
        }
        colour[v as usize] = c;
    }
    // Vertices outside `order` stay uncoloured (u32::MAX) and don't count.
    let num_colours = colour
        .iter()
        .filter(|&&c| c != u32::MAX)
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    ColouringResult {
        colours: colour,
        num_colours,
        groups: 1,
    }
}

/// Greedy vertex colouring in natural order.
pub fn greedy_colouring(g: &Graph) -> ColouringResult {
    let order: Vec<VertexId> = (0..g.n() as VertexId).collect();
    greedy_colouring_with_order(g, &order)
}

/// Greedy colouring along a **degeneracy ordering** (smallest-last): uses at
/// most `degeneracy(g) + 1` colours — often far fewer than `Δ + 1`, e.g. on
/// the power-law "social network" families where `Δ ≫ degeneracy`. The
/// sequential quality reference for the Section 6 experiments.
pub fn degeneracy_colouring(g: &Graph) -> ColouringResult {
    let (_, ordering, _) = mrlr_graph::algo::core_decomposition(g);
    // Peeling order removes low-degree vertices first; colouring must go in
    // the *reverse* order so each vertex sees at most `degeneracy` coloured
    // neighbours when its turn comes.
    let order: Vec<VertexId> = ordering.into_iter().rev().collect();
    greedy_colouring_with_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_maximal_clique, is_maximal_independent_set, is_proper_colouring};
    use mrlr_graph::generators::{complete, cycle, gnm, gnp, star};

    #[test]
    fn mis_on_star_depends_on_order() {
        let g = star(5);
        // Centre first: MIS = {0}.
        let r = greedy_mis(&g);
        assert_eq!(r.vertices, vec![0]);
        assert!(is_maximal_independent_set(&g, &r.vertices));
        // Leaves first: MIS = all leaves.
        let order: Vec<VertexId> = vec![1, 2, 3, 4, 0];
        let r = greedy_mis_with_order(&g, &order);
        assert_eq!(r.vertices, vec![1, 2, 3, 4]);
        assert!(is_maximal_independent_set(&g, &r.vertices));
    }

    #[test]
    fn mis_random_graphs_maximal() {
        for seed in 0..6 {
            let g = gnm(40, 150, seed);
            let r = greedy_mis(&g);
            assert!(is_maximal_independent_set(&g, &r.vertices));
        }
    }

    #[test]
    fn clique_on_complete_takes_everything() {
        let g = complete(6);
        let r = greedy_maximal_clique(&g);
        assert_eq!(r.vertices.len(), 6);
        assert!(is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn clique_random_graphs_maximal() {
        for seed in 0..6 {
            let g = gnp(30, 0.4, seed);
            let r = greedy_maximal_clique(&g);
            assert!(is_maximal_clique(&g, &r.vertices), "seed {seed}");
        }
    }

    #[test]
    fn clique_empty_graph() {
        let g = Graph::new(4, vec![]);
        let r = greedy_maximal_clique(&g);
        assert_eq!(r.vertices.len(), 1); // a single vertex is a maximal clique
        assert!(is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn colouring_cycle() {
        // Even cycle: 2 colours; odd cycle: 3 (greedy may use up to 3).
        let g = cycle(6);
        let r = greedy_colouring(&g);
        assert!(is_proper_colouring(&g, &r.colours));
        assert!(r.num_colours <= 3);
        let g = cycle(7);
        let r = greedy_colouring(&g);
        assert!(is_proper_colouring(&g, &r.colours));
        assert!(r.num_colours <= 3);
    }

    #[test]
    fn colouring_uses_at_most_delta_plus_one() {
        for seed in 0..6 {
            let g = gnm(50, 300, seed);
            let r = greedy_colouring(&g);
            assert!(is_proper_colouring(&g, &r.colours));
            assert!(r.num_colours <= g.max_degree() + 1);
        }
    }

    #[test]
    fn degeneracy_colouring_respects_core_bound() {
        for seed in 0..5 {
            let g = gnm(40, 150, seed);
            let r = degeneracy_colouring(&g);
            assert!(is_proper_colouring(&g, &r.colours));
            let d = mrlr_graph::algo::degeneracy(&g);
            assert!(
                r.num_colours <= d + 1,
                "seed {seed}: {} colours > degeneracy {} + 1",
                r.num_colours,
                d
            );
        }
        // Power-law hubs: degeneracy ordering beats Delta + 1 by a lot.
        let hubby = star(50);
        let r = degeneracy_colouring(&hubby);
        assert_eq!(r.num_colours, 2);
    }
}
