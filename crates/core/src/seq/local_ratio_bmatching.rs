//! The sequential ε-adjusted local-ratio algorithm for maximum weight
//! b-matching (Appendix D of the paper).
//!
//! In a b-matching each vertex `v` may be matched by up to `b(v)` edges.
//! Selecting edge `e = {u,v}` with modified weight `m_e` reduces the other
//! edges at `u` by `m_e / b(u)` and at `v` by `m_e / b(v)`; `e` itself is
//! removed. With plain reductions a vertex's edges would need `b(v)` visits
//! each to die, so the MapReduce variant uses *ε-adjusted* reductions: an
//! edge is killed as soon as `w_e ≤ (1+ε)(ϕ(u)+ϕ(v))`, which costs a factor
//! `(1+2ε)`-ish in the guarantee: `(3 − 2/max{2,b} + 2ε)`-approximation
//! (Theorem D.1 + Appendix D.2).

use mrlr_graph::{EdgeId, Graph, VertexId};

use crate::types::{MatchingResult, POS_TOL};

/// Mutable ε-adjusted b-matching local-ratio state.
#[derive(Debug, Clone)]
pub struct BMatchingLocalRatio {
    phi: Vec<f64>,
    b: Vec<u32>,
    eps: f64,
    stack: Vec<(EdgeId, f64)>,
    gain: f64,
}

impl BMatchingLocalRatio {
    /// Fresh state. `b[v] ≥ 1` is the matching capacity of vertex `v`;
    /// `eps ≥ 0` is the adjustment parameter.
    pub fn new(b: &[u32], eps: f64) -> Self {
        assert!(b.iter().all(|&x| x >= 1), "capacities must be >= 1");
        assert!(eps >= 0.0 && eps.is_finite());
        BMatchingLocalRatio {
            phi: vec![0.0; b.len()],
            b: b.to_vec(),
            eps,
            stack: Vec::new(),
            gain: 0.0,
        }
    }

    /// Unadjusted modified weight of an unpushed edge.
    #[inline]
    pub fn modified(&self, u: VertexId, v: VertexId, w: f64) -> f64 {
        w - self.phi[u as usize] - self.phi[v as usize]
    }

    /// An edge is alive while `w > (1+ε)(ϕ(u)+ϕ(v))` and it was not pushed.
    #[inline]
    pub fn alive(&self, u: VertexId, v: VertexId, w: f64) -> bool {
        w - (1.0 + self.eps) * (self.phi[u as usize] + self.phi[v as usize]) > POS_TOL
    }

    /// Attempts the ε-adjusted local-ratio step. Pushes and returns `true`
    /// if the edge is alive.
    pub fn push(&mut self, id: EdgeId, u: VertexId, v: VertexId, w: f64) -> bool {
        if !self.alive(u, v, w) {
            return false;
        }
        let m = self.modified(u, v, w);
        debug_assert!(m > 0.0, "alive edge must have positive modified weight");
        self.phi[u as usize] += m / self.b[u as usize] as f64;
        self.phi[v as usize] += m / self.b[v as usize] as f64;
        self.stack.push((id, m));
        self.gain += m;
        true
    }

    /// Total gain `Σ m_e`; the certificate multiplier is
    /// `3 − 2/max{2, b_max} + 2ε`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Number of stacked edges.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// The stack transcript `(e, m_e)` in push order — the re-checkable
    /// witness (see [`crate::api::witness::replay_b_matching_stack`]).
    pub fn stack(&self) -> &[(EdgeId, f64)] {
        &self.stack
    }

    /// The potential vector.
    pub fn phis(&self) -> &[f64] {
        &self.phi
    }

    /// Unwinds greedily respecting capacities. Returns edge ids, ascending.
    pub fn unwind(&self, g: &Graph) -> Vec<EdgeId> {
        let mut load = vec![0u32; g.n()];
        let mut matching = Vec::new();
        for &(id, _) in self.stack.iter().rev() {
            let e = g.edge(id);
            if load[e.u as usize] < self.b[e.u as usize]
                && load[e.v as usize] < self.b[e.v as usize]
            {
                load[e.u as usize] += 1;
                load[e.v as usize] += 1;
                matching.push(id);
            }
        }
        matching.sort_unstable();
        matching
    }
}

/// The certificate multiplier of Theorem D.3: `3 − 2/max{2, b_max} + 2ε`.
pub fn b_matching_multiplier(b: &[u32], eps: f64) -> f64 {
    let bmax = b.iter().copied().max().unwrap_or(1).max(2) as f64;
    3.0 - 2.0 / bmax + 2.0 * eps
}

/// Runs the sequential ε-adjusted b-matching local ratio: one pass over the
/// edges in the given order (exhaustive — ϕ only grows, so dead edges stay
/// dead), then unwinds.
pub fn local_ratio_b_matching_with_order(
    g: &Graph,
    b: &[u32],
    eps: f64,
    order: &[EdgeId],
) -> MatchingResult {
    assert_eq!(b.len(), g.n());
    let mut lr = BMatchingLocalRatio::new(b, eps);
    for &id in order {
        let e = g.edge(id);
        lr.push(id, e.u, e.v, e.w);
    }
    let matching = lr.unwind(g);
    let weight: f64 = matching.iter().map(|&e| g.edge(e).w).sum();
    MatchingResult {
        matching,
        weight,
        stack_gain: lr.gain(),
        stack: lr.stack,
        iterations: 1,
    }
}

/// [`local_ratio_b_matching_with_order`] in natural edge order.
pub fn local_ratio_b_matching(g: &Graph, b: &[u32], eps: f64) -> MatchingResult {
    let order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    local_ratio_b_matching_with_order(g, b, eps, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_b_matching;
    use mrlr_graph::generators::{complete, gnm, star, with_uniform_weights};

    #[test]
    fn b_one_matches_matching_behaviour() {
        // With b = 1 and eps = 0 this degenerates to ordinary matching.
        let g = with_uniform_weights(&gnm(16, 40, 2), 1.0, 5.0, 3);
        let b = vec![1u32; g.n()];
        let r = local_ratio_b_matching(&g, &b, 0.0);
        assert!(is_b_matching(&g, &b, &r.matching));
    }

    #[test]
    fn star_capacity_respected() {
        // Star centre with b = 2 can take at most 2 leaves.
        let g = star(6);
        let mut b = vec![1u32; 6];
        b[0] = 2;
        let r = local_ratio_b_matching(&g, &b, 0.1);
        assert!(is_b_matching(&g, &b, &r.matching));
        assert!(r.matching.len() <= 2);
        // and the unwind actually uses the capacity
        assert_eq!(r.matching.len(), 2);
    }

    #[test]
    fn certificate_multiplier() {
        assert!((b_matching_multiplier(&[1, 1], 0.0) - 2.0).abs() < 1e-12);
        assert!((b_matching_multiplier(&[2, 2], 0.0) - 2.0).abs() < 1e-12);
        assert!((b_matching_multiplier(&[3, 1], 0.5) - (3.0 - 2.0 / 3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn certificate_holds_randomly() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(18, 60, seed), 0.5, 8.0, seed + 9);
            let b: Vec<u32> = (0..g.n()).map(|v| 1 + (v % 3) as u32).collect();
            let eps = 0.25;
            let r = local_ratio_b_matching(&g, &b, eps);
            assert!(is_b_matching(&g, &b, &r.matching));
            assert!(r.weight > 0.0);
            assert!(
                r.certified_ratio(b_matching_multiplier(&b, eps))
                    <= b_matching_multiplier(&b, eps) + 1e-6
            );
        }
    }

    #[test]
    fn one_pass_exhausts_eps_adjusted() {
        // An edge skipped because it was dead can never come back to life
        // (ϕ only grows), so a single pass is exhaustive over non-pushed
        // edges.
        let g = with_uniform_weights(&complete(10), 1.0, 4.0, 1);
        let b = vec![2u32; 10];
        let mut lr = BMatchingLocalRatio::new(&b, 0.2);
        let mut pushed = vec![false; g.m()];
        for (i, e) in g.edges().iter().enumerate() {
            pushed[i] = lr.push(i as EdgeId, e.u, e.v, e.w);
        }
        for (i, e) in g.edges().iter().enumerate() {
            if !pushed[i] {
                assert!(!lr.alive(e.u, e.v, e.w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacities")]
    fn zero_capacity_rejected() {
        BMatchingLocalRatio::new(&[0], 0.0);
    }
}
