//! Misra & Gries edge colouring: a constructive proof of Vizing's theorem
//! colouring any simple graph with at most `Δ + 1` colours.
//!
//! This is the per-group subroutine of the paper's `(1+o(1))Δ` edge
//! colouring (Remark 6.5 / Theorem 6.6): edges are randomly partitioned
//! into `κ` groups, each group is shipped to one machine, and that machine
//! runs this algorithm with a private palette of `Δ_i + 1` colours.
//!
//! Algorithm (per uncoloured edge `{u, v}`):
//! 1. build a *maximal fan* `F = [f_0 = v, f_1, …, f_k]` of `u`: each
//!    `(u, f_{i+1})` is coloured and its colour is free at `f_i`;
//! 2. pick `c` free at `u` and `d` free at `f_k`;
//! 3. invert the maximal `cd`-path through `u` (after which `d` is free at
//!    `u`);
//! 4. find the first fan prefix `[f_0 … f_j]` (still a valid fan after the
//!    inversion) with `d` free at `f_j`; rotate the prefix and colour
//!    `(u, f_j)` with `d`.

use mrlr_graph::{EdgeId, Graph, VertexId};

use crate::types::ColouringResult;

const NONE: u32 = u32::MAX;

struct Palette {
    /// `at[v][c]` = edge id coloured `c` at `v`, or `NONE`.
    at: Vec<Vec<u32>>,
    /// Colour of each edge, or `NONE`.
    colour: Vec<u32>,
    colours: usize,
}

impl Palette {
    fn new(n: usize, m: usize, colours: usize) -> Self {
        Palette {
            at: vec![vec![NONE; colours]; n],
            colour: vec![NONE; m],
            colours,
        }
    }

    fn is_free(&self, v: VertexId, c: u32) -> bool {
        self.at[v as usize][c as usize] == NONE
    }

    /// Smallest colour free at `v` (exists because palette size is Δ+1).
    fn free_colour(&self, v: VertexId) -> u32 {
        (0..self.colours as u32)
            .find(|&c| self.is_free(v, c))
            .expect("palette of size Delta+1 always has a free colour")
    }

    fn set(&mut self, g: &Graph, e: EdgeId, c: u32) {
        let edge = g.edge(e);
        debug_assert!(self.is_free(edge.u, c) && self.is_free(edge.v, c));
        self.colour[e as usize] = c;
        self.at[edge.u as usize][c as usize] = e;
        self.at[edge.v as usize][c as usize] = e;
    }

    fn unset(&mut self, g: &Graph, e: EdgeId) -> u32 {
        let c = self.colour[e as usize];
        debug_assert_ne!(c, NONE);
        let edge = g.edge(e);
        self.colour[e as usize] = NONE;
        self.at[edge.u as usize][c as usize] = NONE;
        self.at[edge.v as usize][c as usize] = NONE;
        c
    }
}

/// Colours `g` with at most `max_degree + 1` colours. Returns one colour
/// per edge.
pub fn misra_gries_edge_colouring(g: &Graph) -> ColouringResult {
    let delta = g.max_degree();
    let colours = delta + 1;
    let mut p = Palette::new(g.n(), g.m(), colours);
    let adj = g.adjacency();

    for eid in 0..g.m() as EdgeId {
        colour_edge(g, &adj, &mut p, eid);
    }

    let num_colours = p.colour.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    ColouringResult {
        colours: p.colour,
        num_colours,
        groups: 1,
    }
}

fn colour_edge(g: &Graph, adj: &[Vec<(VertexId, EdgeId)>], p: &mut Palette, eid: EdgeId) {
    let (u, v) = {
        let e = g.edge(eid);
        (e.u, e.v)
    };

    // 1. Maximal fan of u starting at v. fan[i] = (vertex, edge id of (u, fan[i])).
    let mut fan: Vec<(VertexId, EdgeId)> = vec![(v, eid)];
    let mut in_fan = vec![false; g.n()];
    in_fan[v as usize] = true;
    loop {
        let last = fan.last().unwrap().0;
        // A neighbour w of u extends the fan if (u,w) is coloured with a
        // colour free at `last`.
        let mut extended = false;
        for &(w, we) in &adj[u as usize] {
            if in_fan[w as usize] {
                continue;
            }
            let c = p.colour[we as usize];
            if c != NONE && p.is_free(last, c) {
                fan.push((w, we));
                in_fan[w as usize] = true;
                extended = true;
                break;
            }
        }
        if !extended {
            break;
        }
    }

    // 2. c free at u, d free at the fan's last vertex.
    let c = p.free_colour(u);
    let d = p.free_colour(fan.last().unwrap().0);

    if c != d {
        // 3. Invert the maximal cd-path starting at u: follow colour d from
        // u, then alternate c, d, swapping colours along the way.
        invert_cd_path(g, p, u, c, d);
    }
    // Now d is free at u (if c == d it was already).

    // 4. First fan prefix, valid post-inversion, whose tip has d free.
    let mut j = 0usize;
    loop {
        // Validity of prefix up to j: for i < j, colour(u, fan[i+1]) free at
        // fan[i]. We re-check incrementally as we advance.
        if p.is_free(fan[j].0, d) {
            break;
        }
        assert!(
            j + 1 < fan.len(),
            "Misra-Gries invariant violated: no fan prefix with d free"
        );
        let next_colour = p.colour[fan[j + 1].1 as usize];
        if next_colour == NONE || !p.is_free(fan[j].0, next_colour) {
            // The inversion broke the fan here; theory guarantees d is free
            // at fan[j] in that case — the assert above would have fired.
            // Defensive: fall back to re-scanning from scratch.
            panic!("Misra-Gries fan broke before a d-free tip was found");
        }
        j += 1;
    }

    // Rotate the prefix [0..=j]: edge (u, fan[i]) takes the colour of
    // (u, fan[i+1]); (u, fan[j]) becomes d.
    for i in 0..j {
        let ci = p.unset(g, fan[i + 1].1);
        p.set(g, fan[i].1, ci);
    }
    p.set(g, fan[j].1, d);
}

/// Inverts the maximal path starting at `u` whose first edge has colour `d`
/// and which alternates `d, c, d, …`. After inversion `d` is free at `u`.
fn invert_cd_path(g: &Graph, p: &mut Palette, u: VertexId, c: u32, d: u32) {
    // Collect the path.
    let mut path: Vec<EdgeId> = Vec::new();
    let mut cur = u;
    let mut want = d;
    loop {
        let e = p.at[cur as usize][want as usize];
        if e == NONE {
            break;
        }
        path.push(e);
        cur = g.edge(e).other(cur);
        want = if want == d { c } else { d };
    }
    // Swap colours along the path: unset all, then reset flipped.
    let old: Vec<u32> = path.iter().map(|&e| p.unset(g, e)).collect();
    for (&e, &col) in path.iter().zip(&old) {
        let flipped = if col == c { d } else { c };
        p.set(g, e, flipped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_proper_edge_colouring;
    use mrlr_graph::generators::{complete, complete_bipartite, cycle, gnm, gnp, path, star};

    fn check(g: &Graph) {
        let r = misra_gries_edge_colouring(g);
        assert!(
            is_proper_edge_colouring(g, &r.colours),
            "improper colouring on n={} m={}",
            g.n(),
            g.m()
        );
        assert!(
            r.num_colours <= g.max_degree() + 1,
            "used {} colours for Delta {}",
            r.num_colours,
            g.max_degree()
        );
    }

    #[test]
    fn simple_topologies() {
        check(&path(2));
        check(&path(10));
        check(&cycle(4));
        check(&cycle(7)); // odd cycle needs Delta+1 = 3
        check(&star(10));
        check(&complete(4));
        check(&complete(7)); // odd complete graph needs Delta+1
        check(&complete_bipartite(3, 5));
        check(&Graph::new(5, vec![]));
    }

    #[test]
    fn odd_cycle_needs_three() {
        let r = misra_gries_edge_colouring(&cycle(5));
        assert_eq!(r.num_colours, 3);
    }

    #[test]
    fn bipartite_often_delta() {
        // König: bipartite graphs are Δ-edge-colourable; MG guarantees only
        // Δ+1 but must stay within it.
        let g = complete_bipartite(4, 4);
        let r = misra_gries_edge_colouring(&g);
        assert!(r.num_colours <= 5);
        assert!(is_proper_edge_colouring(&g, &r.colours));
    }

    #[test]
    fn random_graphs_proper() {
        for seed in 0..10 {
            check(&gnm(30, 120, seed));
            check(&gnp(20, 0.5, seed));
        }
    }

    #[test]
    fn dense_random_graphs_proper() {
        for seed in 0..5 {
            check(&gnp(24, 0.9, seed));
        }
    }
}
