//! Chunked, push-based streaming parser for the unified instance format.
//!
//! The materialized parser ([`super::parse_instance`]) holds the whole
//! file text plus the whole [`Instance`] in memory — fine at experiment
//! scale, but it is exactly the step that violates the paper's regime at
//! `10^7`–`10^8` edges: the MRC model gives the *central* machine the same
//! `η = n^{1+µ}` words as everyone else, so no single host may ever hold
//! the `Θ(n^{1+c})` input records at once. This module keeps ingestion
//! inside that budget: a fixed-size buffer of bytes is fed through a
//! line-oriented state machine ([`StreamParser`]) that validates each
//! record exactly like the materialized parser (same 1-based line/column
//! errors, byte for byte — asserted by the chunking proptests) and pushes
//! it into a caller-supplied [`RecordSink`]. A sink may materialize an
//! [`Instance`] ([`InstanceSink`], what `parse_instance` is built on), or
//! scatter records straight onto the `M` machines of a cluster without a
//! central copy (see `mrlr_core::api::stream` and
//! `mrlr_mapreduce::ingest`).
//!
//! Central state while streaming is `O(n + m·µ_dedup)` words: the current
//! line, the header counts, one presence bit per vertex (`n`-line
//! accounting) and one 64-bit key per edge (duplicate detection — the
//! format promises simple graphs, and the streaming parser rejects
//! exactly what the materialized one rejects). Everything `Θ(m)`-sized
//! beyond that single dedup word per edge lives in the sink.

use std::collections::HashSet;

use mrlr_graph::{Edge, Graph, VertexId};
use mrlr_setsys::{ElemId, SetSystem};

use super::{tokens, IoError};
use crate::api::{BMatchingInstance, Instance, VertexWeightedGraph};

/// Default chunk size of the buffered drivers ([`read_instance`],
/// [`stream_records`]): 64 KiB — large enough to amortize syscalls, tiny
/// against any machine budget `η`.
pub const DEFAULT_BUF_LEN: usize = 64 * 1024;

pub(crate) fn err(line: usize, col: usize, message: impl Into<String>) -> IoError {
    IoError {
        line,
        col,
        message: message.into(),
    }
}

/// A cursor over the tokens of one line, tracking columns for errors.
pub(crate) struct Line<'a> {
    pub(crate) no: usize,
    toks: std::vec::IntoIter<(usize, &'a str)>,
    /// Column just past the last token, for "missing token" errors.
    end_col: usize,
}

impl<'a> Line<'a> {
    pub(crate) fn new(no: usize, raw: &'a str) -> Self {
        let toks = tokens(raw);
        let end_col = toks.last().map_or(1, |(c, t)| c + t.len());
        Line {
            no,
            toks: toks.into_iter(),
            end_col,
        }
    }

    pub(crate) fn next(&mut self, what: &str) -> Result<(usize, &'a str), IoError> {
        self.toks
            .next()
            .ok_or_else(|| err(self.no, self.end_col, format!("missing {what}")))
    }

    pub(crate) fn maybe_next(&mut self) -> Option<(usize, &'a str)> {
        self.toks.next()
    }

    pub(crate) fn finish(&mut self) -> Result<(), IoError> {
        match self.toks.next() {
            Some((col, tok)) => Err(err(self.no, col, format!("unexpected trailing `{tok}`"))),
            None => Ok(()),
        }
    }

    pub(crate) fn parse<T: std::str::FromStr>(
        &mut self,
        what: &str,
    ) -> Result<(usize, T), IoError> {
        let (col, tok) = self.next(what)?;
        let v = tok
            .parse()
            .map_err(|_| err(self.no, col, format!("bad {what} `{tok}`")))?;
        Ok((col, v))
    }
}

pub(crate) fn check_weight(w: f64, line: usize, col: usize, what: &str) -> Result<(), IoError> {
    if w.is_finite() && w > 0.0 {
        Ok(())
    } else {
        Err(err(
            line,
            col,
            format!("{what} {w} must be positive and finite"),
        ))
    }
}

/// The parsed problem line: instance kind plus the counts every record is
/// validated against. Delivered to the sink before any [`Record`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamHeader {
    /// `p graph <n> <m>`.
    Graph {
        /// Vertex count `n`.
        n: usize,
        /// Edge count `m`.
        m: usize,
    },
    /// `p vertex-weighted <n> <m>`.
    VertexWeighted {
        /// Vertex count `n`.
        n: usize,
        /// Edge count `m`.
        m: usize,
    },
    /// `p b-matching <n> <m> <eps>`.
    BMatching {
        /// Vertex count `n`.
        n: usize,
        /// Edge count `m`.
        m: usize,
        /// The reduction slack `ε > 0`.
        eps: f64,
    },
    /// `p set-system <universe> <nsets>`.
    SetSystem {
        /// Universe size.
        universe: usize,
        /// Number of sets.
        n_sets: usize,
    },
}

/// One validated record of the instance body. Records reach the sink
/// exactly as the materialized parser would have accepted them: endpoints
/// in range, no self-loops or duplicate edges, weights positive and
/// finite, `n`-lines unique, set elements strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An `e <u> <v> [<w>]` line. `index` is the edge id the materialized
    /// [`Graph`] would assign (0-based arrival order), so a sink can
    /// reproduce edge-id-keyed results bit for bit.
    Edge {
        /// 0-based arrival index (the [`Graph`] edge id).
        index: usize,
        /// First endpoint as written.
        u: VertexId,
        /// Second endpoint as written.
        v: VertexId,
        /// Weight (1.0 when omitted).
        w: f64,
    },
    /// An `n <v> <w>` line of a `vertex-weighted` instance.
    VertexWeight {
        /// Vertex id.
        v: usize,
        /// Its weight (positive, finite).
        w: f64,
    },
    /// An `n <v> <b>` line of a `b-matching` instance.
    Capacity {
        /// Vertex id.
        v: usize,
        /// Its capacity (`≥ 1`).
        b: u32,
    },
    /// An `s <w> [<elem> …]` line of a `set-system` instance.
    Set {
        /// 0-based arrival index (the set id).
        index: usize,
        /// Set weight (positive, finite).
        w: f64,
        /// Elements, strictly increasing.
        elems: Vec<ElemId>,
    },
}

/// Consumer of a record stream: the parser calls [`RecordSink::header`]
/// once, then [`RecordSink::record`] per validated body line, then
/// [`RecordSink::finish`] after the end-of-input checks pass. A sink may
/// reject a record with its own [`IoError`] (e.g. a machine over its word
/// budget); the parser propagates it unchanged.
pub trait RecordSink {
    /// What the sink assembles.
    type Out;
    /// Receives the problem line.
    fn header(&mut self, header: &StreamHeader) -> Result<(), IoError>;
    /// Receives one validated record.
    fn record(&mut self, record: Record) -> Result<(), IoError>;
    /// Called once after the parser's end-of-input checks (record counts,
    /// `n`-line completeness) succeed.
    fn finish(self, header: &StreamHeader) -> Result<Self::Out, IoError>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GraphKind {
    Graph,
    VertexWeighted,
    BMatching,
}

struct GraphBody {
    header: StreamHeader,
    kind: GraphKind,
    n: usize,
    m: usize,
    edges: usize,
    /// Normalized `(min, max)` endpoint keys of the edges seen so far —
    /// the one `Θ(m)` structure the central parser keeps (one word per
    /// edge; everything else it holds is `O(n)` or per-line).
    seen: HashSet<u64>,
    /// One presence bit per vertex (`n`-line accounting).
    vertex_done: Vec<bool>,
}

struct SetBody {
    header: StreamHeader,
    universe: usize,
    n_sets: usize,
    sets: usize,
}

enum State {
    /// Before the problem line.
    Start,
    Graph(GraphBody),
    Sets(SetBody),
    /// Sticky failure: every later call reports the original error.
    Failed(IoError),
}

/// The push-based streaming parser: feed byte chunks of any size (line
/// breaks may fall anywhere, UTF-8 sequences may split across chunks),
/// then [`StreamParser::finish`]. Errors are bit-identical to
/// [`super::parse_instance`] on the same prefix of input.
pub struct StreamParser<S: RecordSink> {
    sink: Option<S>,
    /// Bytes of the current, not-yet-terminated line.
    carry: Vec<u8>,
    line_no: usize,
    state: State,
}

impl<S: RecordSink> StreamParser<S> {
    /// A parser feeding `sink`.
    pub fn new(sink: S) -> Self {
        StreamParser {
            sink: Some(sink),
            carry: Vec::new(),
            line_no: 0,
            state: State::Start,
        }
    }

    /// Feeds the next chunk. The first error is sticky: once a chunk
    /// fails, this and [`StreamParser::finish`] keep returning it.
    pub fn feed(&mut self, mut bytes: &[u8]) -> Result<(), IoError> {
        if let State::Failed(e) = &self.state {
            return Err(e.clone());
        }
        while let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
            let (line, rest) = bytes.split_at(pos);
            bytes = &rest[1..];
            let r = if self.carry.is_empty() {
                self.handle_raw_line(line)
            } else {
                self.carry.extend_from_slice(line);
                let full = std::mem::take(&mut self.carry);
                self.handle_raw_line(&full)
            };
            if let Err(e) = r {
                self.state = State::Failed(e.clone());
                return Err(e);
            }
        }
        self.carry.extend_from_slice(bytes);
        Ok(())
    }

    /// [`StreamParser::feed`] for string input.
    pub fn feed_str(&mut self, text: &str) -> Result<(), IoError> {
        self.feed(text.as_bytes())
    }

    /// Flushes the final (unterminated) line, runs the end-of-input checks
    /// (`m`/`nsets` record counts, `n`-line completeness — file-level
    /// errors at line 0, column 0) and hands off to the sink.
    pub fn finish(mut self) -> Result<S::Out, IoError> {
        if let State::Failed(e) = &self.state {
            return Err(e.clone());
        }
        if !self.carry.is_empty() {
            let last = std::mem::take(&mut self.carry);
            self.handle_raw_line(&last)?;
        }
        let sink = self.sink.take().expect("sink taken once");
        match self.state {
            State::Failed(e) => Err(e),
            State::Start => Err(err(0, 0, "empty input: missing problem line `p <kind> …`")),
            State::Graph(body) => {
                if body.edges != body.m {
                    return Err(err(
                        0,
                        0,
                        format!(
                            "problem line promised {} edges, found {}",
                            body.m, body.edges
                        ),
                    ));
                }
                if body.kind != GraphKind::Graph {
                    if let Some(v) = body.vertex_done.iter().position(|&d| !d) {
                        return Err(err(0, 0, format!("vertex {v} has no `n` line")));
                    }
                }
                sink.finish(&body.header)
            }
            State::Sets(body) => {
                if body.sets != body.n_sets {
                    return Err(err(
                        0,
                        0,
                        format!(
                            "problem line promised {} sets, found {}",
                            body.n_sets, body.sets
                        ),
                    ));
                }
                sink.finish(&body.header)
            }
        }
    }

    fn handle_raw_line(&mut self, raw: &[u8]) -> Result<(), IoError> {
        self.line_no += 1;
        // `str::lines()` semantics: a line break is `\n` with one optional
        // preceding `\r` stripped.
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        let line =
            std::str::from_utf8(raw).map_err(|_| err(self.line_no, 0, "invalid UTF-8 in input"))?;
        let t = line.trim_start();
        let c_comment = t == "c" || (t.starts_with('c') && t[1..].starts_with(char::is_whitespace));
        if t.is_empty() || t.starts_with('#') || c_comment {
            return Ok(());
        }
        self.handle_line(Line::new(self.line_no, line))
    }

    fn handle_line(&mut self, mut line: Line<'_>) -> Result<(), IoError> {
        match &mut self.state {
            State::Start => {
                let (header, kind) = parse_problem_line(&mut line)?;
                self.sink
                    .as_mut()
                    .expect("sink alive while parsing")
                    .header(&header)?;
                self.state = match header {
                    StreamHeader::SetSystem { universe, n_sets } => State::Sets(SetBody {
                        header,
                        universe,
                        n_sets,
                        sets: 0,
                    }),
                    StreamHeader::Graph { n, m }
                    | StreamHeader::VertexWeighted { n, m }
                    | StreamHeader::BMatching { n, m, .. } => State::Graph(GraphBody {
                        header,
                        kind: kind.expect("graph headers carry a kind"),
                        n,
                        m,
                        edges: 0,
                        seen: HashSet::with_capacity(m.min(1 << 24) * 2),
                        vertex_done: if kind == Some(GraphKind::Graph) {
                            Vec::new()
                        } else {
                            vec![false; n]
                        },
                    }),
                };
                Ok(())
            }
            State::Graph(body) => {
                let record = graph_record(body, &mut line)?;
                self.sink
                    .as_mut()
                    .expect("sink alive while parsing")
                    .record(record)
            }
            State::Sets(body) => {
                let record = set_record(body, &mut line)?;
                self.sink
                    .as_mut()
                    .expect("sink alive while parsing")
                    .record(record)
            }
            State::Failed(e) => Err(e.clone()),
        }
    }
}

fn parse_problem_line(
    problem: &mut Line<'_>,
) -> Result<(StreamHeader, Option<GraphKind>), IoError> {
    let (pcol, ptag) = problem.next("problem line")?;
    if ptag != "p" {
        return Err(err(
            problem.no,
            pcol,
            format!("expected problem line `p <kind> …`, found `{ptag}`"),
        ));
    }
    let (kcol, kind) = problem.next("instance kind")?;
    match kind {
        "graph" | "vertex-weighted" | "b-matching" => {
            let (_, n) = problem.parse::<usize>("vertex count")?;
            let (_, m) = problem.parse::<usize>("edge count")?;
            let (header, gkind) = match kind {
                "graph" => (StreamHeader::Graph { n, m }, GraphKind::Graph),
                "vertex-weighted" => (
                    StreamHeader::VertexWeighted { n, m },
                    GraphKind::VertexWeighted,
                ),
                _ => {
                    let (ecol, eps) = problem.parse::<f64>("eps")?;
                    check_weight(eps, problem.no, ecol, "eps")?;
                    (StreamHeader::BMatching { n, m, eps }, GraphKind::BMatching)
                }
            };
            problem.finish()?;
            Ok((header, Some(gkind)))
        }
        "set-system" => {
            let (_, universe) = problem.parse::<usize>("universe size")?;
            let (_, n_sets) = problem.parse::<usize>("set count")?;
            problem.finish()?;
            Ok((StreamHeader::SetSystem { universe, n_sets }, None))
        }
        other => Err(err(
            problem.no,
            kcol,
            format!(
                "unknown instance kind `{other}` \
                 (expected graph, vertex-weighted, b-matching or set-system)"
            ),
        )),
    }
}

fn graph_record(body: &mut GraphBody, line: &mut Line<'_>) -> Result<Record, IoError> {
    let needs_vertex_data = body.kind != GraphKind::Graph;
    let n = body.n;
    let (tcol, tag) = line.next("record")?;
    match tag {
        "e" => {
            let (ucol, u) = line.parse::<VertexId>("endpoint")?;
            let (vcol, v) = line.parse::<VertexId>("endpoint")?;
            let w = match line.maybe_next() {
                None => 1.0,
                Some((wcol, tok)) => {
                    let w: f64 = tok
                        .parse()
                        .map_err(|_| err(line.no, wcol, format!("bad weight `{tok}`")))?;
                    check_weight(w, line.no, wcol, "weight")?;
                    w
                }
            };
            line.finish()?;
            if (u as usize) >= n {
                return Err(err(
                    line.no,
                    ucol,
                    format!("vertex {u} out of range 0..{n}"),
                ));
            }
            if (v as usize) >= n {
                return Err(err(
                    line.no,
                    vcol,
                    format!("vertex {v} out of range 0..{n}"),
                ));
            }
            if u == v {
                return Err(err(line.no, vcol, format!("self-loop at vertex {u}")));
            }
            let (a, b) = (u.min(v), u.max(v));
            if !body.seen.insert(((a as u64) << 32) | b as u64) {
                return Err(err(line.no, ucol, format!("duplicate edge ({a}, {b})")));
            }
            let index = body.edges;
            body.edges += 1;
            Ok(Record::Edge { index, u, v, w })
        }
        "n" if needs_vertex_data => {
            let (vcol, v) = line.parse::<usize>("vertex id")?;
            if v >= n {
                return Err(err(
                    line.no,
                    vcol,
                    format!("vertex {v} out of range 0..{n}"),
                ));
            }
            let record = if body.kind == GraphKind::BMatching {
                let (bcol, b) = line.parse::<u32>("capacity")?;
                if b == 0 {
                    return Err(err(line.no, bcol, "capacity must be at least 1"));
                }
                Record::Capacity { v, b }
            } else {
                let (wcol, w) = line.parse::<f64>("vertex weight")?;
                check_weight(w, line.no, wcol, "vertex weight")?;
                Record::VertexWeight { v, w }
            };
            line.finish()?;
            if std::mem::replace(&mut body.vertex_done[v], true) {
                return Err(err(line.no, vcol, format!("duplicate data for vertex {v}")));
            }
            Ok(record)
        }
        other => {
            let expected = if needs_vertex_data {
                "`e` or `n`"
            } else {
                "`e`"
            };
            Err(err(
                line.no,
                tcol,
                format!("unexpected record `{other}` (expected {expected})"),
            ))
        }
    }
}

fn set_record(body: &mut SetBody, line: &mut Line<'_>) -> Result<Record, IoError> {
    let (tcol, tag) = line.next("record")?;
    if tag != "s" {
        return Err(err(
            line.no,
            tcol,
            format!("unexpected record `{tag}` (expected `s`)"),
        ));
    }
    let (wcol, w) = line.parse::<f64>("set weight")?;
    check_weight(w, line.no, wcol, "set weight")?;
    let mut elems: Vec<ElemId> = Vec::new();
    while let Some((ecol, tok)) = line.maybe_next() {
        let j: ElemId = tok
            .parse()
            .map_err(|_| err(line.no, ecol, format!("bad element `{tok}`")))?;
        if (j as usize) >= body.universe {
            return Err(err(
                line.no,
                ecol,
                format!("element {j} out of range 0..{}", body.universe),
            ));
        }
        if let Some(&last) = elems.last() {
            if last >= j {
                return Err(err(
                    line.no,
                    ecol,
                    format!("elements must be strictly increasing ({last} then {j})"),
                ));
            }
        }
        elems.push(j);
    }
    let index = body.sets;
    body.sets += 1;
    Ok(Record::Set { index, w, elems })
}

/// The materializing sink behind [`super::parse_instance`]: accumulates
/// records into an [`Instance`]. Central memory is `Θ(n + m)` — use a
/// distributing sink instead when that exceeds the machine budget.
#[derive(Debug, Default)]
pub struct InstanceSink {
    edges: Vec<Edge>,
    /// Weight (vertex-weighted) or capacity (b-matching) per vertex; the
    /// parser guarantees completeness and uniqueness before `finish`.
    vertex_data: Vec<f64>,
    sets: Vec<Vec<ElemId>>,
    set_weights: Vec<f64>,
}

impl RecordSink for InstanceSink {
    type Out = Instance;

    fn header(&mut self, header: &StreamHeader) -> Result<(), IoError> {
        match *header {
            StreamHeader::Graph { m, .. } => self.edges.reserve(m),
            StreamHeader::VertexWeighted { n, m } | StreamHeader::BMatching { n, m, .. } => {
                self.edges.reserve(m);
                self.vertex_data = vec![0.0; n];
            }
            StreamHeader::SetSystem { n_sets, .. } => {
                self.sets.reserve(n_sets);
                self.set_weights.reserve(n_sets);
            }
        }
        Ok(())
    }

    fn record(&mut self, record: Record) -> Result<(), IoError> {
        match record {
            Record::Edge { u, v, w, .. } => self.edges.push(Edge::new(u, v, w)),
            Record::VertexWeight { v, w } => self.vertex_data[v] = w,
            Record::Capacity { v, b } => self.vertex_data[v] = b as f64,
            Record::Set { w, elems, .. } => {
                self.set_weights.push(w);
                self.sets.push(elems);
            }
        }
        Ok(())
    }

    fn finish(self, header: &StreamHeader) -> Result<Instance, IoError> {
        Ok(match *header {
            StreamHeader::Graph { n, .. } => Instance::Graph(Graph::new(n, self.edges)),
            StreamHeader::VertexWeighted { n, .. } => Instance::VertexWeighted(
                VertexWeightedGraph::new(Graph::new(n, self.edges), self.vertex_data),
            ),
            StreamHeader::BMatching { n, eps, .. } => Instance::BMatching(BMatchingInstance::new(
                Graph::new(n, self.edges),
                self.vertex_data.into_iter().map(|b| b as u32).collect(),
                eps,
            )),
            StreamHeader::SetSystem { universe, .. } => {
                Instance::SetSystem(SetSystem::new(universe, self.sets, self.set_weights))
            }
        })
    }
}

/// Streams `reader` through `sink` with a fixed `buf_len`-byte buffer.
/// I/O failures surface as file-level errors (line 0, column 0).
pub fn stream_records<R: std::io::Read, S: RecordSink>(
    mut reader: R,
    buf_len: usize,
    sink: S,
) -> Result<S::Out, IoError> {
    let mut parser = StreamParser::new(sink);
    let mut buf = vec![0u8; buf_len.max(1)];
    loop {
        let k = reader
            .read(&mut buf)
            .map_err(|e| err(0, 0, format!("read error: {e}")))?;
        if k == 0 {
            break;
        }
        parser.feed(&buf[..k])?;
    }
    parser.finish()
}

/// [`super::parse_instance`] over any reader: materializes the
/// [`Instance`] through a `buf_len`-byte window (the file text itself is
/// never held whole).
pub fn read_instance<R: std::io::Read>(reader: R, buf_len: usize) -> Result<Instance, IoError> {
    stream_records(reader, buf_len, InstanceSink::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{parse_instance, render_instance};
    use mrlr_graph::generators;

    fn sample() -> Instance {
        Instance::Graph(generators::with_uniform_weights(
            &generators::densified(20, 0.4, 3),
            1.0,
            9.0,
            3,
        ))
    }

    #[test]
    fn chunked_matches_materialized() {
        let inst = sample();
        let text = render_instance(&inst);
        for chunk in [1usize, 2, 3, 7, 64, 4096] {
            let mut p = StreamParser::new(InstanceSink::default());
            for c in text.as_bytes().chunks(chunk) {
                p.feed(c).unwrap();
            }
            assert_eq!(p.finish().unwrap(), inst, "chunk size {chunk}");
        }
    }

    #[test]
    fn reader_driver_matches() {
        let inst = sample();
        let text = render_instance(&inst);
        let got = read_instance(std::io::Cursor::new(text.as_bytes()), 13).unwrap();
        assert_eq!(got, inst);
    }

    #[test]
    fn errors_are_sticky() {
        let mut p = StreamParser::new(InstanceSink::default());
        let e1 = p.feed_str("p graph 2 1\ne 0 9\n").unwrap_err();
        let e2 = p.feed_str("e 0 1\n").unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(p.finish().unwrap_err(), e1);
    }

    #[test]
    fn crlf_and_missing_final_newline() {
        let text = "p graph 3 2\r\ne 0 1\r\ne 1 2";
        let inst = read_instance(std::io::Cursor::new(text.as_bytes()), 4).unwrap();
        assert_eq!(inst, parse_instance("p graph 3 2\ne 0 1\ne 1 2\n").unwrap());
    }

    #[test]
    fn prefix_errors_match_materialized() {
        let text = render_instance(&sample());
        for cut in 0..text.len().min(200) {
            let prefix = &text[..cut];
            let mut p = StreamParser::new(InstanceSink::default());
            let streamed = p.feed_str(prefix).and_then(|()| p.finish().map(|_| ()));
            let materialized = parse_instance(prefix).map(|_| ());
            assert_eq!(streamed, materialized, "prefix of {cut} bytes");
        }
    }
}
