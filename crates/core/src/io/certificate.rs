//! Certificate/witness serialization: the bridge between a solved
//! [`Report`](crate::api::Report) on disk and the offline auditor
//! ([`crate::api::witness::audit`] / `mrlr verify`).
//!
//! Witnesses round-trip **bit-exactly**: floats are written with `{:?}`
//! (the shortest representation that re-parses to the same bits) and read
//! back via [`parse_json`]'s raw number tokens, so
//! `parse_witness(witness_json(w)) == w` for every witness — replaying a
//! stored stack transcript reproduces the exact potentials of the
//! original run. The encoding is independent of host wall-clock, so full
//! certificates compose with
//! [`TimingMode::Masked`](super::report::TimingMode) and stay
//! byte-identical across `MRLR_THREADS` settings.
//!
//! Whether a serialized report *carries* its witness is the
//! [`CertificateMode`] knob (`mrlr solve --certificates full|summary`):
//! `Full` embeds the witness object, `Summary` keeps the pre-witness
//! scalar-only format. Only full reports can be re-verified offline.

use mrlr_graph::{EdgeId, VertexId};
use mrlr_setsys::ElemId;

use super::json::{parse_json, Json, JsonValue};
use super::IoError;
use crate::api::witness::Claims;
use crate::api::{Solution, Witness};
use crate::types::{ColouringResult, CoverResult, MatchingResult, SelectionResult};

/// Whether serialized certificates embed their witness payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertificateMode {
    /// Embed the full witness: the report is offline re-verifiable
    /// (`mrlr verify`). The default.
    #[default]
    Full,
    /// Scalar summary only (the pre-witness format): smaller reports that
    /// cannot be independently re-checked.
    Summary,
}

fn pairs_json<A: Copy + Into<u64>>(pairs: &[(A, f64)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(id, x)| Json::Arr(vec![Json::U64(id.into()), Json::F64(x)]))
            .collect(),
    )
}

/// A [`Witness`] as a JSON object (see the module docs for the format).
pub fn witness_json(w: &Witness) -> Json {
    let mut fields = vec![("kind", Json::str(w.kind()))];
    match w {
        Witness::CoverDual { dual } => fields.push(("dual", pairs_json(dual))),
        Witness::Stack { stack } => fields.push(("stack", pairs_json(stack))),
        Witness::Maximality { blockers } => fields.push((
            "blockers",
            Json::Arr(
                blockers
                    .iter()
                    .map(|&(v, w)| Json::Arr(vec![Json::U64(v as u64), Json::U64(w as u64)]))
                    .collect(),
            ),
        )),
        Witness::Properness {
            max_degree,
            colour_counts,
        } => {
            fields.push(("max_degree", Json::count(*max_degree)));
            fields.push((
                "colour_counts",
                Json::Arr(colour_counts.iter().map(|&c| Json::count(c)).collect()),
            ));
        }
        Witness::Committed {
            of,
            entries,
            chunk_len,
            root,
        } => {
            fields.push(("of", Json::str(of)));
            fields.push(("entries", Json::count(*entries)));
            fields.push(("chunk_len", Json::count(*chunk_len)));
            fields.push(("root", Json::str(root.to_string())));
        }
    }
    Json::Obj(fields)
}

fn field_err(location: &str, what: &str) -> IoError {
    IoError {
        line: 0,
        col: 0,
        message: format!("{location}: {what}"),
    }
}

fn need<'a>(v: &'a JsonValue, key: &str, location: &str) -> Result<&'a JsonValue, IoError> {
    v.get(key)
        .ok_or_else(|| field_err(location, &format!("missing field `{key}`")))
}

fn need_u64(v: &JsonValue, key: &str, location: &str) -> Result<u64, IoError> {
    need(v, key, location)?.as_u64().ok_or_else(|| {
        field_err(
            location,
            &format!("field `{key}` is not an unsigned integer"),
        )
    })
}

fn need_f64(v: &JsonValue, key: &str, location: &str) -> Result<f64, IoError> {
    need(v, key, location)?
        .as_f64()
        .ok_or_else(|| field_err(location, &format!("field `{key}` is not a number")))
}

fn need_str<'a>(v: &'a JsonValue, key: &str, location: &str) -> Result<&'a str, IoError> {
    need(v, key, location)?
        .as_str()
        .ok_or_else(|| field_err(location, &format!("field `{key}` is not a string")))
}

fn need_arr<'a>(v: &'a JsonValue, key: &str, location: &str) -> Result<&'a [JsonValue], IoError> {
    need(v, key, location)?
        .as_arr()
        .ok_or_else(|| field_err(location, &format!("field `{key}` is not an array")))
}

fn id_f64_pairs(items: &[JsonValue], location: &str) -> Result<Vec<(u32, f64)>, IoError> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                field_err(location, &format!("entry {i} is not an [id, value] pair"))
            })?;
            let id = pair[0]
                .as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .ok_or_else(|| field_err(location, &format!("entry {i}: bad id")))?;
            let x = pair[1]
                .as_f64()
                .ok_or_else(|| field_err(location, &format!("entry {i}: bad value")))?;
            Ok((id as u32, x))
        })
        .collect()
}

fn u32_list(items: &[JsonValue], location: &str) -> Result<Vec<u32>, IoError> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .map(|id| id as u32)
                .ok_or_else(|| field_err(location, &format!("entry {i} is not a u32")))
        })
        .collect()
}

/// Parses a [`witness_json`] object back into a [`Witness`], bit-exactly.
pub fn parse_witness(v: &JsonValue) -> Result<Witness, IoError> {
    let loc = "certificate.witness";
    match need_str(v, "kind", loc)? {
        "cover-dual" => Ok(Witness::CoverDual {
            dual: id_f64_pairs(need_arr(v, "dual", loc)?, "certificate.witness.dual")?
                .into_iter()
                .map(|(j, y)| (j as ElemId, y))
                .collect(),
        }),
        "stack" => Ok(Witness::Stack {
            stack: id_f64_pairs(need_arr(v, "stack", loc)?, "certificate.witness.stack")?
                .into_iter()
                .map(|(e, m)| (e as EdgeId, m))
                .collect(),
        }),
        "maximality" => {
            let items = need_arr(v, "blockers", loc)?;
            let blockers = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        field_err(
                            "certificate.witness.blockers",
                            &format!("entry {i} is not a [vertex, blocker] pair"),
                        )
                    })?;
                    let parse = |x: &JsonValue| {
                        x.as_u64()
                            .filter(|&id| id <= u32::MAX as u64)
                            .map(|id| id as VertexId)
                    };
                    match (parse(&pair[0]), parse(&pair[1])) {
                        (Some(a), Some(b)) => Ok((a, b)),
                        _ => Err(field_err(
                            "certificate.witness.blockers",
                            &format!("entry {i}: bad vertex id"),
                        )),
                    }
                })
                .collect::<Result<_, _>>()?;
            Ok(Witness::Maximality { blockers })
        }
        "committed" => {
            let root_hex = need_str(v, "root", loc)?;
            let root = crate::api::commit::Digest::from_hex(root_hex).ok_or_else(|| {
                field_err(
                    "certificate.witness.root",
                    "not a 64-hex-digit commitment digest",
                )
            })?;
            Ok(Witness::Committed {
                of: need_str(v, "of", loc)?.to_string(),
                entries: need_u64(v, "entries", loc)? as usize,
                chunk_len: need_u64(v, "chunk_len", loc)? as usize,
                root,
            })
        }
        "properness" => Ok(Witness::Properness {
            max_degree: need_u64(v, "max_degree", loc)? as usize,
            colour_counts: need_arr(v, "colour_counts", loc)?
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    item.as_u64().map(|c| c as usize).ok_or_else(|| {
                        field_err(
                            "certificate.witness.colour_counts",
                            &format!("entry {i} is not a count"),
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        }),
        other => Err(field_err(loc, &format!("unknown witness kind `{other}`"))),
    }
}

/// A report re-loaded from its JSON serialization: everything the offline
/// auditor needs (metrics and wall-clock are ignored — they are metered
/// observations, not claims a witness can support).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredReport {
    /// Registry key of the algorithm.
    pub algorithm: String,
    /// Backend tag (`seq` / `rlr` / `mr`).
    pub backend: String,
    /// The typed solution.
    pub solution: Solution,
    /// The scalar certificate claims.
    pub claims: Claims,
    /// The witness, when the report was written with
    /// [`CertificateMode::Full`].
    pub witness: Option<Witness>,
}

fn parse_solution(v: &JsonValue) -> Result<Solution, IoError> {
    let loc = "solution";
    match need_str(v, "type", loc)? {
        "cover" => Ok(Solution::Cover(CoverResult {
            cover: u32_list(need_arr(v, "sets", loc)?, "solution.sets")?,
            weight: need_f64(v, "weight", loc)?,
            lower_bound: need_f64(v, "lower_bound", loc)?,
            // The dual transcript travels in the certificate witness, not
            // the solution object.
            dual: vec![],
            iterations: need_u64(v, "iterations", loc)? as usize,
        })),
        "matching" => Ok(Solution::Matching(MatchingResult {
            matching: u32_list(need_arr(v, "edges", loc)?, "solution.edges")?,
            weight: need_f64(v, "weight", loc)?,
            stack_gain: need_f64(v, "stack_gain", loc)?,
            stack: vec![],
            iterations: need_u64(v, "iterations", loc)? as usize,
        })),
        "selection" => Ok(Solution::Selection(SelectionResult {
            vertices: u32_list(need_arr(v, "vertices", loc)?, "solution.vertices")?,
            phases: need_u64(v, "phases", loc)? as usize,
            iterations: need_u64(v, "iterations", loc)? as usize,
        })),
        "colouring" => Ok(Solution::Colouring(ColouringResult {
            colours: u32_list(need_arr(v, "colours", loc)?, "solution.colours")?,
            num_colours: need_u64(v, "num_colours", loc)? as usize,
            groups: need_u64(v, "groups", loc)? as usize,
        })),
        other => Err(field_err(loc, &format!("unknown solution type `{other}`"))),
    }
}

/// Parses the JSON written by `mrlr solve --format json` (equivalently
/// [`super::report::report_json`]) back into a [`StoredReport`]. Syntax
/// errors carry line/column; structural errors name the missing field.
pub fn parse_report(text: &str) -> Result<StoredReport, IoError> {
    let root = parse_json(text)?;
    parse_report_value(&root)
}

/// [`parse_report`] over an already-parsed [`JsonValue`] (one slot of a
/// batch document, say).
pub fn parse_report_value(root: &JsonValue) -> Result<StoredReport, IoError> {
    let cert = need(root, "certificate", "report")?;
    let ratio =
        match need(cert, "certified_ratio", "certificate")? {
            JsonValue::Null => None,
            v => Some(v.as_f64().ok_or_else(|| {
                field_err("certificate", "field `certified_ratio` is not a number")
            })?),
        };
    let witness = match cert.get("witness") {
        None | Some(JsonValue::Null) => None,
        Some(w) => Some(parse_witness(w)?),
    };
    Ok(StoredReport {
        algorithm: need_str(root, "algorithm", "report")?.to_string(),
        backend: need_str(root, "backend", "report")?.to_string(),
        solution: parse_solution(need(root, "solution", "report")?)?,
        claims: Claims {
            feasible: need(cert, "feasible", "certificate")?
                .as_bool()
                .ok_or_else(|| field_err("certificate", "field `feasible` is not a bool"))?,
            objective: need_f64(cert, "objective", "certificate")?,
            certified_ratio: ratio,
        },
        witness,
    })
}

/// One slot of a parsed batch document: either a stored report (the job
/// succeeded and made claims) or the per-slot error the batch recorded
/// (no claims to audit).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchSlot {
    /// A stored report, auditable like any single-report document
    /// (boxed: a report dwarfs the error string next door).
    Report(Box<StoredReport>),
    /// The error string the batch isolated into this slot.
    Error(String),
}

/// A `mrlr batch --format json` document re-loaded from disk: the
/// manifest-relative instance paths and the `results[instance][job]`
/// grid. `mrlr verify` audits every report slot against its instance.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredBatch {
    /// Instance paths as recorded by the batch (relative to the
    /// manifest, hence to the document's own directory).
    pub instances: Vec<String>,
    /// One row per instance, one slot per job.
    pub results: Vec<Vec<BatchSlot>>,
}

/// True if `root` looks like a batch document (has a `results` grid)
/// rather than a single report.
pub fn is_batch_document(root: &JsonValue) -> bool {
    root.get("results").is_some()
}

/// Parses the JSON written by `mrlr batch --format json` back into a
/// [`StoredBatch`]. Structural errors are located as
/// `results[i][j]: …` so a bad slot in a big grid is findable.
pub fn parse_batch(text: &str) -> Result<StoredBatch, IoError> {
    let root = parse_json(text)?;
    let instances = need_arr(&root, "instances", "batch")?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                field_err(
                    "batch.instances",
                    &format!("entry {i} is not a path string"),
                )
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rows = need_arr(&root, "results", "batch")?;
    if rows.len() != instances.len() {
        return Err(field_err(
            "batch",
            &format!(
                "{} result rows for {} instances",
                rows.len(),
                instances.len()
            ),
        ));
    }
    let results = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let slots = row
                .as_arr()
                .ok_or_else(|| field_err("batch", &format!("results[{i}] is not an array")))?;
            slots
                .iter()
                .enumerate()
                .map(
                    |(j, slot)| match slot.get("error").and_then(JsonValue::as_str) {
                        Some(e) => Ok(BatchSlot::Error(e.to_string())),
                        None => parse_report_value(slot)
                            .map(|r| BatchSlot::Report(Box::new(r)))
                            .map_err(|e| field_err(&format!("results[{i}][{j}]"), &e.message)),
                    },
                )
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StoredBatch { instances, results })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(w: &Witness) -> Witness {
        let text = witness_json(w).render();
        parse_witness(&parse_json(&text).unwrap()).unwrap()
    }

    #[test]
    fn witnesses_round_trip_bit_exactly() {
        let cases = vec![
            Witness::CoverDual {
                dual: vec![(0, 0.1), (7, 1.0 / 3.0), (9, 5e-324)],
            },
            Witness::CoverDual { dual: vec![] },
            Witness::Stack {
                stack: vec![(3, 2.5), (1, 0.1 + 0.2)],
            },
            Witness::Maximality {
                blockers: vec![(0, 4), (2, 4)],
            },
            Witness::Properness {
                max_degree: 7,
                colour_counts: vec![3, 2, 1],
            },
            Witness::Committed {
                of: "stack".into(),
                entries: 1234,
                chunk_len: 256,
                root: crate::api::commit::Hasher::new(1).finish(),
            },
        ];
        for w in &cases {
            assert_eq!(&round_trip(w), w);
        }
    }

    #[test]
    fn malformed_witnesses_are_located() {
        let bad = parse_json("{\"kind\": \"cover-dual\", \"dual\": [[1]]}").unwrap();
        let err = parse_witness(&bad).unwrap_err();
        assert!(err.message.contains("witness.dual"), "{err}");
        let unknown = parse_json("{\"kind\": \"seance\"}").unwrap();
        assert!(parse_witness(&unknown).is_err());
    }

    #[test]
    fn batch_documents_parse_with_located_slots() {
        use crate::api::{Instance, Registry};
        use crate::io::report::{report_json_with, TimingMode};
        use crate::io::Json;
        use mrlr_graph::generators;

        let g = generators::with_uniform_weights(&generators::densified(20, 0.4, 3), 1.0, 9.0, 3);
        let cfg = crate::mr::MrConfig::auto(20, g.m(), 0.3, 3);
        let report = Registry::with_defaults()
            .solve("matching", &Instance::Graph(g), &cfg)
            .unwrap();
        let slot = report_json_with(&report, TimingMode::Masked, CertificateMode::Full);
        let doc = Json::Obj(vec![
            (
                "instances",
                Json::Arr(vec![Json::str("g.inst"), Json::str("h.inst")]),
            ),
            ("jobs", Json::Arr(vec![])),
            (
                "results",
                Json::Arr(vec![
                    Json::Arr(vec![
                        slot.clone(),
                        Json::Obj(vec![("error", Json::str("boom"))]),
                    ]),
                    Json::Arr(vec![slot]),
                ]),
            ),
        ])
        .render();
        assert!(is_batch_document(&parse_json(&doc).unwrap()));
        let batch = parse_batch(&doc).unwrap();
        assert_eq!(batch.instances, vec!["g.inst", "h.inst"]);
        assert_eq!(batch.results.len(), 2);
        assert!(matches!(&batch.results[0][0], BatchSlot::Report(r) if r.algorithm == "matching"));
        assert_eq!(batch.results[0][1], BatchSlot::Error("boom".into()));

        // A single report is not a batch document.
        let single = parse_json("{\"algorithm\": \"x\"}").unwrap();
        assert!(!is_batch_document(&single));

        // A mangled slot is located by its grid position.
        let bad = doc.replace("\"solution\"", "\"solution_gone\"");
        let err = parse_batch(&bad).unwrap_err();
        assert!(err.message.contains("results[0][0]"), "{err}");
    }

    #[test]
    fn report_round_trips_through_disk_format() {
        use crate::api::{Instance, Registry};
        use crate::io::report::{report_json_with, TimingMode};
        use mrlr_graph::generators;

        let g = generators::with_uniform_weights(&generators::densified(25, 0.4, 2), 1.0, 9.0, 2);
        let cfg = crate::mr::MrConfig::auto(25, g.m(), 0.3, 2);
        let instance = Instance::Graph(g);
        let report = Registry::with_defaults()
            .solve("matching", &instance, &cfg)
            .unwrap();

        let full = report_json_with(&report, TimingMode::Masked, CertificateMode::Full).render();
        let stored = parse_report(&full).unwrap();
        assert_eq!(stored.algorithm, "matching");
        assert_eq!(stored.backend, "mr");
        assert_eq!(stored.witness.as_ref(), Some(&report.certificate.witness));
        let Solution::Matching(m) = &stored.solution else {
            panic!("matching solution expected")
        };
        let Solution::Matching(orig) = &report.solution else {
            panic!()
        };
        assert_eq!(m.matching, orig.matching);
        assert_eq!(m.weight.to_bits(), orig.weight.to_bits());
        assert_eq!(m.stack_gain.to_bits(), orig.stack_gain.to_bits());

        // Summary mode carries no witness.
        let summary =
            report_json_with(&report, TimingMode::Masked, CertificateMode::Summary).render();
        assert!(parse_report(&summary).unwrap().witness.is_none());
    }
}
