//! Machine-readable serialization of [`Report`]s: JSON, CSV and text.
//!
//! The JSON tree is deterministic — field order is fixed, floats use the
//! exact `{:?}` representation — so two bit-identical reports serialize to
//! byte-identical documents. Host wall-clock is the one nondeterministic
//! ingredient; [`TimingMode::Masked`] zeroes every wall-clock field
//! (`Report::wall`, the nanosecond fields of each
//! [`SuperstepTiming`]) while keeping the
//! deterministic structure (pass/superstep indices, task counts), which is
//! what the CLI smoke tests pin against golden files across
//! `MRLR_THREADS` settings.

use mrlr_mapreduce::{Metrics, SuperstepTiming};

use super::certificate::{witness_json, CertificateMode};
use super::json::Json;
use crate::api::{Report, Solution};

/// Whether serialized reports carry real host wall-clock or zeroes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Real nanosecond timings (nondeterministic across runs).
    Real,
    /// Wall-clock fields forced to 0: output is a pure function of the
    /// model-level run, bit-identical at every thread count.
    Masked,
}

impl TimingMode {
    fn nanos(self, real: u64) -> u64 {
        match self {
            TimingMode::Real => real,
            TimingMode::Masked => 0,
        }
    }
}

/// The typed solution as a JSON object with a `type` tag.
pub fn solution_json(solution: &Solution) -> Json {
    match solution {
        Solution::Cover(c) => Json::Obj(vec![
            ("type", Json::str("cover")),
            (
                "sets",
                Json::Arr(c.cover.iter().map(|&s| Json::U64(s as u64)).collect()),
            ),
            ("weight", Json::F64(c.weight)),
            ("lower_bound", Json::F64(c.lower_bound)),
            ("iterations", Json::count(c.iterations)),
        ]),
        Solution::Matching(m) => Json::Obj(vec![
            ("type", Json::str("matching")),
            (
                "edges",
                Json::Arr(m.matching.iter().map(|&e| Json::U64(e as u64)).collect()),
            ),
            ("weight", Json::F64(m.weight)),
            ("stack_gain", Json::F64(m.stack_gain)),
            ("iterations", Json::count(m.iterations)),
        ]),
        Solution::Selection(s) => Json::Obj(vec![
            ("type", Json::str("selection")),
            (
                "vertices",
                Json::Arr(s.vertices.iter().map(|&v| Json::U64(v as u64)).collect()),
            ),
            ("phases", Json::count(s.phases)),
            ("iterations", Json::count(s.iterations)),
        ]),
        Solution::Colouring(c) => Json::Obj(vec![
            ("type", Json::str("colouring")),
            (
                "colours",
                Json::Arr(c.colours.iter().map(|&x| Json::U64(x as u64)).collect()),
            ),
            ("num_colours", Json::count(c.num_colours)),
            ("groups", Json::count(c.groups)),
        ]),
    }
}

fn timing_json(t: &SuperstepTiming, timing: TimingMode) -> Json {
    Json::Obj(vec![
        ("superstep", Json::count(t.superstep)),
        ("wall_nanos", Json::U64(timing.nanos(t.wall_nanos))),
        (
            "max_machine_nanos",
            Json::U64(timing.nanos(t.max_machine_nanos)),
        ),
        (
            "sum_machine_nanos",
            Json::U64(timing.nanos(t.sum_machine_nanos)),
        ),
        ("tasks", Json::count(t.tasks)),
    ])
}

/// Cluster [`Metrics`] as JSON, including per-round detail and the
/// executor-pass timings (masked per `timing`).
pub fn metrics_json(m: &Metrics, timing: TimingMode) -> Json {
    Json::Obj(vec![
        ("machines", Json::count(m.machines)),
        ("capacity", Json::count(m.capacity)),
        ("rounds", Json::count(m.rounds)),
        ("supersteps", Json::count(m.supersteps)),
        ("total_message_words", Json::count(m.total_message_words)),
        ("peak_machine_words", Json::count(m.peak_machine_words)),
        ("peak_out_words", Json::count(m.peak_out_words)),
        ("peak_in_words", Json::count(m.peak_in_words)),
        ("peak_central_words", Json::count(m.peak_central_words)),
        (
            "per_round",
            Json::Arr(
                m.per_round
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("round", Json::count(r.round)),
                            ("kind", Json::str(r.kind.to_string())),
                            ("max_out", Json::count(r.max_out)),
                            ("max_in", Json::count(r.max_in)),
                            ("total", Json::count(r.total)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations",
            Json::Arr(
                m.violations
                    .iter()
                    .map(|v| {
                        Json::Obj(vec![
                            ("round", Json::count(v.round)),
                            ("machine", Json::count(v.machine)),
                            ("kind", Json::str(v.kind.to_string())),
                            ("used", Json::count(v.used)),
                            ("capacity", Json::count(v.capacity)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "superstep_timings",
            Json::Arr(
                m.superstep_timings
                    .iter()
                    .map(|t| timing_json(t, timing))
                    .collect(),
            ),
        ),
        (
            "total_wall_nanos",
            Json::U64(timing.nanos(m.total_wall_nanos())),
        ),
    ])
}

/// One solved [`Report`] as a JSON object with a full (re-verifiable)
/// certificate — shorthand for [`report_json_with`] at
/// [`CertificateMode::Full`].
pub fn report_json(report: &Report<Solution>, timing: TimingMode) -> Json {
    report_json_with(report, timing, CertificateMode::Full)
}

/// One solved [`Report`] as a JSON object. With
/// [`CertificateMode::Full`] the certificate embeds its
/// [`Witness`](crate::api::Witness), making the document independently
/// re-verifiable by `mrlr verify` ([`crate::api::witness::audit`]); with
/// [`CertificateMode::Summary`] only the scalar summary is written.
pub fn report_json_with(
    report: &Report<Solution>,
    timing: TimingMode,
    certificates: CertificateMode,
) -> Json {
    let mut cert_fields = vec![
        ("feasible", Json::Bool(report.certificate.feasible)),
        ("objective", Json::F64(report.certificate.objective)),
        (
            "certified_ratio",
            Json::opt_f64(report.certificate.certified_ratio),
        ),
        ("detail", Json::str(&*report.certificate.detail)),
    ];
    if certificates == CertificateMode::Full {
        cert_fields.push(("witness", witness_json(&report.certificate.witness)));
    }
    Json::Obj(vec![
        ("algorithm", Json::str(report.algorithm)),
        ("backend", Json::str(report.backend.to_string())),
        ("solution", solution_json(&report.solution)),
        ("certificate", Json::Obj(cert_fields)),
        (
            "metrics",
            report
                .metrics
                .as_ref()
                .map_or(Json::Null, |m| metrics_json(m, timing)),
        ),
        (
            "wall_nanos",
            Json::U64(timing.nanos(report.wall.as_nanos() as u64)),
        ),
    ])
}

/// Header row of the flat CSV emitted by [`report_csv_row`].
pub const REPORT_CSV_HEADER: &str = "algorithm,backend,feasible,objective,certified_ratio,\
iterations,rounds,supersteps,total_message_words,peak_machine_words,peak_central_words,wall_nanos";

/// One report as a CSV data row matching [`REPORT_CSV_HEADER`].
pub fn report_csv_row(report: &Report<Solution>, timing: TimingMode) -> String {
    let m = report.metrics.as_ref();
    format!(
        "{},{},{},{:?},{},{},{},{},{},{},{},{}",
        report.algorithm,
        report.backend,
        report.certificate.feasible,
        report.certificate.objective,
        report
            .certificate
            .certified_ratio
            .map_or(String::new(), |r| format!("{r:?}")),
        report.solution.iterations(),
        report.rounds(),
        m.map_or(0, |m| m.supersteps),
        m.map_or(0, |m| m.total_message_words),
        report.peak_words(),
        m.map_or(0, |m| m.peak_central_words),
        timing.nanos(report.wall.as_nanos() as u64),
    )
}

/// Human-readable report summary (the CLI's default `text` format).
pub fn report_text(report: &Report<Solution>, timing: TimingMode) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "algorithm: {} ({})", report.algorithm, report.backend);
    let _ = writeln!(out, "feasible:  {}", report.certificate.feasible);
    let _ = writeln!(out, "objective: {:?}", report.certificate.objective);
    match report.certificate.certified_ratio {
        Some(r) => {
            let _ = writeln!(out, "certified ratio: {r:.4}");
        }
        None => {
            let _ = writeln!(out, "certified ratio: none (structural guarantee)");
        }
    }
    let _ = writeln!(out, "detail:    {}", report.certificate.detail);
    if let Some(m) = &report.metrics {
        let _ = writeln!(out, "{m}");
    }
    match timing {
        TimingMode::Real => {
            let _ = writeln!(out, "wall: {:?}", report.wall);
        }
        TimingMode::Masked => {
            let _ = writeln!(out, "wall: masked");
        }
    }
    out
}

/// The result grid of one batch run: per instance, per job, a report or
/// the solver's error text. Shared by `mrlr batch` and the serve daemon
/// so a served batch document is byte-identical to the offline one.
pub type BatchResults = Vec<Vec<Result<Report<Solution>, String>>>;

/// Renders a whole batch document as JSON: the instance paths, the job
/// grid, and one report (or `{"error": ...}`) per `instances × jobs`
/// slot — the exact document `mrlr verify` re-audits offline.
pub fn batch_json(
    instances: &[String],
    jobs: &[super::manifest::JobSpec],
    results: &BatchResults,
    timing: TimingMode,
    certificates: CertificateMode,
) -> Json {
    let jobs_json = jobs
        .iter()
        .map(|j| {
            Json::Obj(vec![
                ("algorithm", Json::str(&*j.algorithm)),
                ("mu", Json::F64(j.mu)),
                ("seed", Json::U64(j.seed)),
                (
                    "threads",
                    j.threads.map_or(Json::Null, |t| Json::U64(t as u64)),
                ),
            ])
        })
        .collect();
    let results_json = results
        .iter()
        .map(|per_instance| {
            Json::Arr(
                per_instance
                    .iter()
                    .map(|slot| match slot {
                        Ok(report) => report_json_with(report, timing, certificates),
                        Err(e) => Json::Obj(vec![("error", Json::str(&**e))]),
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Obj(vec![
        (
            "instances",
            Json::Arr(instances.iter().map(Json::str).collect()),
        ),
        ("jobs", Json::Arr(jobs_json)),
        ("results", Json::Arr(results_json)),
    ])
}

/// Renders a batch result grid as CSV: one row per `instance × job`
/// slot, error slots carrying empty report columns plus the error text.
pub fn batch_csv(
    instances: &[String],
    jobs: &[super::manifest::JobSpec],
    results: &BatchResults,
    timing: TimingMode,
) -> String {
    let mut csv = format!("instance,{},error\n", REPORT_CSV_HEADER);
    for (path, per_instance) in instances.iter().zip(results) {
        for (job, slot) in jobs.iter().zip(per_instance) {
            match slot {
                Ok(report) => {
                    csv.push_str(&format!("{path},{},\n", report_csv_row(report, timing)));
                }
                Err(e) => {
                    let empty = REPORT_CSV_HEADER.split(',').count() - 1;
                    csv.push_str(&format!(
                        "{path},{}{},{}\n",
                        job.algorithm,
                        ",".repeat(empty),
                        e.replace([',', '\n'], ";")
                    ));
                }
            }
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Instance, Registry};
    use crate::mr::MrConfig;
    use mrlr_graph::generators;

    fn sample_report() -> Report<Solution> {
        let g = generators::with_uniform_weights(&generators::densified(25, 0.4, 2), 1.0, 9.0, 2);
        let cfg = MrConfig::auto(25, g.m(), 0.3, 2);
        Registry::with_defaults()
            .solve("matching", &Instance::Graph(g), &cfg)
            .unwrap()
    }

    #[test]
    fn masked_json_is_deterministic_and_wall_free() {
        let r = sample_report();
        let text = report_json(&r, TimingMode::Masked).render();
        assert_eq!(text, report_json(&r, TimingMode::Masked).render());
        assert!(text.contains("\"algorithm\": \"matching\""));
        assert!(text.contains("\"wall_nanos\": 0"));
        assert!(text.contains("\"total_wall_nanos\": 0"));
        assert!(!text.contains("\"wall_nanos\": 1"), "unmasked nanos leaked");
        // Structure is kept: every executor pass still appears.
        let m = r.metrics.as_ref().unwrap();
        assert_eq!(
            text.matches("\"superstep\":").count(),
            m.superstep_timings.len()
        );
    }

    #[test]
    fn real_json_carries_wall_clock() {
        let r = sample_report();
        let text = report_json(&r, TimingMode::Real).render();
        assert!(r.metrics.as_ref().unwrap().total_wall_nanos() > 0);
        assert!(!text.contains("\"total_wall_nanos\": 0"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample_report();
        let header_cols = REPORT_CSV_HEADER.split(',').count();
        let row = report_csv_row(&r, TimingMode::Masked);
        assert_eq!(row.split(',').count(), header_cols, "{row}");
        assert!(row.ends_with(",0"), "masked wall must be 0: {row}");
        assert!(row.starts_with("matching,mr,true,"));
    }

    #[test]
    fn text_mentions_the_essentials() {
        let r = sample_report();
        let t = report_text(&r, TimingMode::Masked);
        assert!(t.contains("algorithm: matching (mr)"));
        assert!(t.contains("feasible:  true"));
        assert!(t.contains("wall: masked"));
        assert!(report_text(&r, TimingMode::Real).contains("wall: "));
    }
}
