//! A tiny, dependency-free JSON writer.
//!
//! The build environment has no crates.io access, so instead of serde this
//! module provides a minimal [`Json`] value tree plus a deterministic
//! pretty-printer. Object keys keep insertion order (no map reordering),
//! floats print with `{:?}` (the shortest representation that round-trips
//! exactly), and non-finite floats degrade to `null` — so two runs that
//! produce bit-identical reports produce byte-identical JSON, which is what
//! the CLI smoke tests diff against golden files.

use std::fmt::Write as _;

/// A JSON value. Construct with the variant constructors and render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (printed without a decimal point).
    U64(u64),
    /// A float, printed via `{:?}` for exact round-tripping; non-finite
    /// values render as `null` (JSON has no `inf`/`nan`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `U64` from any unsigned-ish count.
    pub fn count(n: usize) -> Json {
        Json::U64(n as u64)
    }

    /// `F64` when `x` is `Some`, else `Null`.
    pub fn opt_f64(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::F64)
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders without any whitespace (single line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render_compact(), "null");
        assert_eq!(Json::Bool(true).render_compact(), "true");
        assert_eq!(Json::U64(7).render_compact(), "7");
        assert_eq!(Json::F64(2.5).render_compact(), "2.5");
        assert_eq!(Json::F64(1.0).render_compact(), "1.0");
        assert_eq!(Json::F64(f64::INFINITY).render_compact(), "null");
        assert_eq!(Json::opt_f64(None).render_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(s.render_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_is_stable_and_nested() {
        let v = Json::Obj(vec![
            ("name", Json::str("x")),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Arr(vec![])),
            ("eobj", Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"eobj\": {}"));
        // Rendering is a pure function of the tree.
        assert_eq!(text, v.render());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, 123456.789] {
            let printed = Json::F64(x).render_compact();
            assert_eq!(printed.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }
}
