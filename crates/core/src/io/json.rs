//! A tiny, dependency-free JSON writer **and reader**.
//!
//! The build environment has no crates.io access, so instead of serde this
//! module provides a minimal [`Json`] value tree plus a deterministic
//! pretty-printer. Object keys keep insertion order (no map reordering),
//! floats print with `{:?}` (the shortest representation that round-trips
//! exactly), and non-finite floats degrade to `null` — so two runs that
//! produce bit-identical reports produce byte-identical JSON, which is what
//! the CLI smoke tests diff against golden files.
//!
//! The reader side ([`JsonValue`], [`parse_json`]) exists so `mrlr verify`
//! can re-load stored reports: numbers are kept as their **raw source
//! token** and parsed to `u64`/`f64` on demand, which preserves the
//! writer's exact-round-trip property — `parse(render(x))` recovers `x`
//! bit-for-bit ([`crate::io::certificate`] relies on this for witnesses).

use std::fmt::Write as _;

use super::IoError;

/// A JSON value. Construct with the variant constructors and render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (printed without a decimal point).
    U64(u64),
    /// A float, printed via `{:?}` for exact round-tripping; non-finite
    /// values render as `null` (JSON has no `inf`/`nan`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `U64` from any unsigned-ish count.
    pub fn count(n: usize) -> Json {
        Json::U64(n as u64)
    }

    /// `F64` when `x` is `Some`, else `Null`.
    pub fn opt_f64(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::F64)
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders without any whitespace (single line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parsed JSON value ([`parse_json`]). Unlike the writer-side [`Json`],
/// keys are owned strings and numbers keep their raw source token so the
/// consumer chooses `u64` or `f64` without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (e.g. `"1.25"`, `"-3e5"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64` (exact for tokens the writer printed via `{:?}`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> IoError {
        IoError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), IoError> {
        match self.peek() {
            Some(found) if found == b => {
                self.bump();
                Ok(())
            }
            found => Err(self.err(format!(
                "expected '{}', found {}",
                b as char,
                found.map_or("end of input".into(), |f| format!("'{}'", f as char))
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, IoError> {
        for &b in word.as_bytes() {
            if self.peek() != Some(b) {
                return Err(self.err(format!("invalid literal (expected `{word}`)")));
            }
            self.bump();
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, IoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self
                                    .bump()
                                    .ok_or_else(|| self.err("unterminated \\u escape"))?;
                                let digit = (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
                                code = code * 16 + digit;
                            }
                            // Surrogates are not produced by the writer;
                            // map unpaired ones to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                // Multi-byte UTF-8: pass the raw bytes through (the input
                // is a &str, so sequences are valid).
                b if b < 0x80 => out.push(b as char),
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, IoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.bump();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.parse::<f64>().is_err() {
            return Err(self.err(format!("invalid number `{raw}`")));
        }
        Ok(JsonValue::Num(raw.to_string()))
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, IoError> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(JsonValue::Obj(fields)),
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses a JSON document into a [`JsonValue`], reporting the 1-based
/// line/column of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, IoError> {
    let mut p = Parser::new(text);
    let v = p.value(0)?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing content after the JSON document"));
    }
    Ok(v)
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render_compact(), "null");
        assert_eq!(Json::Bool(true).render_compact(), "true");
        assert_eq!(Json::U64(7).render_compact(), "7");
        assert_eq!(Json::F64(2.5).render_compact(), "2.5");
        assert_eq!(Json::F64(1.0).render_compact(), "1.0");
        assert_eq!(Json::F64(f64::INFINITY).render_compact(), "null");
        assert_eq!(Json::opt_f64(None).render_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(s.render_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_is_stable_and_nested() {
        let v = Json::Obj(vec![
            ("name", Json::str("x")),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Arr(vec![])),
            ("eobj", Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"eobj\": {}"));
        // Rendering is a pure function of the tree.
        assert_eq!(text, v.render());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, 123456.789] {
            let printed = Json::F64(x).render_compact();
            assert_eq!(printed.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = Json::Obj(vec![
            ("name", Json::str("x \"quoted\"\n")),
            ("xs", Json::Arr(vec![Json::U64(1), Json::F64(0.1)])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("nested", Json::Obj(vec![("k", Json::F64(1.0 / 3.0))])),
        ]);
        for text in [v.render(), v.render_compact()] {
            let parsed = parse_json(&text).unwrap();
            assert_eq!(
                parsed.get("name").unwrap().as_str().unwrap(),
                "x \"quoted\"\n"
            );
            let xs = parsed.get("xs").unwrap().as_arr().unwrap();
            assert_eq!(xs[0].as_u64(), Some(1));
            assert_eq!(xs[1].as_f64().unwrap().to_bits(), 0.1f64.to_bits());
            assert_eq!(parsed.get("flag").unwrap().as_bool(), Some(true));
            assert_eq!(parsed.get("nothing"), Some(&JsonValue::Null));
            let k = parsed.get("nested").unwrap().get("k").unwrap();
            assert_eq!(k.as_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        }
    }

    #[test]
    fn parser_reports_positions() {
        let err = parse_json("{\n  \"a\": [1, }\n}").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(err.col > 0);
        assert!(parse_json("").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1e]").is_err());
    }
}
