//! The unified, DIMACS-like instance format behind `mrlr gen`/`mrlr solve`.
//!
//! One line-oriented text format covers every [`Instance`] kind, so a file
//! on disk is self-describing — the CLI (and any downstream tooling) can
//! load it without knowing which algorithm will consume it. Comments are
//! lines starting with `c` or `#`; blank lines are ignored. The first
//! significant line is the problem line:
//!
//! ```text
//! p graph <n> <m>                  # weighted graph
//! p vertex-weighted <n> <m>        # graph + per-vertex weights
//! p b-matching <n> <m> <eps>       # graph + per-vertex capacities
//! p set-system <universe> <nsets>  # weighted set system
//! ```
//!
//! Graph kinds then carry `m` edge lines `e <u> <v> [<w>]` (weight omitted
//! means 1; weights print with `{:?}` so they round-trip bit-exactly) and —
//! for `vertex-weighted` / `b-matching` — exactly one `n <id> <value>` line
//! per vertex (a weight, resp. an integer capacity ≥ 1). A `set-system`
//! carries `<nsets>` lines `s <w> [<elem> …]` with strictly increasing
//! elements. Parsers report 1-based line *and column* positions; rendering
//! then parsing is the identity on every well-formed instance (asserted by
//! the round-trip proptests).

use std::fmt::Write as _;

use mrlr_graph::{Edge, Graph, VertexId};
use mrlr_setsys::{ElemId, SetSystem};

use super::{tokens, IoError};
use crate::api::{BMatchingInstance, Instance, VertexWeightedGraph};

fn err(line: usize, col: usize, message: impl Into<String>) -> IoError {
    IoError {
        line,
        col,
        message: message.into(),
    }
}

/// A cursor over the tokens of one line, tracking columns for errors.
struct Line<'a> {
    no: usize,
    toks: std::vec::IntoIter<(usize, &'a str)>,
    /// Column just past the last token, for "missing token" errors.
    end_col: usize,
}

impl<'a> Line<'a> {
    fn new(no: usize, raw: &'a str) -> Self {
        let toks = tokens(raw);
        let end_col = toks.last().map_or(1, |(c, t)| c + t.len());
        Line {
            no,
            toks: toks.into_iter(),
            end_col,
        }
    }

    fn next(&mut self, what: &str) -> Result<(usize, &'a str), IoError> {
        self.toks
            .next()
            .ok_or_else(|| err(self.no, self.end_col, format!("missing {what}")))
    }

    fn maybe_next(&mut self) -> Option<(usize, &'a str)> {
        self.toks.next()
    }

    fn finish(&mut self) -> Result<(), IoError> {
        match self.toks.next() {
            Some((col, tok)) => Err(err(self.no, col, format!("unexpected trailing `{tok}`"))),
            None => Ok(()),
        }
    }

    fn parse<T: std::str::FromStr>(&mut self, what: &str) -> Result<(usize, T), IoError> {
        let (col, tok) = self.next(what)?;
        let v = tok
            .parse()
            .map_err(|_| err(self.no, col, format!("bad {what} `{tok}`")))?;
        Ok((col, v))
    }
}

fn check_weight(w: f64, line: usize, col: usize, what: &str) -> Result<(), IoError> {
    if w.is_finite() && w > 0.0 {
        Ok(())
    } else {
        Err(err(
            line,
            col,
            format!("{what} {w} must be positive and finite"),
        ))
    }
}

/// Serializes `inst` in the unified format. The output is canonical:
/// parsing it back yields a bit-identical instance, and rendering that
/// parse yields byte-identical text.
pub fn render_instance(inst: &Instance) -> String {
    let mut out = String::new();
    match inst {
        Instance::Graph(g) => {
            let _ = writeln!(out, "p graph {} {}", g.n(), g.m());
            render_edges(&mut out, g);
        }
        Instance::VertexWeighted(vw) => {
            let _ = writeln!(out, "p vertex-weighted {} {}", vw.graph.n(), vw.graph.m());
            render_edges(&mut out, &vw.graph);
            for (v, w) in vw.weights.iter().enumerate() {
                let _ = writeln!(out, "n {v} {w:?}");
            }
        }
        Instance::BMatching(bm) => {
            let _ = writeln!(
                out,
                "p b-matching {} {} {:?}",
                bm.graph.n(),
                bm.graph.m(),
                bm.eps
            );
            render_edges(&mut out, &bm.graph);
            for (v, b) in bm.b.iter().enumerate() {
                let _ = writeln!(out, "n {v} {b}");
            }
        }
        Instance::SetSystem(sys) => {
            let _ = writeln!(out, "p set-system {} {}", sys.universe(), sys.n_sets());
            for (i, set) in sys.sets().iter().enumerate() {
                let _ = write!(out, "s {:?}", sys.weight(i as u32));
                for &j in set {
                    let _ = write!(out, " {j}");
                }
                out.push('\n');
            }
        }
    }
    out
}

fn render_edges(out: &mut String, g: &Graph) {
    for e in g.edges() {
        if e.w == 1.0 {
            let _ = writeln!(out, "e {} {}", e.u, e.v);
        } else {
            let _ = writeln!(out, "e {} {} {:?}", e.u, e.v, e.w);
        }
    }
}

/// Parses the unified format produced by [`render_instance`] (or written
/// by hand). Errors carry the 1-based line and column of the offending
/// token.
pub fn parse_instance(text: &str) -> Result<Instance, IoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| {
            let t = l.trim_start();
            let c_comment =
                t == "c" || (t.starts_with('c') && t[1..].starts_with(char::is_whitespace));
            !(t.is_empty() || t.starts_with('#') || c_comment)
        })
        .map(|(no, raw)| Line::new(no, raw));

    let mut problem = lines
        .next()
        .ok_or_else(|| err(0, 0, "empty input: missing problem line `p <kind> …`"))?;
    let (pcol, ptag) = problem.next("problem line")?;
    if ptag != "p" {
        return Err(err(
            problem.no,
            pcol,
            format!("expected problem line `p <kind> …`, found `{ptag}`"),
        ));
    }
    let (kcol, kind) = problem.next("instance kind")?;
    match kind {
        "graph" | "vertex-weighted" | "b-matching" => {
            let (_, n) = problem.parse::<usize>("vertex count")?;
            let (_, m) = problem.parse::<usize>("edge count")?;
            let eps = if kind == "b-matching" {
                let (ecol, eps) = problem.parse::<f64>("eps")?;
                check_weight(eps, problem.no, ecol, "eps")?;
                Some(eps)
            } else {
                None
            };
            problem.finish()?;
            parse_graph_body(lines, kind, n, m, eps)
        }
        "set-system" => {
            let (_, universe) = problem.parse::<usize>("universe size")?;
            let (_, n_sets) = problem.parse::<usize>("set count")?;
            problem.finish()?;
            parse_set_body(lines, universe, n_sets)
        }
        other => Err(err(
            problem.no,
            kcol,
            format!(
                "unknown instance kind `{other}` \
                 (expected graph, vertex-weighted, b-matching or set-system)"
            ),
        )),
    }
}

fn parse_graph_body<'a>(
    lines: impl Iterator<Item = Line<'a>>,
    kind: &str,
    n: usize,
    m: usize,
    eps: Option<f64>,
) -> Result<Instance, IoError> {
    let needs_vertex_data = kind != "graph";
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    // One slot per vertex: weight (vertex-weighted) or capacity (b-matching).
    let mut vertex_data: Vec<Option<f64>> = vec![None; n];
    for mut line in lines {
        let (tcol, tag) = line.next("record")?;
        match tag {
            "e" => {
                let (ucol, u) = line.parse::<VertexId>("endpoint")?;
                let (vcol, v) = line.parse::<VertexId>("endpoint")?;
                let w = match line.maybe_next() {
                    None => 1.0,
                    Some((wcol, tok)) => {
                        let w: f64 = tok
                            .parse()
                            .map_err(|_| err(line.no, wcol, format!("bad weight `{tok}`")))?;
                        check_weight(w, line.no, wcol, "weight")?;
                        w
                    }
                };
                line.finish()?;
                if (u as usize) >= n {
                    return Err(err(
                        line.no,
                        ucol,
                        format!("vertex {u} out of range 0..{n}"),
                    ));
                }
                if (v as usize) >= n {
                    return Err(err(
                        line.no,
                        vcol,
                        format!("vertex {v} out of range 0..{n}"),
                    ));
                }
                if u == v {
                    return Err(err(line.no, vcol, format!("self-loop at vertex {u}")));
                }
                let (a, b) = (u.min(v), u.max(v));
                if !seen.insert(((a as u64) << 32) | b as u64) {
                    return Err(err(line.no, ucol, format!("duplicate edge ({a}, {b})")));
                }
                edges.push(Edge::new(u, v, w));
            }
            "n" if needs_vertex_data => {
                let (vcol, v) = line.parse::<usize>("vertex id")?;
                if v >= n {
                    return Err(err(
                        line.no,
                        vcol,
                        format!("vertex {v} out of range 0..{n}"),
                    ));
                }
                let value = if kind == "b-matching" {
                    let (bcol, b) = line.parse::<u32>("capacity")?;
                    if b == 0 {
                        return Err(err(line.no, bcol, "capacity must be at least 1"));
                    }
                    b as f64
                } else {
                    let (wcol, w) = line.parse::<f64>("vertex weight")?;
                    check_weight(w, line.no, wcol, "vertex weight")?;
                    w
                };
                line.finish()?;
                if vertex_data[v].replace(value).is_some() {
                    return Err(err(line.no, vcol, format!("duplicate data for vertex {v}")));
                }
            }
            other => {
                let expected = if needs_vertex_data {
                    "`e` or `n`"
                } else {
                    "`e`"
                };
                return Err(err(
                    line.no,
                    tcol,
                    format!("unexpected record `{other}` (expected {expected})"),
                ));
            }
        }
    }
    if edges.len() != m {
        return Err(err(
            0,
            0,
            format!("problem line promised {m} edges, found {}", edges.len()),
        ));
    }
    if needs_vertex_data {
        if let Some(v) = vertex_data.iter().position(Option::is_none) {
            return Err(err(0, 0, format!("vertex {v} has no `n` line")));
        }
    }
    let graph = Graph::new(n, edges);
    Ok(match kind {
        "graph" => Instance::Graph(graph),
        "vertex-weighted" => Instance::VertexWeighted(VertexWeightedGraph::new(
            graph,
            vertex_data.into_iter().map(|w| w.unwrap()).collect(),
        )),
        _ => Instance::BMatching(BMatchingInstance::new(
            graph,
            vertex_data.into_iter().map(|b| b.unwrap() as u32).collect(),
            eps.expect("b-matching header carries eps"),
        )),
    })
}

fn parse_set_body<'a>(
    lines: impl Iterator<Item = Line<'a>>,
    universe: usize,
    n_sets: usize,
) -> Result<Instance, IoError> {
    let mut sets: Vec<Vec<ElemId>> = Vec::with_capacity(n_sets);
    let mut weights: Vec<f64> = Vec::with_capacity(n_sets);
    for mut line in lines {
        let (tcol, tag) = line.next("record")?;
        if tag != "s" {
            return Err(err(
                line.no,
                tcol,
                format!("unexpected record `{tag}` (expected `s`)"),
            ));
        }
        let (wcol, w) = line.parse::<f64>("set weight")?;
        check_weight(w, line.no, wcol, "set weight")?;
        let mut elems: Vec<ElemId> = Vec::new();
        while let Some((ecol, tok)) = line.maybe_next() {
            let j: ElemId = tok
                .parse()
                .map_err(|_| err(line.no, ecol, format!("bad element `{tok}`")))?;
            if (j as usize) >= universe {
                return Err(err(
                    line.no,
                    ecol,
                    format!("element {j} out of range 0..{universe}"),
                ));
            }
            if let Some(&last) = elems.last() {
                if last >= j {
                    return Err(err(
                        line.no,
                        ecol,
                        format!("elements must be strictly increasing ({last} then {j})"),
                    ));
                }
            }
            elems.push(j);
        }
        weights.push(w);
        sets.push(elems);
    }
    if sets.len() != n_sets {
        return Err(err(
            0,
            0,
            format!("problem line promised {n_sets} sets, found {}", sets.len()),
        ));
    }
    Ok(Instance::SetSystem(SetSystem::new(universe, sets, weights)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_graph::generators;
    use mrlr_setsys::generators as setgen;

    fn sample_graph() -> Graph {
        generators::with_uniform_weights(&generators::densified(20, 0.4, 3), 1.0, 9.0, 3)
    }

    #[test]
    fn all_kinds_round_trip() {
        let g = sample_graph();
        let n = g.n();
        let cases = [
            Instance::Graph(g.clone()),
            Instance::Graph(g.unweighted()),
            Instance::VertexWeighted(VertexWeightedGraph::new(
                g.clone(),
                (0..n).map(|v| 1.0 + v as f64 / 7.0).collect(),
            )),
            Instance::BMatching(BMatchingInstance::new(
                g,
                (0..n as u32).map(|v| 1 + v % 3).collect(),
                0.25,
            )),
            Instance::SetSystem(setgen::with_log_uniform_weights(
                setgen::bounded_frequency(12, 60, 3, 5),
                0.25,
                8.0,
                5,
            )),
        ];
        for inst in cases {
            let text = render_instance(&inst);
            let back = parse_instance(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(inst, back, "round trip failed for {:?}", inst.kind());
            assert_eq!(text, render_instance(&back), "render not canonical");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text =
            "c DIMACS-style comment\nc\ttab comment\n# hash comment\n\np graph 3 2\ne 0 1\nc mid\ne 1 2 2.5\n";
        let inst = parse_instance(text).unwrap();
        let g = match inst {
            Instance::Graph(g) => g,
            other => panic!("{other:?}"),
        };
        assert_eq!((g.n(), g.m()), (3, 2));
        assert_eq!(g.edge(1).w, 2.5);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let cases: &[(&str, usize, usize, &str)] = &[
            ("", 0, 0, "empty input"),
            ("q graph 2 1", 1, 1, "expected problem line"),
            ("p torus 2 1", 1, 3, "unknown instance kind"),
            ("p graph x 1", 1, 9, "bad vertex count"),
            ("p graph 2", 1, 10, "missing edge count"),
            ("p graph 2 1 extra", 1, 13, "unexpected trailing"),
            ("p graph 3 1\nz 0 1", 2, 1, "unexpected record `z`"),
            ("p graph 3 1\ne 0", 2, 4, "missing endpoint"),
            ("p graph 3 1\ne 0 9", 2, 5, "out of range"),
            ("p graph 3 1\ne 1 1", 2, 5, "self-loop"),
            ("p graph 3 1\ne 0 1 -2", 2, 7, "must be positive"),
            ("p graph 3 1\ne 0 1 x", 2, 7, "bad weight"),
            ("p graph 3 2\ne 0 1\ne 1 0", 3, 3, "duplicate edge"),
            ("p graph 3 2\ne 0 1", 0, 0, "promised 2 edges"),
            (
                "p vertex-weighted 2 1\ne 0 1",
                0,
                0,
                "vertex 0 has no `n` line",
            ),
            (
                "p vertex-weighted 2 0\nn 0 1.0\nn 0 2.0\nn 1 1.0",
                3,
                3,
                "duplicate data",
            ),
            ("p b-matching 2 0 0.0", 1, 18, "must be positive"),
            ("p b-matching 2 0 0.1\nn 0 0\nn 1 1", 2, 5, "at least 1"),
            ("p set-system 3 1\ns 1.0 9", 2, 7, "out of range"),
            ("p set-system 3 1\ns 1.0 2 1", 2, 9, "strictly increasing"),
            ("p set-system 3 2\ns 1.0 0", 0, 0, "promised 2 sets"),
        ];
        for (text, line, col, needle) in cases {
            let e = parse_instance(text).unwrap_err();
            assert!(
                e.message.contains(needle),
                "case {text:?}: got {e} (wanted `{needle}`)"
            );
            assert_eq!((e.line, e.col), (*line, *col), "case {text:?}: got {e}");
        }
    }

    #[test]
    fn empty_shapes_round_trip() {
        for inst in [
            Instance::Graph(Graph::new(0, vec![])),
            Instance::Graph(Graph::new(4, vec![])),
            Instance::SetSystem(SetSystem::unit(0, vec![])),
            Instance::VertexWeighted(VertexWeightedGraph::new(Graph::new(1, vec![]), vec![2.0])),
        ] {
            assert_eq!(parse_instance(&render_instance(&inst)).unwrap(), inst);
        }
    }
}
