//! The unified, DIMACS-like instance format behind `mrlr gen`/`mrlr solve`.
//!
//! One line-oriented text format covers every [`Instance`] kind, so a file
//! on disk is self-describing — the CLI (and any downstream tooling) can
//! load it without knowing which algorithm will consume it. Comments are
//! lines starting with `c` or `#`; blank lines are ignored. The first
//! significant line is the problem line:
//!
//! ```text
//! p graph <n> <m>                  # weighted graph
//! p vertex-weighted <n> <m>        # graph + per-vertex weights
//! p b-matching <n> <m> <eps>       # graph + per-vertex capacities
//! p set-system <universe> <nsets>  # weighted set system
//! ```
//!
//! Graph kinds then carry `m` edge lines `e <u> <v> [<w>]` (weight omitted
//! means 1; weights print with `{:?}` so they round-trip bit-exactly) and —
//! for `vertex-weighted` / `b-matching` — exactly one `n <id> <value>` line
//! per vertex (a weight, resp. an integer capacity ≥ 1). A `set-system`
//! carries `<nsets>` lines `s <w> [<elem> …]` with strictly increasing
//! elements. Parsers report 1-based line *and column* positions; rendering
//! then parsing is the identity on every well-formed instance (asserted by
//! the round-trip proptests).

use std::io::Write;

use mrlr_graph::Graph;

use super::stream::{InstanceSink, StreamParser};
use super::IoError;
use crate::api::Instance;

/// Serializes `inst` in the unified format. The output is canonical:
/// parsing it back yields a bit-identical instance, and rendering that
/// parse yields byte-identical text.
pub fn render_instance(inst: &Instance) -> String {
    let mut out = Vec::new();
    write_instance(&mut out, inst).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("the unified format is ASCII")
}

/// Streams `inst` in the unified format straight into `w`, line by line —
/// no whole-document `String` is built, so `mrlr gen --pipe` can emit an
/// instance far larger than memory into a pipe. [`render_instance`] is
/// this function collected into a `String`, so the two are byte-identical
/// by construction.
pub fn write_instance<W: Write>(w: &mut W, inst: &Instance) -> std::io::Result<()> {
    match inst {
        Instance::Graph(g) => {
            writeln!(w, "p graph {} {}", g.n(), g.m())?;
            write_edges(w, g)?;
        }
        Instance::VertexWeighted(vw) => {
            writeln!(w, "p vertex-weighted {} {}", vw.graph.n(), vw.graph.m())?;
            write_edges(w, &vw.graph)?;
            for (v, weight) in vw.weights.iter().enumerate() {
                writeln!(w, "n {v} {weight:?}")?;
            }
        }
        Instance::BMatching(bm) => {
            writeln!(
                w,
                "p b-matching {} {} {:?}",
                bm.graph.n(),
                bm.graph.m(),
                bm.eps
            )?;
            write_edges(w, &bm.graph)?;
            for (v, b) in bm.b.iter().enumerate() {
                writeln!(w, "n {v} {b}")?;
            }
        }
        Instance::SetSystem(sys) => {
            writeln!(w, "p set-system {} {}", sys.universe(), sys.n_sets())?;
            for (i, set) in sys.sets().iter().enumerate() {
                write!(w, "s {:?}", sys.weight(i as u32))?;
                for &j in set {
                    write!(w, " {j}")?;
                }
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

fn write_edges<W: Write>(w: &mut W, g: &Graph) -> std::io::Result<()> {
    for e in g.edges() {
        if e.w == 1.0 {
            writeln!(w, "e {} {}", e.u, e.v)?;
        } else {
            writeln!(w, "e {} {} {:?}", e.u, e.v, e.w)?;
        }
    }
    Ok(())
}

/// Parses the unified format produced by [`render_instance`] (or written
/// by hand). Errors carry the 1-based line and column of the offending
/// token.
///
/// This is the materialized entry point, built on the chunked
/// [`StreamParser`] of [`super::stream`] with an [`InstanceSink`] — so
/// the streamed and materialized paths share one validator by
/// construction, and report identical errors on identical input (the
/// chunking proptests assert this at every buffer size).
pub fn parse_instance(text: &str) -> Result<Instance, IoError> {
    let mut parser = StreamParser::new(InstanceSink::default());
    parser.feed_str(text)?;
    parser.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BMatchingInstance, VertexWeightedGraph};
    use mrlr_graph::generators;
    use mrlr_setsys::generators as setgen;
    use mrlr_setsys::SetSystem;

    fn sample_graph() -> Graph {
        generators::with_uniform_weights(&generators::densified(20, 0.4, 3), 1.0, 9.0, 3)
    }

    #[test]
    fn all_kinds_round_trip() {
        let g = sample_graph();
        let n = g.n();
        let cases = [
            Instance::Graph(g.clone()),
            Instance::Graph(g.unweighted()),
            Instance::VertexWeighted(VertexWeightedGraph::new(
                g.clone(),
                (0..n).map(|v| 1.0 + v as f64 / 7.0).collect(),
            )),
            Instance::BMatching(BMatchingInstance::new(
                g,
                (0..n as u32).map(|v| 1 + v % 3).collect(),
                0.25,
            )),
            Instance::SetSystem(setgen::with_log_uniform_weights(
                setgen::bounded_frequency(12, 60, 3, 5),
                0.25,
                8.0,
                5,
            )),
        ];
        for inst in cases {
            let text = render_instance(&inst);
            let back = parse_instance(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(inst, back, "round trip failed for {:?}", inst.kind());
            assert_eq!(text, render_instance(&back), "render not canonical");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text =
            "c DIMACS-style comment\nc\ttab comment\n# hash comment\n\np graph 3 2\ne 0 1\nc mid\ne 1 2 2.5\n";
        let inst = parse_instance(text).unwrap();
        let g = match inst {
            Instance::Graph(g) => g,
            other => panic!("{other:?}"),
        };
        assert_eq!((g.n(), g.m()), (3, 2));
        assert_eq!(g.edge(1).w, 2.5);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let cases: &[(&str, usize, usize, &str)] = &[
            ("", 0, 0, "empty input"),
            ("q graph 2 1", 1, 1, "expected problem line"),
            ("p torus 2 1", 1, 3, "unknown instance kind"),
            ("p graph x 1", 1, 9, "bad vertex count"),
            ("p graph 2", 1, 10, "missing edge count"),
            ("p graph 2 1 extra", 1, 13, "unexpected trailing"),
            ("p graph 3 1\nz 0 1", 2, 1, "unexpected record `z`"),
            ("p graph 3 1\ne 0", 2, 4, "missing endpoint"),
            ("p graph 3 1\ne 0 9", 2, 5, "out of range"),
            ("p graph 3 1\ne 1 1", 2, 5, "self-loop"),
            ("p graph 3 1\ne 0 1 -2", 2, 7, "must be positive"),
            ("p graph 3 1\ne 0 1 x", 2, 7, "bad weight"),
            ("p graph 3 2\ne 0 1\ne 1 0", 3, 3, "duplicate edge"),
            ("p graph 3 2\ne 0 1", 0, 0, "promised 2 edges"),
            (
                "p vertex-weighted 2 1\ne 0 1",
                0,
                0,
                "vertex 0 has no `n` line",
            ),
            (
                "p vertex-weighted 2 0\nn 0 1.0\nn 0 2.0\nn 1 1.0",
                3,
                3,
                "duplicate data",
            ),
            ("p b-matching 2 0 0.0", 1, 18, "must be positive"),
            ("p b-matching 2 0 0.1\nn 0 0\nn 1 1", 2, 5, "at least 1"),
            ("p set-system 3 1\ns 1.0 9", 2, 7, "out of range"),
            ("p set-system 3 1\ns 1.0 2 1", 2, 9, "strictly increasing"),
            ("p set-system 3 2\ns 1.0 0", 0, 0, "promised 2 sets"),
        ];
        for (text, line, col, needle) in cases {
            let e = parse_instance(text).unwrap_err();
            assert!(
                e.message.contains(needle),
                "case {text:?}: got {e} (wanted `{needle}`)"
            );
            assert_eq!((e.line, e.col), (*line, *col), "case {text:?}: got {e}");
        }
    }

    #[test]
    fn empty_shapes_round_trip() {
        for inst in [
            Instance::Graph(Graph::new(0, vec![])),
            Instance::Graph(Graph::new(4, vec![])),
            Instance::SetSystem(SetSystem::unit(0, vec![])),
            Instance::VertexWeighted(VertexWeightedGraph::new(Graph::new(1, vec![]), vec![2.0])),
        ] {
            assert_eq!(parse_instance(&render_instance(&inst)).unwrap(), inst);
        }
    }
}
