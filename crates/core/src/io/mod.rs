//! File-based I/O for the solver API: the unified instance format, the
//! batch manifest, and machine-readable [`Report`][crate::api::Report]
//! serialization (JSON/CSV/text) — everything the `mrlr` CLI needs to
//! drive the registry from files on disk, hand-rolled because the build
//! environment has no crates.io access (no serde).
//!
//! * [`instance`] — one DIMACS-like text format covering every
//!   [`Instance`][crate::api::Instance] kind, with line/column-reporting
//!   parsers and canonical rendering (`parse(render(x)) == x`).
//! * [`manifest`] — the `mrlr batch` manifest (instance set × job list),
//!   mapping onto [`Registry::solve_batch`][crate::api::Registry::solve_batch].
//! * [`report`] — deterministic JSON/CSV/text serialization of reports,
//!   with [`report::TimingMode`] masking host wall-clock so outputs can be
//!   diffed against golden files across thread counts.
//! * [`certificate`] — bit-exact witness serialization and report
//!   re-parsing ([`certificate::StoredReport`], and whole batch
//!   documents via [`certificate::parse_batch`]): what turns a stored
//!   run into an offline-auditable artifact (`mrlr verify`).
//! * [`json`] — the tiny no-deps JSON writer **and reader** the above
//!   build on.

pub mod certificate;
pub mod instance;
pub mod json;
pub mod manifest;
pub mod report;
pub mod stream;

pub use certificate::{
    is_batch_document, parse_batch, parse_report, parse_witness, witness_json, BatchSlot,
    CertificateMode, StoredBatch, StoredReport,
};
pub use instance::{parse_instance, render_instance, write_instance};
pub use json::{parse_json, Json, JsonValue};
pub use manifest::{parse_manifest, JobSpec, Manifest};
pub use report::{
    batch_csv, batch_json, metrics_json, report_csv_row, report_json, report_json_with,
    report_text, solution_json, BatchResults, TimingMode, REPORT_CSV_HEADER,
};
pub use stream::{
    read_instance, stream_records, InstanceSink, Record, RecordSink, StreamHeader, StreamParser,
    DEFAULT_BUF_LEN,
};

/// A parse failure with its 1-based line and column position (`0` for
/// file-level errors such as a count mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// 1-based column of the offending token (0 for file-level errors).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(
                f,
                "line {}, column {}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for IoError {}

/// Splits a line into `(1-based column, token)` pairs on whitespace —
/// the shared tokenizer behind every line-oriented parser in this module
/// (columns are byte-based, which coincides with characters for the
/// ASCII formats defined here).
pub(crate) fn tokens(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &line[s..]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = IoError {
            line: 3,
            col: 7,
            message: "bad weight".into(),
        };
        assert_eq!(e.to_string(), "line 3, column 7: bad weight");
        let file_level = IoError {
            line: 0,
            col: 0,
            message: "promised 2 edges".into(),
        };
        assert_eq!(file_level.to_string(), "promised 2 edges");
    }
}
