//! The `mrlr batch` manifest format, mapping onto
//! [`Registry::solve_batch`][crate::api::Registry::solve_batch].
//!
//! A manifest is line-oriented (comments `c`/`#`, blanks ignored) and
//! names an instance set and a job list; the batch runs the full cross
//! product:
//!
//! ```text
//! c instances are paths to unified-format files (see super::instance)
//! instance workloads/a.graph
//! instance workloads/b.sets
//! c job <algorithm> [mu=<f64>] [seed=<u64>] [threads=<usize>]
//! job matching mu=0.3 seed=7
//! job set-cover-f threads=4
//! ```
//!
//! `mu` defaults to 0.3, `seed` to 42; `threads` defaults to the process
//! default (`MRLR_THREADS`, else sequential). The cluster shape of each
//! job is auto-derived per instance via
//! [`Instance::auto_config`][crate::api::Instance::auto_config], so one
//! job line applies meaningfully to instances of different scales.

use super::{tokens, IoError};

/// Default memory exponent `µ` for manifest jobs.
pub const DEFAULT_MU: f64 = 0.3;

/// Default seed for manifest jobs.
pub const DEFAULT_SEED: u64 = 42;

/// One `job` line of a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registry key of the algorithm.
    pub algorithm: String,
    /// Memory exponent `µ` used to auto-shape the cluster per instance.
    pub mu: f64,
    /// Seed for all hash-derived randomness.
    pub seed: u64,
    /// Executor threads; `None` = process default (`MRLR_THREADS`).
    pub threads: Option<usize>,
}

/// A parsed batch manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Instance file paths, in declaration order.
    pub instances: Vec<String>,
    /// Jobs, in declaration order.
    pub jobs: Vec<JobSpec>,
}

fn err(line: usize, col: usize, message: impl Into<String>) -> IoError {
    IoError {
        line,
        col,
        message: message.into(),
    }
}

/// Parses a manifest. Errors carry 1-based line/column positions.
pub fn parse_manifest(text: &str) -> Result<Manifest, IoError> {
    let mut instances = Vec::new();
    let mut jobs = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let no = no + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed == "c" {
            continue;
        }
        let mut toks = tokens(raw);
        let (_, tag) = toks.remove(0);
        match tag {
            "c" => continue,
            "instance" => {
                if toks.is_empty() {
                    return Err(err(no, raw.len() + 1, "missing instance path"));
                }
                if toks.len() > 1 {
                    let (col, tok) = toks[1];
                    return Err(err(
                        no,
                        col,
                        format!("unexpected trailing `{tok}` (paths must not contain spaces)"),
                    ));
                }
                instances.push(toks[0].1.to_string());
            }
            "job" => {
                if toks.is_empty() {
                    return Err(err(no, raw.len() + 1, "missing algorithm key"));
                }
                let (_, algorithm) = toks.remove(0);
                let mut job = JobSpec {
                    algorithm: algorithm.to_string(),
                    mu: DEFAULT_MU,
                    seed: DEFAULT_SEED,
                    threads: None,
                };
                for (col, tok) in toks {
                    let (key, value) = tok.split_once('=').ok_or_else(|| {
                        err(no, col, format!("expected `key=value`, found `{tok}`"))
                    })?;
                    match key {
                        "mu" => {
                            job.mu = value
                                .parse()
                                .map_err(|_| err(no, col, format!("bad mu `{value}`")))?;
                            if !(job.mu.is_finite() && job.mu > 0.0) {
                                return Err(err(no, col, "mu must be positive and finite"));
                            }
                        }
                        "seed" => {
                            job.seed = value
                                .parse()
                                .map_err(|_| err(no, col, format!("bad seed `{value}`")))?;
                        }
                        "threads" => {
                            job.threads = Some(
                                value
                                    .parse()
                                    .map_err(|_| err(no, col, format!("bad threads `{value}`")))?,
                            );
                        }
                        other => {
                            return Err(err(
                                no,
                                col,
                                format!(
                                    "unknown job option `{other}` (expected mu, seed, threads)"
                                ),
                            ));
                        }
                    }
                }
                jobs.push(job);
            }
            other => {
                return Err(err(
                    no,
                    1,
                    format!("unexpected record `{other}` (expected `instance` or `job`)"),
                ));
            }
        }
    }
    if instances.is_empty() {
        return Err(err(0, 0, "manifest needs at least one `instance` line"));
    }
    if jobs.is_empty() {
        return Err(err(0, 0, "manifest needs at least one `job` line"));
    }
    Ok(Manifest { instances, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_overrides() {
        let m = parse_manifest(
            "c batch\n# also a comment\n\ninstance a.graph\ninstance b.sets\n\
             job matching\njob set-cover-f mu=0.25 seed=7 threads=4\n",
        )
        .unwrap();
        assert_eq!(m.instances, vec!["a.graph", "b.sets"]);
        assert_eq!(m.jobs.len(), 2);
        assert_eq!(m.jobs[0].algorithm, "matching");
        assert_eq!(m.jobs[0].mu, DEFAULT_MU);
        assert_eq!(m.jobs[0].seed, DEFAULT_SEED);
        assert_eq!(m.jobs[0].threads, None);
        assert_eq!(m.jobs[1].mu, 0.25);
        assert_eq!(m.jobs[1].seed, 7);
        assert_eq!(m.jobs[1].threads, Some(4));
    }

    #[test]
    fn errors_are_positioned() {
        let cases: &[(&str, usize, &str)] = &[
            ("bogus x", 1, "unexpected record"),
            ("instance", 1, "missing instance path"),
            ("instance a b", 1, "must not contain spaces"),
            ("instance a\njob", 2, "missing algorithm key"),
            ("instance a\njob m kappa=3", 2, "unknown job option"),
            ("instance a\njob m mu=x", 2, "bad mu"),
            ("instance a\njob m mu=-1", 2, "must be positive"),
            ("instance a\njob m seed=x", 2, "bad seed"),
            ("instance a\njob m threads=x", 2, "bad threads"),
            ("instance a\njob m mu", 2, "expected `key=value`"),
            ("job m", 0, "at least one `instance`"),
            ("instance a", 0, "at least one `job`"),
        ];
        for (text, line, needle) in cases {
            let e = parse_manifest(text).unwrap_err();
            assert_eq!(e.line, *line, "case {text:?}: {e}");
            assert!(e.message.contains(needle), "case {text:?}: {e}");
        }
    }
}
