//! Result types shared by sequential and MapReduce implementations.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_setsys::{ElemId, SetId};

/// Tolerance below which a residual weight counts as zero. Local-ratio
/// reductions subtract floats; the argmin set lands on exactly `0.0`
/// (`x - x == 0`), ties land on `0.0` too, but downstream arithmetic on
/// `ϕ`-potentials accumulates rounding, so comparisons use this slack.
pub const POS_TOL: f64 = 1e-9;

/// Outcome of a set-cover algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverResult {
    /// Chosen set indices (deduplicated, ascending).
    pub cover: Vec<SetId>,
    /// Total weight of the cover.
    pub weight: f64,
    /// A certified lower bound on the optimum (a feasible dual value):
    /// local-ratio reductions `Σ_j ε_j` for Algorithms 1/2.1, or the
    /// dual-fitting bound `Σ_j price_j / ((1+ε) H_Δ)` for greedy variants.
    pub lower_bound: f64,
    /// The per-element dual values behind `lower_bound`, ascending by
    /// element id: `(j, y_j)` with `Σ y_j = lower_bound` and, for every
    /// set `S_i`, `Σ_{j ∈ S_i} y_j ≤ w_i` — the re-checkable witness
    /// ([`crate::api::witness`]). Local-ratio runs record the raw
    /// reductions `ε_j`; greedy runs record the *fitted* prices
    /// `price_j / ((1+ε) H_Δ)`, so the same feasibility check covers both.
    pub dual: Vec<(ElemId, f64)>,
    /// Iterations of the algorithm's outer sampling loop.
    pub iterations: usize,
}

impl CoverResult {
    /// The certified approximation factor `weight / lower_bound` — an upper
    /// bound on the true ratio to optimum.
    pub fn certified_ratio(&self) -> f64 {
        if self.lower_bound <= 0.0 {
            if self.weight <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.weight / self.lower_bound
        }
    }
}

/// Outcome of a matching algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingResult {
    /// Edge ids in the matching.
    pub matching: Vec<EdgeId>,
    /// Total weight of the matching.
    pub weight: f64,
    /// Sum of local-ratio gains `Σ m_e` over the stack. Theorem 5.1's proof
    /// gives `OPT ≤ 2 Σ m_e` and `weight ≥ Σ m_e`, so
    /// `2·stack_gain / weight` certifies the ratio (for b-matching the
    /// multiplier is `3 − 2/b + 2ε`).
    pub stack_gain: f64,
    /// The local-ratio stack transcript `(e, m_e)` in push order — the
    /// re-checkable witness behind `stack_gain`: replaying the pushes
    /// against the instance reproduces the potentials `ϕ`, the unwound
    /// matching and the gain bit-for-bit ([`crate::api::witness`]).
    pub stack: Vec<(EdgeId, f64)>,
    /// Iterations of the sampling loop.
    pub iterations: usize,
}

impl MatchingResult {
    /// Certified approximation factor against `multiplier · stack_gain`
    /// (use 2.0 for matching, `3 − 2/b + 2ε` for b-matching).
    pub fn certified_ratio(&self, multiplier: f64) -> f64 {
        if self.weight <= 0.0 {
            if self.stack_gain <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            multiplier * self.stack_gain / self.weight
        }
    }

    /// Recomputes the weight of `matching` against `g` (sanity helper).
    pub fn recompute_weight(&self, g: &Graph) -> f64 {
        self.matching.iter().map(|&e| g.edge(e).w).sum()
    }
}

/// Outcome of a maximal-independent-set / maximal-clique algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionResult {
    /// Chosen vertices, ascending.
    pub vertices: Vec<VertexId>,
    /// Number of hungry-greedy phases executed.
    pub phases: usize,
    /// Total central-processing rounds (inner while-loop iterations).
    pub iterations: usize,
}

/// Outcome of a colouring algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColouringResult {
    /// Colour of each vertex (vertex colouring) or each edge (edge
    /// colouring), compacted to `0..num_colours`.
    pub colours: Vec<u32>,
    /// Number of distinct colours used.
    pub num_colours: usize,
    /// Number of random groups `κ`.
    pub groups: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_certified_ratio() {
        let r = CoverResult {
            cover: vec![0],
            weight: 4.0,
            lower_bound: 2.0,
            dual: vec![(0, 2.0)],
            iterations: 1,
        };
        assert!((r.certified_ratio() - 2.0).abs() < 1e-12);
        let degenerate = CoverResult {
            cover: vec![],
            weight: 0.0,
            lower_bound: 0.0,
            dual: vec![],
            iterations: 0,
        };
        assert_eq!(degenerate.certified_ratio(), 1.0);
    }

    #[test]
    fn matching_certified_ratio() {
        let r = MatchingResult {
            matching: vec![0],
            weight: 5.0,
            stack_gain: 4.0,
            stack: vec![(0, 4.0)],
            iterations: 1,
        };
        assert!((r.certified_ratio(2.0) - 1.6).abs() < 1e-12);
    }
}
