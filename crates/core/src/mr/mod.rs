//! MapReduce implementations of the paper's algorithms, running on the
//! [`mrlr_mapreduce`] cluster simulator.
//!
//! Every module here mirrors a driver from [`crate::rlr`], [`crate::hungry`]
//! or [`crate::colouring`] — same hash-derived coins, same central-machine
//! subroutines — so for identical seeds the MapReduce run returns
//! *bit-identical* solutions while additionally producing honest
//! round/space/communication [`mrlr_mapreduce::Metrics`]. The equivalence
//! is asserted by the integration tests.
//!
//! Machine supersteps execute on the simulator's pluggable executor
//! ([`mrlr_mapreduce::executor`]); [`MrConfig::exec`] selects the thread
//! count. This is wall-clock only — solutions and metrics are identical
//! at every setting, a guarantee `tests/executor_determinism.rs` asserts
//! for every registry key.

pub mod bmatching;
pub mod clique;
pub mod colouring;
pub(crate) mod dist_cache;
pub mod matching;
pub mod mis;
pub mod set_cover;
pub mod set_cover_greedy;
pub mod vertex_cover;

use mrlr_mapreduce::{ClusterConfig, DistParams, Enforcement, RuntimeKind, SpawnKind, WorkerKill};

/// Execution-substrate parameters of a cluster run: how many OS threads
/// the simulator may use for machine supersteps, and which runtime
/// (scheduler + routing plane) executes them. Neither knob ever affects
/// results — the runtime contract guarantees bit-identical solutions and
/// [`mrlr_mapreduce::Metrics`] at every setting — only wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Executor threads: `0`/`1` = sequential, `t > 1` = a shared
    /// `t`-thread pool ([`mrlr_mapreduce::executor`]).
    pub threads: usize,
    /// Cluster runtime: `Classic` (dynamic scheduling + merge routing),
    /// `Shard` (static shard→thread assignment + per-destination
    /// batched routing — what `Backend::Shard` forces), or `Dist` (the
    /// master/worker control plane over real transport — what
    /// `Backend::Dist` forces). Defaults to the `MRLR_BACKEND`
    /// environment variable.
    pub runtime: RuntimeKind,
    /// Distributed-session parameters (worker count, spawn mode, fault
    /// injection). Only consulted when [`ExecConfig::runtime`] is
    /// [`RuntimeKind::Dist`].
    pub dist: DistParams,
}

impl ExecConfig {
    /// Sequential execution on the classic runtime (the reference
    /// schedule).
    pub const SEQ: ExecConfig = ExecConfig {
        threads: 1,
        runtime: RuntimeKind::Classic,
        dist: DistParams::DEFAULT,
    };

    /// A `threads`-thread pool on the process-default runtime.
    pub fn threads(threads: usize) -> Self {
        ExecConfig {
            threads,
            runtime: mrlr_mapreduce::default_runtime(),
            dist: DistParams::DEFAULT,
        }
    }

    /// The process default: `MRLR_THREADS` / `MRLR_BACKEND` when set,
    /// else sequential on the classic runtime.
    pub fn from_env() -> Self {
        ExecConfig {
            threads: mrlr_mapreduce::default_threads(),
            runtime: mrlr_mapreduce::default_runtime(),
            dist: DistParams::DEFAULT,
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

/// Sampling slack of the local-ratio set-cover drivers: Algorithm 1 (and
/// its `f = 2` vertex-cover fast path) declares `fail` when a gathered
/// sample exceeds `SET_COVER_SAMPLE_SLACK · η`. Chernoff gives
/// `|U'| ≤ 2η` w.h.p. at `p = 2η/|U_r|`; the 3× cushion keeps the failure
/// probability negligible at experiment scale.
pub const SET_COVER_SAMPLE_SLACK: usize = 6;

/// Gather slack of the matching drivers (Algorithm 4): per-vertex sampling
/// draws `O(η)` edge halves in expectation; the driver fails past
/// `MATCHING_GATHER_SLACK · η` gathered words.
pub const MATCHING_GATHER_SLACK: usize = 8;

/// Central-finish threshold: once fewer than `CENTRAL_FINISH_SLACK · η`
/// alive items remain, the matching/b-matching drivers ship the residual
/// instance to the central machine and finish sequentially.
pub const CENTRAL_FINISH_SLACK: usize = 4;

/// Per-machine capacity charged per word of `η` by [`MrConfig::auto`]:
/// `MATCHING_GATHER_SLACK · η` gathered halves, `SET_COVER_SAMPLE_SLACK·η`
/// samples, doubled incidence lists plus their index mirror, and broadcast
/// hop buffers — a constant multiple of `η` that 64 covers with room to
/// spare. The theorems' `O(n^{1+µ})` hides exactly this constant.
pub const CAPACITY_ETA_FACTOR: usize = 64;

/// Capacity charged per unit of `scale` (`n` or `m`) by [`MrConfig::auto`]:
/// replicated `ϕ`-potential vectors and resident bitmaps are `O(n)` words
/// each; 8 covers the handful of such structures any driver keeps.
pub const CAPACITY_SCALE_FACTOR: usize = 8;

/// Flat capacity slack added by [`MrConfig::auto`] so that degenerate
/// shapes (tiny `η`, tiny `n`) still fit control messages and per-round
/// bookkeeping.
pub const CAPACITY_BASE_SLACK: usize = 1024;

/// Cluster-shape parameters shared by the MapReduce algorithms.
///
/// The paper's regime: machine memory `η = n^{1+µ}` words, `M = n^{c-µ}`
/// machines for an input of `n^{1+c}` records, broadcast trees of fan-out
/// `n^µ`.
#[derive(Debug, Clone, Copy)]
pub struct MrConfig {
    /// Number of machines `M`.
    pub machines: usize,
    /// Word budget per machine.
    pub capacity: usize,
    /// Broadcast/aggregation tree fan-out (the paper's `n^µ`).
    pub fanout: usize,
    /// Sampling budget `η = n^{1+µ}`.
    pub eta: usize,
    /// The memory exponent `µ` this shape was derived from. Drivers use it
    /// to derive the paper's per-algorithm parameters (phase granularity
    /// `α`, group sizes `n^{µ/2}`, colour-group counts `κ`).
    pub mu: f64,
    /// Seed for all hash-derived randomness.
    pub seed: u64,
    /// Capacity enforcement mode.
    pub enforcement: Enforcement,
    /// Execution substrate (thread count). Never affects outputs or
    /// metrics, only wall-clock.
    pub exec: ExecConfig,
}

impl MrConfig {
    /// The paper's parameterization: `scale` plays the role of `n` (the
    /// number of vertices, or of sets/elements as appropriate),
    /// `input_records` the number of distributed records, and `mu` the
    /// memory exponent. Capacity is set with a constant-factor slack above
    /// `η` — the theorems' `O(·)` hides exactly such constants (see
    /// [`CAPACITY_ETA_FACTOR`], [`CAPACITY_SCALE_FACTOR`],
    /// [`CAPACITY_BASE_SLACK`]), and the *measured* peak words are what
    /// the experiments report.
    pub fn auto(scale: usize, input_records: usize, mu: f64, seed: u64) -> Self {
        let nf = scale.max(2) as f64;
        let eta = nf.powf(1.0 + mu).ceil() as usize;
        let machines = input_records.div_ceil(eta).max(1);
        let fanout = (nf.powf(mu).ceil() as usize).max(2);
        let capacity =
            CAPACITY_ETA_FACTOR * eta + CAPACITY_SCALE_FACTOR * scale + CAPACITY_BASE_SLACK;
        MrConfig {
            machines,
            capacity,
            fanout,
            eta,
            mu,
            seed,
            enforcement: Enforcement::Strict,
            exec: ExecConfig::from_env(),
        }
    }

    /// Overrides the machine count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines.max(1);
        self
    }

    /// Overrides the executor thread count (see [`ExecConfig`]),
    /// keeping the configured runtime.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec.threads = threads;
        self
    }

    /// Overrides the cluster runtime (see [`ExecConfig::runtime`]). The
    /// `Backend::Shard` drivers apply this with [`RuntimeKind::Shard`];
    /// outputs and metrics are bit-identical either way.
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Self {
        self.exec.runtime = runtime;
        self
    }

    /// Overrides the capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the distributed worker count (see
    /// [`mrlr_mapreduce::DistParams::workers`]; only consulted under
    /// [`RuntimeKind::Dist`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.exec.dist.workers = workers;
        self
    }

    /// Overrides the distributed spawn mode (thread- vs process-backed
    /// workers; only consulted under [`RuntimeKind::Dist`]).
    pub fn with_spawn(mut self, spawn: SpawnKind) -> Self {
        self.exec.dist.spawn = spawn;
        self
    }

    /// Injects a worker kill at a chosen superstep (fault-tolerance
    /// testing; only consulted under [`RuntimeKind::Dist`]). The master
    /// recovers the worker and the run's outputs stay bit-identical.
    pub fn with_worker_kill(mut self, kill: WorkerKill) -> Self {
        self.exec.dist.kill = Some(kill);
        self
    }

    /// Switches to record-only enforcement (measure, don't fail).
    pub fn recording(mut self) -> Self {
        self.enforcement = Enforcement::Record;
        self
    }

    /// The [`ClusterConfig`] for this shape.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig {
            machines: self.machines,
            capacity: self.capacity,
            enforcement: self.enforcement,
            tree_fanout: self.fanout,
            central: 0,
            threads: self.exec.threads,
            runtime: self.exec.runtime,
            seed: self.seed,
            dist: self.exec.dist.into(),
        }
    }

    /// Deterministic machine assignment for record `id`.
    #[inline]
    pub fn place(&self, id: u64) -> usize {
        (mrlr_mapreduce::mix2(self.seed ^ 0x706c_6163, id) % self.machines as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_shapes_cluster() {
        let cfg = MrConfig::auto(100, 10_000, 0.2, 7);
        // eta = 100^1.2 ≈ 251
        assert!((240..=260).contains(&cfg.eta), "eta {}", cfg.eta);
        assert_eq!(cfg.machines, 10_000usize.div_ceil(cfg.eta));
        assert!(cfg.fanout >= 2);
        assert!(cfg.capacity > SET_COVER_SAMPLE_SLACK * cfg.eta);
        assert!(cfg.cluster().validate().is_ok());
    }

    #[test]
    fn exec_config_threads_reach_the_cluster() {
        let cfg = MrConfig::auto(50, 1000, 0.3, 1).with_threads(4);
        assert_eq!(cfg.exec, ExecConfig::threads(4));
        assert_eq!(cfg.cluster().threads, 4);
        assert_eq!(ExecConfig::SEQ.threads, 1);
    }

    #[test]
    fn exec_config_runtime_reaches_the_cluster() {
        let cfg = MrConfig::auto(50, 1000, 0.3, 9).with_runtime(RuntimeKind::Shard);
        assert_eq!(cfg.exec.runtime, RuntimeKind::Shard);
        assert_eq!(cfg.cluster().runtime, RuntimeKind::Shard);
        // The shard RNG seed travels with the paper seed…
        assert_eq!(cfg.cluster().seed, 9);
        // …and thread overrides keep the chosen runtime.
        assert_eq!(cfg.with_threads(4).exec.runtime, RuntimeKind::Shard);
    }

    #[test]
    fn place_is_deterministic_and_bounded() {
        let cfg = MrConfig::auto(50, 1000, 0.3, 1);
        for id in 0..100 {
            let a = cfg.place(id);
            assert_eq!(a, cfg.place(id));
            assert!(a < cfg.machines);
        }
    }
}
