//! MapReduce implementations of the paper's algorithms, running on the
//! [`mrlr_mapreduce`] cluster simulator.
//!
//! Every module here mirrors a driver from [`crate::rlr`], [`crate::hungry`]
//! or [`crate::colouring`] — same hash-derived coins, same central-machine
//! subroutines — so for identical seeds the MapReduce run returns
//! *bit-identical* solutions while additionally producing honest
//! round/space/communication [`mrlr_mapreduce::Metrics`]. The equivalence
//! is asserted by the integration tests.

pub mod bmatching;
pub mod clique;
pub mod colouring;
pub mod matching;
pub mod mis;
pub mod set_cover;
pub mod set_cover_greedy;
pub mod vertex_cover;

use mrlr_mapreduce::{ClusterConfig, Enforcement};

/// Cluster-shape parameters shared by the MapReduce algorithms.
///
/// The paper's regime: machine memory `η = n^{1+µ}` words, `M = n^{c-µ}`
/// machines for an input of `n^{1+c}` records, broadcast trees of fan-out
/// `n^µ`.
#[derive(Debug, Clone, Copy)]
pub struct MrConfig {
    /// Number of machines `M`.
    pub machines: usize,
    /// Word budget per machine.
    pub capacity: usize,
    /// Broadcast/aggregation tree fan-out (the paper's `n^µ`).
    pub fanout: usize,
    /// Sampling budget `η = n^{1+µ}`.
    pub eta: usize,
    /// Seed for all hash-derived randomness.
    pub seed: u64,
    /// Capacity enforcement mode.
    pub enforcement: Enforcement,
}

impl MrConfig {
    /// The paper's parameterization: `scale` plays the role of `n` (the
    /// number of vertices, or of sets/elements as appropriate),
    /// `input_records` the number of distributed records, and `mu` the
    /// memory exponent. Capacity is set with a constant-factor slack above
    /// `η` — the theorems' `O(·)` hides exactly such constants (`6η`
    /// samples, `8η` gathers, doubled adjacency, resident bitmaps), and the
    /// *measured* peak words are what the experiments report.
    pub fn auto(scale: usize, input_records: usize, mu: f64, seed: u64) -> Self {
        let nf = scale.max(2) as f64;
        let eta = nf.powf(1.0 + mu).ceil() as usize;
        let machines = input_records.div_ceil(eta).max(1);
        let fanout = (nf.powf(mu).ceil() as usize).max(2);
        let capacity = 64 * eta + 8 * scale + 1024;
        MrConfig {
            machines,
            capacity,
            fanout,
            eta,
            seed,
            enforcement: Enforcement::Strict,
        }
    }

    /// Overrides the machine count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines.max(1);
        self
    }

    /// Overrides the capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Switches to record-only enforcement (measure, don't fail).
    pub fn recording(mut self) -> Self {
        self.enforcement = Enforcement::Record;
        self
    }

    /// The [`ClusterConfig`] for this shape.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig {
            machines: self.machines,
            capacity: self.capacity,
            enforcement: self.enforcement,
            tree_fanout: self.fanout,
            central: 0,
        }
    }

    /// Deterministic machine assignment for record `id`.
    #[inline]
    pub fn place(&self, id: u64) -> usize {
        (mrlr_mapreduce::mix2(self.seed ^ 0x706c_6163, id) % self.machines as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_shapes_cluster() {
        let cfg = MrConfig::auto(100, 10_000, 0.2, 7);
        // eta = 100^1.2 ≈ 251
        assert!((240..=260).contains(&cfg.eta), "eta {}", cfg.eta);
        assert_eq!(cfg.machines, 10_000usize.div_ceil(cfg.eta));
        assert!(cfg.fanout >= 2);
        assert!(cfg.capacity > 6 * cfg.eta);
        assert!(cfg.cluster().validate().is_ok());
    }

    #[test]
    fn place_is_deterministic_and_bounded() {
        let cfg = MrConfig::auto(50, 1000, 0.3, 1);
        for id in 0..100 {
            let a = cfg.place(id);
            assert_eq!(a, cfg.place(id));
            assert!(a < cfg.machines);
        }
    }
}
