//! MapReduce implementation of Algorithm 5 and Remark 6.5 (Theorems 6.4
//! and 6.6): `(1+o(1))Δ` vertex and edge colouring in `O(1)` rounds.
//!
//! Group membership is a pure hash — every machine evaluates it locally
//! with zero communication. One exchange routes each intra-group edge to
//! its group's machine (`group mod M`, the paper's "central machine `i`"),
//! which colours its subgraph(s) locally: greedy `(Δ_i+1)` for vertex
//! colouring, Misra–Gries for edge colouring. A final gather collects the
//! colours. Total: 2 communication rounds.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::{Cluster, Metrics, MrError, MrResult, WordSized};

use crate::colouring::{edge_group, vertex_group};
use crate::mr::{dist_cache, MrConfig};
use crate::seq::greedy_graph::greedy_colouring_with_order;
use crate::seq::misra_gries::misra_gries_edge_colouring;
use crate::types::ColouringResult;

#[derive(Clone)]
struct ColourChunk {
    /// Input edges resident on this machine.
    input: Vec<(EdgeId, VertexId, VertexId)>,
    /// Received group edges, per group owned by this machine.
    received: Vec<(u64, EdgeId, VertexId, VertexId)>,
    /// Computed colours `(group, entity, colour)` — entity is a vertex for
    /// vertex colouring, an edge for edge colouring.
    colours: Vec<(u64, u32, u32)>,
}

impl WordSized for ColourChunk {
    fn words(&self) -> usize {
        3 + self.input.len() * 3 + self.received.len() * 4 + self.colours.len() * 3
    }
}

fn build_chunks(g: &Graph, cfg: &MrConfig) -> Vec<ColourChunk> {
    // Vertex and edge colouring partition the edge list identically, so
    // within a batch both registry keys share one cached snapshot.
    let key = dist_cache::DistKey::new(0x0063_6f6c, g, (g.n(), g.m()), cfg);
    dist_cache::get_or_build(key, || {
        let mut chunks: Vec<ColourChunk> = (0..cfg.machines)
            .map(|_| ColourChunk {
                input: Vec::new(),
                received: Vec::new(),
                colours: Vec::new(),
            })
            .collect();
        for (idx, e) in g.edges().iter().enumerate() {
            chunks[cfg.place(idx as u64)]
                .input
                .push((idx as EdgeId, e.u, e.v));
        }
        chunks
    })
}

/// Algorithm 5 on the cluster. Output is bit-identical to
/// [`crate::colouring::vertex_colouring`] with the same `(kappa, seed)`.
///
/// Deprecated entry point: dispatch `Registry::solve("vertex-colouring",
/// …)` from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{ColouringDriver, Instance, Registry};
/// use mrlr_core::colouring::group_count;
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::densified(16, 0.3, 5);
/// let cfg = MrConfig::auto(16, g.m().max(1), 0.3, 5);
/// let report = Registry::with_defaults()
///     .solve("vertex-colouring", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// // The registry derives κ and the Lemma 6.2 budget from (instance, cfg):
/// let kappa = group_count(16, g.m().max(1), cfg.mu).max(1);
/// let limit = Some(ColouringDriver::paper_edge_limit(16, cfg.mu));
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::colouring::mr_vertex_colouring(&g, kappa, limit, cfg).unwrap();
/// assert_eq!(report.solution.as_colouring().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"vertex-colouring\")` or `ColouringDriver`)"
)]
pub fn mr_vertex_colouring(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    cfg: MrConfig,
) -> MrResult<(ColouringResult, Metrics)> {
    run_vertex(g, kappa, edge_limit, cfg)
}

/// Implementation shared by the deprecated [`mr_vertex_colouring`] wrapper and the
/// [`crate::api::ColouringDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run_vertex(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    cfg: MrConfig,
) -> MrResult<(ColouringResult, Metrics)> {
    if kappa == 0 {
        return Err(MrError::BadConfig("kappa must be positive".into()));
    }
    let n = g.n();
    let machines = cfg.machines;
    let seed = cfg.seed;
    let mut cluster = Cluster::new(cfg.cluster(), build_chunks(g, &cfg))?;

    // Route intra-group edges to group machines (one round).
    cluster.exchange::<(u64, EdgeId, VertexId, VertexId), _, _>(
        |_, s, out| {
            for &(e, u, v) in &s.input {
                let gu = vertex_group(seed, u, kappa);
                if gu == vertex_group(seed, v, kappa) {
                    out.send(gu % machines, (gu as u64, e, u, v));
                }
            }
            s.input.clear();
        },
        |_, s, inbox| {
            s.received = inbox.into_vec();
            // Sort once at receipt: `(group, edge)` keys are unique, so
            // this is deterministic on every routing plane, and both the
            // Lemma 6.2 guard and the colouring pass then scan grouped
            // data without cloning or re-sorting.
            s.received.sort_unstable_by_key(|&(grp, e, _, _)| (grp, e));
        },
    )?;

    // Guard of line 4 (Lemma 6.2): per-group edge budget.
    if let Some(limit) = edge_limit {
        let worst = cluster.aggregate(
            |_, s: &ColourChunk| {
                let mut best: (u64, u64) = (0, 0); // (count, group)
                let mut idx = 0usize;
                let rec = &s.received; // sorted by (group, edge) at receipt
                while idx < rec.len() {
                    let grp = rec[idx].0;
                    let mut count = 0u64;
                    while idx < rec.len() && rec[idx].0 == grp {
                        count += 1;
                        idx += 1;
                    }
                    if count > best.0 {
                        best = (count, grp);
                    }
                }
                best
            },
            |a, b| if a.0 >= b.0 { a } else { b },
        )?;
        if worst.0 as usize > limit {
            return Err(cluster.fail(format!(
                "group {} has {} > {limit} edges (Lemma 6.2 guard)",
                worst.1, worst.0
            )));
        }
    }

    // Colour each owned group locally with the same greedy subroutine the
    // in-memory driver uses.
    cluster.local(move |_, s: &mut ColourChunk| {
        let rec = std::mem::take(&mut s.received); // sorted at receipt
        let mut idx = 0usize;
        while idx < rec.len() {
            let grp = rec[idx].0;
            let mut edges = Vec::new();
            while idx < rec.len() && rec[idx].0 == grp {
                edges.push(mrlr_graph::Edge::new(rec[idx].2, rec[idx].3, 1.0));
                idx += 1;
            }
            let sub = Graph::new(n, edges);
            let mut members: Vec<VertexId> = sub.edges().iter().flat_map(|e| [e.u, e.v]).collect();
            members.sort_unstable();
            members.dedup();
            let local = greedy_colouring_with_order(&sub, &members);
            for &v in &members {
                s.colours.push((grp, v, local.colours[v as usize]));
            }
        }
    })?;

    // Collect colours (one round).
    let coloured: Vec<(u64, u32, u32)> =
        cluster.gather(|_, s: &mut ColourChunk| std::mem::take(&mut s.colours))?;

    // Assemble exactly like the in-memory driver: groups ascending, private
    // palettes offset sequentially; vertices without intra-group edges get
    // local colour 0 of their group.
    let mut local_colour = vec![0u32; n];
    for &(_, v, c) in &coloured {
        local_colour[v as usize] = c;
    }
    let mut colours = vec![0u32; n];
    let mut next_palette = 0u32;
    let mut total = 0usize;
    for gi in 0..kappa {
        let members: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| vertex_group(seed, v, kappa) == gi)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut used = 0u32;
        for &v in &members {
            colours[v as usize] = next_palette + local_colour[v as usize];
            used = used.max(local_colour[v as usize] + 1);
        }
        next_palette += used;
        total += used as usize;
    }

    let (_, metrics) = cluster.into_parts();
    Ok((
        ColouringResult {
            colours,
            num_colours: total,
            groups: kappa,
        },
        metrics,
    ))
}

/// Remark 6.5 on the cluster. Output is bit-identical to
/// [`crate::colouring::edge_colouring`] with the same `(kappa, seed)`.
///
/// Deprecated entry point: dispatch `Registry::solve("edge-colouring",
/// …)` from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{ColouringDriver, Instance, Registry};
/// use mrlr_core::colouring::group_count;
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::densified(16, 0.3, 5);
/// let cfg = MrConfig::auto(16, g.m().max(1), 0.3, 5);
/// let report = Registry::with_defaults()
///     .solve("edge-colouring", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// // The registry derives κ and the Lemma 6.2 budget from (instance, cfg):
/// let kappa = group_count(16, g.m().max(1), cfg.mu).max(1);
/// let limit = Some(ColouringDriver::paper_edge_limit(16, cfg.mu));
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::colouring::mr_edge_colouring(&g, kappa, limit, cfg).unwrap();
/// assert_eq!(report.solution.as_colouring().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"edge-colouring\")` or `ColouringDriver`)"
)]
pub fn mr_edge_colouring(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    cfg: MrConfig,
) -> MrResult<(ColouringResult, Metrics)> {
    run_edge(g, kappa, edge_limit, cfg)
}

/// Implementation shared by the deprecated [`mr_edge_colouring`] wrapper and the
/// [`crate::api::ColouringDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run_edge(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    cfg: MrConfig,
) -> MrResult<(ColouringResult, Metrics)> {
    if kappa == 0 {
        return Err(MrError::BadConfig("kappa must be positive".into()));
    }
    let n = g.n();
    let m = g.m();
    let machines = cfg.machines;
    let seed = cfg.seed;
    let mut cluster = Cluster::new(cfg.cluster(), build_chunks(g, &cfg))?;

    cluster.exchange::<(u64, EdgeId, VertexId, VertexId), _, _>(
        |_, s, out| {
            for &(e, u, v) in &s.input {
                let grp = edge_group(seed, e, kappa);
                out.send(grp % machines, (grp as u64, e, u, v));
            }
            s.input.clear();
        },
        |_, s, inbox| {
            s.received = inbox.into_vec();
            // Sort once at receipt (see the vertex-colouring exchange).
            s.received.sort_unstable_by_key(|&(grp, e, _, _)| (grp, e));
        },
    )?;

    if let Some(limit) = edge_limit {
        let worst = cluster.aggregate(
            |_, s: &ColourChunk| {
                // Grouped scan over the pre-sorted incidence; `>=` keeps
                // the old `.max()` tie-break (greatest group id wins).
                let mut best: (u64, u64) = (0, 0); // (count, group)
                let mut idx = 0usize;
                let rec = &s.received;
                while idx < rec.len() {
                    let grp = rec[idx].0;
                    let mut count = 0u64;
                    while idx < rec.len() && rec[idx].0 == grp {
                        count += 1;
                        idx += 1;
                    }
                    if count >= best.0 {
                        best = (count, grp);
                    }
                }
                best
            },
            |a, b| if a.0 >= b.0 { a } else { b },
        )?;
        if worst.0 as usize > limit {
            return Err(cluster.fail(format!(
                "edge group {} has {} > {limit} edges",
                worst.1, worst.0
            )));
        }
    }

    cluster.local(move |_, s: &mut ColourChunk| {
        let rec = std::mem::take(&mut s.received); // sorted at receipt
        let mut idx = 0usize;
        while idx < rec.len() {
            let grp = rec[idx].0;
            let mut ids: Vec<EdgeId> = Vec::new();
            let mut edges = Vec::new();
            while idx < rec.len() && rec[idx].0 == grp {
                ids.push(rec[idx].1);
                edges.push(mrlr_graph::Edge::new(rec[idx].2, rec[idx].3, 1.0));
                idx += 1;
            }
            let sub = Graph::new(n, edges);
            let local = misra_gries_edge_colouring(&sub);
            for (pos, &orig) in ids.iter().enumerate() {
                s.colours.push((grp, orig, local.colours[pos]));
            }
        }
    })?;

    let coloured: Vec<(u64, u32, u32)> =
        cluster.gather(|_, s: &mut ColourChunk| std::mem::take(&mut s.colours))?;

    let mut local_colour = vec![0u32; m];
    for &(_, e, c) in &coloured {
        local_colour[e as usize] = c;
    }
    let mut colours = vec![0u32; m];
    let mut next_palette = 0u32;
    let mut total = 0usize;
    for gi in 0..kappa {
        let members: Vec<EdgeId> = (0..m as EdgeId)
            .filter(|&e| edge_group(seed, e, kappa) == gi)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut used = 0u32;
        for &e in &members {
            colours[e as usize] = next_palette + local_colour[e as usize];
            used = used.max(local_colour[e as usize] + 1);
        }
        next_palette += used;
        total += used as usize;
    }

    let (_, metrics) = cluster.into_parts();
    Ok((
        ColouringResult {
            colours,
            num_colours: total,
            groups: kappa,
        },
        metrics,
    ))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::colouring::{edge_colouring, vertex_colouring};
    use crate::verify::{is_proper_colouring, is_proper_edge_colouring};
    use mrlr_graph::generators::densified;

    #[test]
    fn vertex_matches_driver_and_is_constant_round() {
        for seed in 0..3 {
            let g = densified(60, 0.5, seed);
            let cfg = MrConfig::auto(60, g.m(), 0.3, seed);
            let (mr, metrics) = mr_vertex_colouring(&g, 4, None, cfg).unwrap();
            let seq = vertex_colouring(&g, 4, None, seed).unwrap();
            assert_eq!(mr.colours, seq.colours, "seed {seed}");
            assert_eq!(mr.num_colours, seq.num_colours);
            assert!(is_proper_colouring(&g, &mr.colours));
            // O(1) rounds: 1 exchange + 1 gather (+ limit aggregate if on).
            assert!(metrics.rounds <= 3, "rounds {}", metrics.rounds);
        }
    }

    #[test]
    fn edge_matches_driver() {
        for seed in 0..3 {
            let g = densified(40, 0.4, seed);
            let cfg = MrConfig::auto(40, g.m(), 0.3, seed);
            let (mr, metrics) = mr_edge_colouring(&g, 3, None, cfg).unwrap();
            let seq = edge_colouring(&g, 3, None, seed).unwrap();
            assert_eq!(mr.colours, seq.colours, "seed {seed}");
            assert!(is_proper_edge_colouring(&g, &mr.colours));
            assert!(metrics.rounds <= 3);
        }
    }

    #[test]
    fn limit_guard_fires() {
        let g = densified(30, 0.6, 1);
        let cfg = MrConfig::auto(30, g.m(), 0.3, 1);
        assert!(mr_vertex_colouring(&g, 1, Some(5), cfg).is_err());
        assert!(mr_edge_colouring(&g, 1, Some(5), cfg).is_err());
    }
}
