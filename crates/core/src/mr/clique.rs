//! MapReduce implementation of Appendix B (Corollary B.1): maximal clique
//! in `O(1/µ)` rounds, without materializing the complement graph.
//!
//! Machines hold vertex adjacency plus a replicated *active-set* bitmap
//! (the surviving common-neighbour candidates), maintained by broadcast
//! removal deltas — the executable form of the paper's relabelling scheme.
//! A sampled vertex sends its **complement** list `A \ N[v]`, whose size is
//! its complement degree (bounded by its degree class), so communication
//! stays `O(n^{1+µ})` per round even though the complement is dense.

use mrlr_graph::{Graph, VertexId};
use mrlr_mapreduce::{Bitset, Cluster, Metrics, MrError, MrResult, WordSized};

use crate::hungry::clique::CLIQUE_RNG_TAG;
use crate::hungry::mis::{degree_class, group_choice, MisParams};
use crate::mr::{dist_cache, MrConfig};
use crate::types::SelectionResult;

#[derive(Clone)]
struct CliqueRec {
    v: VertexId,
    /// Sorted neighbour ids.
    nbrs: Vec<VertexId>,
    /// `|N(v) ∩ A|` while `v` is active.
    g_alive: usize,
}

impl WordSized for CliqueRec {
    fn words(&self) -> usize {
        2 + self.nbrs.words()
    }
}

#[derive(Clone)]
struct CliqueChunk {
    recs: Vec<CliqueRec>,
    active: Bitset,
    active_count: usize,
}

impl WordSized for CliqueChunk {
    fn words(&self) -> usize {
        2 + self.recs.iter().map(WordSized::words).sum::<usize>() + self.active.words()
    }
}

impl CliqueChunk {
    fn apply_delta(&mut self, delta: &[VertexId]) {
        for &v in delta {
            self.active.clear(v as usize);
        }
        self.active_count -= delta.len();
        for rec in &mut self.recs {
            if !self.active.get(rec.v as usize) {
                continue;
            }
            rec.g_alive -= rec
                .nbrs
                .iter()
                .filter(|x| delta.binary_search(x).is_ok())
                .count();
        }
    }

    fn dbar(&self, rec: &CliqueRec) -> usize {
        self.active_count - 1 - rec.g_alive
    }

    /// Complement list `A \ N[v] \ {v}` of an active record.
    fn complement_list(&self, rec: &CliqueRec) -> Vec<VertexId> {
        self.active
            .iter_ones()
            .map(|u| u as VertexId)
            .filter(|&u| u != rec.v && rec.nbrs.binary_search(&u).is_err())
            .collect()
    }
}

type SampleMsg = (u64, u64, VertexId, Vec<VertexId>); // (class, group, v, complement list)

/// Appendix B's maximal clique on the cluster. Output is bit-identical to
/// [`crate::hungry::clique::maximal_clique`] with the same parameters.
///
/// Deprecated entry point: dispatch `Registry::solve("clique", …)` from
/// [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry};
/// use mrlr_core::hungry::MisParams;
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::gnp(12, 0.5, 1);
/// let cfg = MrConfig::auto(12, g.m().max(1), 0.35, 1);
/// let report = Registry::with_defaults()
///     .solve("clique", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::clique::mr_maximal_clique(
///     &g,
///     MisParams::mis2(12, cfg.mu, cfg.seed),
///     cfg,
/// )
/// .unwrap();
/// assert_eq!(report.solution.as_selection().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"clique\")` or `CliqueDriver`)"
)]
pub fn mr_maximal_clique(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    run(g, params, cfg)
}

/// Implementation shared by the deprecated [`mr_maximal_clique`] wrapper and the
/// [`crate::api::CliqueDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 || params.eta == 0 {
        return Err(MrError::BadConfig(
            "invalid hungry-greedy parameters".into(),
        ));
    }
    let n = g.n();
    if n == 0 {
        return Ok((
            SelectionResult {
                vertices: vec![],
                phases: 0,
                iterations: 0,
            },
            Metrics::new(cfg.machines, cfg.capacity),
        ));
    }
    let nf = (n.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;

    let key = dist_cache::DistKey::new(0x0063_6c71, g, (n, g.m()), &cfg);
    let chunks: Vec<CliqueChunk> = dist_cache::get_or_build(key, || {
        let adj = g.neighbours();
        let mut chunks: Vec<CliqueChunk> = (0..cfg.machines)
            .map(|_| CliqueChunk {
                recs: Vec::new(),
                active: Bitset::full(n),
                active_count: n,
            })
            .collect();
        for v in 0..n {
            let mut nbrs = adj[v].clone();
            nbrs.sort_unstable();
            chunks[cfg.place(v as u64)].recs.push(CliqueRec {
                v: v as VertexId,
                g_alive: nbrs.len(),
                nbrs,
            });
        }
        chunks
    });
    let mut cluster = Cluster::new(cfg.cluster(), chunks)?;
    let mut clique: Vec<VertexId> = Vec::new();
    cluster.charge_central(2 + n / 32)?;

    let mut k = 0usize;
    loop {
        let comp_edges = {
            let (active_count, alive_sum) = cluster.aggregate(
                |_, s: &CliqueChunk| {
                    let active: usize =
                        s.recs.iter().filter(|r| s.active.get(r.v as usize)).count();
                    let alive: usize = s
                        .recs
                        .iter()
                        .filter(|r| s.active.get(r.v as usize))
                        .map(|r| r.g_alive)
                        .sum();
                    (active, alive)
                },
                |a, b| (a.0 + b.0, a.1 + b.1),
            )?;
            if active_count < 2 {
                0
            } else {
                active_count * (active_count - 1) / 2 - alive_sum / 2
            }
        };
        let global_active = cluster.state(0).active_count; // replicated scalar
        if comp_edges < params.eta || global_active == 0 {
            break;
        }
        k += 1;
        if k > 64 + 4 * n {
            return Err(cluster.fail("clique round budget exhausted"));
        }

        // Class sizes over complement degrees.
        let class_sizes: Vec<u64> = cluster.aggregate(
            |_, s: &CliqueChunk| {
                let mut counts = vec![0u64; num_classes + 1];
                for r in &s.recs {
                    if s.active.get(r.v as usize) {
                        let d = s.dbar(r);
                        if d > 0 {
                            counts[degree_class(d, nf, params.alpha, num_classes)] += 1;
                        }
                    }
                }
                counts
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )?;
        cluster.broadcast(&class_sizes)?;

        let seed = params.seed;
        let alpha = params.alpha;
        let gs = params.group_size;
        let sizes = class_sizes.clone();
        let mut sample: Vec<SampleMsg> = cluster.gather(move |_, s: &mut CliqueChunk| {
            let mut out = Vec::new();
            for r in &s.recs {
                if !s.active.get(r.v as usize) {
                    continue;
                }
                let d = s.dbar(r);
                if d == 0 {
                    continue;
                }
                let i = degree_class(d, nf, alpha, num_classes);
                let groups_count = nf.powf((i + 1) as f64 * alpha).ceil() as usize;
                if let Some(gid) = group_choice(
                    seed,
                    &[CLIQUE_RNG_TAG, k as u64, i as u64],
                    r.v as u64,
                    groups_count,
                    gs,
                    sizes[i] as usize,
                ) {
                    out.push((i as u64, gid as u64, r.v, s.complement_list(r)));
                }
            }
            out
        })?;

        // Central: one qualifying vertex per group, hungriest (max current
        // complement degree) first within a group.
        sample.sort_unstable_by_key(|&(c, gg, v, _)| (c, gg, v));
        let mut removed_now = vec![false; n];
        let mut delta: Vec<VertexId> = Vec::new();
        let mut idx = 0usize;
        while idx < sample.len() {
            let (c, gid) = (sample[idx].0, sample[idx].1);
            let accept = nf.powf(1.0 - (c as f64 + 1.0) * params.alpha);
            let mut best: Option<(usize, usize)> = None;
            while idx < sample.len() && sample[idx].0 == c && sample[idx].1 == gid {
                let (_, _, v, ref list) = sample[idx];
                if !removed_now[v as usize] {
                    let d = list.iter().filter(|&&u| !removed_now[u as usize]).count();
                    if (d as f64) >= accept {
                        best = match best {
                            None => Some((d, idx)),
                            Some((bd, _)) if d > bd => Some((d, idx)),
                            other => other,
                        };
                    }
                }
                idx += 1;
            }
            if let Some((_, bi)) = best {
                let (_, _, v, list) = sample[bi].clone();
                clique.push(v);
                removed_now[v as usize] = true;
                delta.push(v);
                for &u in &list {
                    if !removed_now[u as usize] {
                        removed_now[u as usize] = true;
                        delta.push(u);
                    }
                }
            }
        }
        delta.sort_unstable();
        cluster.broadcast(&delta)?;
        cluster.local(move |_, s: &mut CliqueChunk| s.apply_delta(&delta))?;
    }

    // Final central round: greedy clique over the residual active set using
    // gathered complement lists (ascending vertex order).
    let mut residual: Vec<(VertexId, Vec<VertexId>)> =
        cluster.gather(|_, s: &mut CliqueChunk| {
            s.recs
                .iter()
                .filter(|r| s.active.get(r.v as usize))
                .map(|r| (r.v, s.complement_list(r)))
                .collect::<Vec<_>>()
        })?;
    residual.sort_unstable_by_key(|&(v, _)| v);
    let mut removed_now = vec![false; n];
    for (v, list) in residual {
        if removed_now[v as usize] {
            continue;
        }
        clique.push(v);
        removed_now[v as usize] = true;
        for &u in &list {
            removed_now[u as usize] = true;
        }
    }

    clique.sort_unstable();
    let result = SelectionResult {
        vertices: clique,
        phases: k,
        iterations: k + 1,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::hungry::clique::maximal_clique;
    use crate::verify::is_maximal_clique;
    use mrlr_graph::generators::gnp;

    #[test]
    fn matches_driver_bit_for_bit() {
        for seed in 0..4 {
            let g = gnp(40, 0.5, seed);
            let params = MisParams::mis2(40, 0.3, seed);
            let cfg = MrConfig::auto(40, g.m().max(1), 0.3, seed);
            let (mr, metrics) = mr_maximal_clique(&g, params, cfg).unwrap();
            let seq = maximal_clique(&g, params).unwrap();
            assert_eq!(mr.vertices, seq.vertices, "seed {seed}");
            assert!(is_maximal_clique(&g, &mr.vertices));
            assert!(metrics.rounds > 0);
        }
    }

    #[test]
    fn dense_graph_nontrivial_clique() {
        let g = gnp(35, 0.8, 3);
        let params = MisParams::mis2(35, 0.4, 3);
        let cfg = MrConfig::auto(35, g.m(), 0.4, 3);
        let (r, _) = mr_maximal_clique(&g, params, cfg).unwrap();
        assert!(r.vertices.len() >= 3);
        assert!(is_maximal_clique(&g, &r.vertices));
    }
}
