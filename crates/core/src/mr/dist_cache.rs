//! Batch-scoped cache of distributed per-machine driver states.
//!
//! [`Registry::solve_batch`][crate::api::Registry::solve_batch] runs many
//! `(algorithm, cfg)` jobs over one instance set. Before this cache, every
//! job re-ran its driver's distribution phase — hashing each record with
//! [`MrConfig::place`][super::MrConfig::place] and rebuilding the
//! per-machine state vectors — even when a sibling job had just distributed
//! the *same instance* onto the *same cluster shape* (e.g. thread-count
//! sweeps, or the vertex-/edge-colouring pair sharing one edge partition).
//! Drivers now funnel their distribution through [`get_or_build`]: inside a
//! [`scope`] (entered by `solve_batch`), the first job builds and caches the
//! initial state vector and later jobs clone it instead of rebuilding.
//!
//! Correctness: the cached value is the *initial* snapshot, taken before
//! the cluster mutates anything, and distribution is a pure function of
//! `(instance, machines, seed)` — so a cache hit is bit-identical to a
//! rebuild, and solutions *and* [`Metrics`][mrlr_mapreduce::Metrics] are
//! unchanged (asserted by `tests/registry_api.rs`). Outside a scope the
//! cache is inert: plain `Registry::solve` calls pay no lookup and hold no
//! memory.
//!
//! Keys combine a driver tag, the instance's address and shape, an
//! optional content salt (for drivers whose states embed side data, e.g.
//! b-matching capacities), and the shape-relevant config fields. Addresses
//! are only meaningful while the instance outlives the scope, which
//! `solve_batch` guarantees by borrowing its instance slice across the
//! whole batch; the salt and shape guard the residual risk of an address
//! being reused by a lookalike.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use super::MrConfig;

/// Cache key: driver tag + instance identity + cluster shape.
///
/// Crate-internal: keys identify instances by *address*, which is only
/// sound while every cached instance outlives the enclosing [`scope`] —
/// a guarantee [`Registry::solve_batch`][crate::api::Registry::solve_batch]
/// provides by borrowing its instance slice across the batch, and which
/// arbitrary external callers could easily break (drop an instance
/// mid-scope, allocate a lookalike at the same address, read a stale
/// snapshot). Hence none of the cache-mutating surface is public.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DistKey {
    /// Driver-specific tag (distinguishes state types on one instance).
    tag: u64,
    /// Address of the borrowed instance (stable for the scope's lifetime).
    instance: usize,
    /// Cheap structural fingerprint of the instance (e.g. `(n, m)`).
    shape: (usize, usize),
    /// Extra content fingerprint for side data baked into the states.
    salt: u64,
    /// Machine count (distribution target).
    machines: usize,
    /// Placement seed.
    seed: u64,
}

impl DistKey {
    /// Key for distributing `instance` (any borrowed value) under `cfg`.
    pub(crate) fn new<T: ?Sized>(
        tag: u64,
        instance: &T,
        shape: (usize, usize),
        cfg: &MrConfig,
    ) -> Self {
        DistKey {
            tag,
            instance: instance as *const T as *const () as usize,
            shape,
            salt: 0,
            machines: cfg.machines,
            seed: cfg.seed,
        }
    }

    /// Adds a content fingerprint for side data baked into the states.
    pub(crate) fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }
}

/// Folds a slice of word-sized values into a cheap fingerprint (FNV-1a).
pub(crate) fn fingerprint(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

thread_local! {
    static CACHE: RefCell<HashMap<DistKey, Box<dyn Any>>> = RefCell::new(HashMap::new());
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with the distribution cache enabled on this thread. Nested
/// scopes share the outermost cache; the cache (and its memory) is dropped
/// when the outermost scope exits. Hit/miss counters reset on entry of the
/// outermost scope.
pub(crate) fn scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(d.get() - 1));
            if DEPTH.with(Cell::get) == 0 {
                CACHE.with(|c| c.borrow_mut().clear());
            }
        }
    }
    if DEPTH.with(Cell::get) == 0 {
        HITS.with(|h| h.set(0));
        MISSES.with(|m| m.set(0));
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// `(hits, misses)` observed since the current outermost [`scope`] was
/// entered (or since the last scope, outside one). Diagnostics hook for
/// the cache-transparency tests; unused on non-test builds.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn stats() -> (u64, u64) {
    (HITS.with(Cell::get), MISSES.with(Cell::get))
}

/// Returns the distributed state vector for `key`, building it with
/// `build` on a miss. Inside a [`scope`] the result is cached and later
/// calls with the same key get a clone of the initial snapshot; outside a
/// scope this is exactly `build()`.
pub(crate) fn get_or_build<T: Clone + 'static>(key: DistKey, build: impl FnOnce() -> T) -> T {
    if DEPTH.with(Cell::get) == 0 {
        return build();
    }
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(hit) = cache.get(&key).and_then(|v| v.downcast_ref::<T>()) {
            HITS.with(|h| h.set(h.get() + 1));
            return hit.clone();
        }
        MISSES.with(|m| m.set(m.get() + 1));
        let built = build();
        cache.insert(key, Box::new(built.clone()));
        built
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64, anchor: &u32, machines: usize) -> DistKey {
        let cfg = MrConfig::auto(10, 100, 0.3, 7).with_machines(machines);
        DistKey::new(tag, anchor, (10, 100), &cfg)
    }

    #[test]
    fn inert_outside_scope() {
        let anchor = 5u32;
        let mut builds = 0;
        for _ in 0..3 {
            let v: Vec<u32> = get_or_build(key(1, &anchor, 4), || {
                builds += 1;
                vec![1, 2, 3]
            });
            assert_eq!(v, vec![1, 2, 3]);
        }
        assert_eq!(builds, 3, "no caching outside a scope");
    }

    #[test]
    fn caches_within_scope_and_clears_after() {
        let anchor = 5u32;
        scope(|| {
            let mut builds = 0;
            for _ in 0..3 {
                let v: Vec<u32> = get_or_build(key(1, &anchor, 4), || {
                    builds += 1;
                    vec![9, 8]
                });
                assert_eq!(v, vec![9, 8]);
            }
            assert_eq!(builds, 1, "one build, two hits");
            assert_eq!(stats(), (2, 1));
            // Different shape → different slot.
            let _: Vec<u32> = get_or_build(key(1, &anchor, 8), || vec![0]);
            assert_eq!(stats(), (2, 2));
            // Different tag or salt → different slot.
            let _: Vec<u32> = get_or_build(key(2, &anchor, 4), || vec![0]);
            let _: Vec<u32> = get_or_build(key(1, &anchor, 4).with_salt(7), || vec![0]);
            assert_eq!(stats(), (2, 4));
        });
        // Scope exited: cache dropped, back to pass-through.
        let mut rebuilt = false;
        let _: Vec<u32> = get_or_build(key(1, &anchor, 4), || {
            rebuilt = true;
            vec![9, 8]
        });
        assert!(rebuilt);
    }

    #[test]
    fn nested_scopes_share_the_outer_cache() {
        let anchor = 1u32;
        scope(|| {
            let _: Vec<u32> = get_or_build(key(3, &anchor, 2), || vec![1]);
            scope(|| {
                let v: Vec<u32> = get_or_build(key(3, &anchor, 2), || unreachable!("cached"));
                assert_eq!(v, vec![1]);
            });
            // Inner exit must not clear the outer cache.
            let v: Vec<u32> = get_or_build(key(3, &anchor, 2), || unreachable!("still cached"));
            assert_eq!(v, vec![1]);
        });
    }

    #[test]
    fn fingerprint_differs_on_content() {
        assert_ne!(fingerprint([1, 2, 3]), fingerprint([1, 2, 4]));
        assert_ne!(fingerprint([]), fingerprint([0]));
        assert_eq!(fingerprint([5, 6]), fingerprint([5, 6]));
    }
}
