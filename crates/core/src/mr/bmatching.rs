//! MapReduce implementation of Algorithm 7 (Theorem D.3):
//! `(3 − 2/b + 2ε)`-approximate maximum weight b-matching.
//!
//! Same layout as [`crate::mr::matching`] (vertex-partitioned incidence,
//! replicated `ϕ`), with two differences forced by `b ≥ 2`:
//!
//! * pushed edges do **not** die automatically (the reduction spreads
//!   `m_e/b(v)` per endpoint), so pushed edge ids are broadcast and marked;
//! * aliveness is the ε-adjusted rule `w > (1+ε)(ϕ(u)+ϕ(v))`, and each
//!   vertex samples a fixed count `b(v)·ln(1/δ)·n^µ` of alive incident
//!   edges without replacement.

use std::collections::HashMap;

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::rng::DetRng;
use mrlr_mapreduce::{Bitset, Cluster, Metrics, MrError, MrResult, WordSized};

use crate::mr::{dist_cache, MrConfig};
use crate::rlr::bmatching::{push_budget, BMatchingParams, BMATCH_RNG_TAG};
use crate::seq::local_ratio_bmatching::BMatchingLocalRatio;
use crate::types::{MatchingResult, POS_TOL};

#[derive(Clone)]
struct VertexAdj {
    v: VertexId,
    b: u32,
    /// `(edge id, other endpoint, weight, pushed)`, ascending edge id.
    inc: Vec<(EdgeId, VertexId, f64, bool)>,
}

impl WordSized for VertexAdj {
    fn words(&self) -> usize {
        2 + 1 + self.inc.len() * 4
    }
}

#[derive(Clone)]
struct BMatchState {
    vertices: Vec<VertexAdj>,
    phi: Vec<f64>,
    eps: f64,
    /// Edge id → (vertex slot, incidence slot) pairs on this machine.
    index: HashMap<EdgeId, Vec<(usize, usize)>>,
    /// Round-local alive-incidence staging, reused across sampling rounds
    /// (empty between supersteps; never part of the metered state words).
    scratch: Vec<(EdgeId, VertexId, f64)>,
}

impl BMatchState {
    fn edge_alive(&self, u: VertexId, o: VertexId, w: f64, pushed: bool) -> bool {
        !pushed && w - (1.0 + self.eps) * (self.phi[u as usize] + self.phi[o as usize]) > POS_TOL
    }

    fn alive_halves(&self) -> usize {
        self.vertices
            .iter()
            .map(|va| {
                va.inc
                    .iter()
                    .filter(|&&(_, o, w, p)| self.edge_alive(va.v, o, w, p))
                    .count()
            })
            .sum()
    }
}

impl WordSized for BMatchState {
    fn words(&self) -> usize {
        // The index mirrors the incidence lists: charge it once more.
        1 + self.vertices.iter().map(WordSized::words).sum::<usize>() * 2 + self.phi.len()
    }
}

/// Runs Algorithm 7 on the cluster. Output is bit-identical to
/// [`crate::rlr::bmatching::approx_b_matching`] with the same parameters.
///
/// Deprecated entry point: dispatch `Registry::solve("b-matching", …)`
/// from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{BMatchingInstance, Instance, Registry};
/// use mrlr_core::mr::MrConfig;
/// use mrlr_core::rlr::BMatchingParams;
/// use mrlr_graph::generators;
///
/// let g = generators::with_uniform_weights(&generators::densified(14, 0.3, 3), 1.0, 9.0, 3);
/// let b: Vec<u32> = (0..14).map(|v| 1 + v % 2).collect();
/// let cfg = MrConfig::auto(14, g.m(), 0.3, 3);
/// let inst = BMatchingInstance::new(g.clone(), b.clone(), 0.25);
/// let report = Registry::with_defaults()
///     .solve("b-matching", &Instance::BMatching(inst), &cfg)
///     .unwrap();
/// // The registry derives the paper's parameters from (instance, cfg):
/// let params = BMatchingParams {
///     eps: 0.25,
///     n_mu: (14f64).powf(cfg.mu).max(1.0),
///     eta: cfg.eta,
///     seed: cfg.seed,
/// };
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::bmatching::mr_b_matching(&g, &b, params, cfg).unwrap();
/// assert_eq!(report.solution.as_matching().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"b-matching\")` or `BMatchingDriver`)"
)]
pub fn mr_b_matching(
    g: &Graph,
    b: &[u32],
    params: BMatchingParams,
    cfg: MrConfig,
) -> MrResult<(MatchingResult, Metrics)> {
    run(g, b, params, cfg)
}

/// Implementation shared by the deprecated [`mr_b_matching`] wrapper and the
/// [`crate::api::BMatchingDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(
    g: &Graph,
    b: &[u32],
    params: BMatchingParams,
    cfg: MrConfig,
) -> MrResult<(MatchingResult, Metrics)> {
    if params.eps <= 0.0 || !params.eps.is_finite() {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if params.eta == 0 || params.n_mu < 1.0 {
        return Err(MrError::BadConfig(
            "eta must be positive and n_mu >= 1".into(),
        ));
    }
    assert_eq!(b.len(), g.n());
    let n = g.n();
    let delta_param = params.eps / (1.0 + params.eps);
    let ln_inv_delta = (1.0 / delta_param).ln();
    let b_max = b.iter().copied().max().unwrap_or(1) as f64;
    let central_threshold = ((2.0 * b_max * ln_inv_delta * params.eta as f64) as usize)
        .max(crate::mr::CENTRAL_FINISH_SLACK * params.eta);

    // The per-machine snapshot bakes in capacities and `ε`, so the cache
    // key carries their fingerprint on top of the graph identity.
    let key = dist_cache::DistKey::new(0x626d_6174, g, (n, g.m()), &cfg).with_salt(
        dist_cache::fingerprint(b.iter().map(|&x| x as u64).chain([params.eps.to_bits()])),
    );
    let states: Vec<BMatchState> = dist_cache::get_or_build(key, || {
        let adj = g.adjacency();
        let mut states: Vec<BMatchState> = (0..cfg.machines)
            .map(|_| BMatchState {
                vertices: Vec::new(),
                phi: vec![0.0; n],
                eps: params.eps,
                index: HashMap::new(),
                scratch: Vec::new(),
            })
            .collect();
        for v in 0..n {
            let dst = cfg.place(v as u64);
            let slot = states[dst].vertices.len();
            let mut inc: Vec<(EdgeId, VertexId, f64, bool)> = adj[v]
                .iter()
                .map(|&(o, e)| (e, o, g.edge(e).w, false))
                .collect();
            inc.sort_unstable_by_key(|&(e, _, _, _)| e);
            for (pos, &(e, _, _, _)) in inc.iter().enumerate() {
                states[dst].index.entry(e).or_default().push((slot, pos));
            }
            states[dst].vertices.push(VertexAdj {
                v: v as VertexId,
                b: b[v],
                inc,
            });
        }
        states
    });
    let mut cluster = Cluster::new(cfg.cluster(), states)?;

    let mut lr = BMatchingLocalRatio::new(b, params.eps);
    cluster.charge_central(n + 2)?;

    let mut iteration = 0usize;
    loop {
        let alive = cluster.aggregate_sum(|_, s: &BMatchState| s.alive_halves())? / 2;
        if alive == 0 {
            break;
        }
        iteration += 1;

        if alive < central_threshold {
            let mut residual: Vec<(EdgeId, VertexId, VertexId, f64)> =
                cluster.gather(|_, s: &mut BMatchState| {
                    let mut out = Vec::new();
                    for va in &s.vertices {
                        for &(e, o, w, p) in &va.inc {
                            if va.v < o && s.edge_alive(va.v, o, w, p) {
                                out.push((e, va.v, o, w));
                            }
                        }
                    }
                    out
                })?;
            residual.sort_unstable_by_key(|&(e, _, _, _)| e);
            for (e, u, v, w) in residual {
                lr.push(e, u, v, w);
            }
            break;
        }

        // Per-vertex fixed-count sampling, identical RNG to the driver.
        let seed = params.seed;
        let n_mu = params.n_mu;
        let mut sample: Vec<(VertexId, EdgeId, VertexId, f64)> =
            cluster.gather(|_, s: &mut BMatchState| {
                let mut out = Vec::new();
                // One state-held staging buffer per machine, reused every
                // vertex and every round — not a fresh Vec per vertex.
                let mut alive_inc = std::mem::take(&mut s.scratch);
                for va in &s.vertices {
                    alive_inc.clear();
                    alive_inc.extend(
                        va.inc
                            .iter()
                            .filter(|&&(_, o, w, p)| s.edge_alive(va.v, o, w, p))
                            .map(|&(e, o, w, _)| (e, o, w)),
                    );
                    if alive_inc.is_empty() {
                        continue;
                    }
                    let k = (va.b as f64 * ln_inv_delta * n_mu).ceil() as usize;
                    let mut rng =
                        DetRng::derive(seed, &[BMATCH_RNG_TAG, iteration as u64, va.v as u64]);
                    for i in rng.sample_indices(alive_inc.len(), k) {
                        let (e, o, w) = alive_inc[i];
                        out.push((va.v, e, o, w));
                    }
                }
                alive_inc.clear();
                s.scratch = alive_inc;
                out
            })?;

        // Central: per vertex ascending, up to b(v)·ln(1/δ) ε-adjusted
        // pushes of the heaviest-by-current-modified-weight sampled edges.
        sample.sort_unstable_by_key(|&(v, e, _, _)| (v, e));
        let mut pushed_now: Vec<EdgeId> = Vec::new();
        // Bitset shadow of `pushed_now` for O(1) membership in the inner
        // best-edge scan (the Vec stays as the ordered broadcast payload).
        let mut pushed_bits = Bitset::new(g.m());
        let mut touched: Vec<VertexId> = Vec::new();
        let mut idx = 0usize;
        let mut group: Vec<(EdgeId, VertexId, f64)> = Vec::new();
        while idx < sample.len() {
            let v = sample[idx].0;
            group.clear();
            while idx < sample.len() && sample[idx].0 == v {
                group.push((sample[idx].1, sample[idx].2, sample[idx].3));
                idx += 1;
            }
            let budget = push_budget(b[v as usize], params.eps);
            for _ in 0..budget {
                let mut best: Option<(f64, usize)> = None;
                for (pos, &(e, o, w)) in group.iter().enumerate() {
                    if pushed_bits.get(e as usize) || !lr.alive(v, o, w) {
                        continue;
                    }
                    let m = lr.modified(v, o, w);
                    let better = match best {
                        None => true,
                        Some((bm, bpos)) => m > bm || (m == bm && e < group[bpos].0),
                    };
                    if better {
                        best = Some((m, pos));
                    }
                }
                let Some((_, pos)) = best else { break };
                let (e, o, w) = group.swap_remove(pos);
                if lr.push(e, v, o, w) {
                    pushed_bits.set(e as usize);
                    pushed_now.push(e);
                    touched.push(v);
                    touched.push(o);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        pushed_now.sort_unstable();

        // Broadcast ϕ deltas and pushed edge ids; machines refresh. The
        // refresh closure borrows the broadcast value instead of moving
        // clones of both lists into it.
        let phi_delta: Vec<(VertexId, f64)> = touched
            .iter()
            .map(|&v| (v, lr.phis()[v as usize]))
            .collect();
        let update = (phi_delta, pushed_now);
        cluster.broadcast(&update)?;
        cluster.local(|_, s: &mut BMatchState| {
            let (phi_delta, pushed_now) = &update;
            for &(v, phi) in phi_delta {
                s.phi[v as usize] = phi;
            }
            for &e in pushed_now {
                if let Some(slots) = s.index.get(&e) {
                    for &(vs, ps) in slots {
                        s.vertices[vs].inc[ps].3 = true;
                    }
                }
            }
        })?;
        cluster.charge_central(n + 2 + 2 * lr.stack_len())?;

        if iteration > 64 + 4 * g.m() {
            return Err(cluster.fail("iteration budget exhausted"));
        }
    }

    let matching = lr.unwind(g);
    let weight: f64 = matching.iter().map(|&e| g.edge(e).w).sum();
    let result = MatchingResult {
        matching,
        weight,
        stack_gain: lr.gain(),
        stack: lr.stack().to_vec(),
        iterations: iteration,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::rlr::bmatching::approx_b_matching;
    use crate::seq::local_ratio_bmatching::b_matching_multiplier;
    use crate::verify::is_b_matching;
    use mrlr_graph::generators::{densified, with_uniform_weights};

    #[test]
    fn matches_sequential_driver_bit_for_bit() {
        for seed in 0..3 {
            let g = with_uniform_weights(&densified(40, 0.4, seed), 0.5, 8.0, seed + 17);
            let b: Vec<u32> = (0..g.n()).map(|v| 1 + (v % 3) as u32).collect();
            let params = BMatchingParams {
                eps: 0.25,
                n_mu: 2.0,
                eta: 20,
                seed,
            };
            let cfg = MrConfig::auto(40, g.m(), 0.4, seed);
            let mut cfg = cfg;
            cfg.eta = params.eta;
            let (mr, metrics) = mr_b_matching(&g, &b, params, cfg).unwrap();
            let seq = approx_b_matching(&g, &b, params).unwrap();
            assert_eq!(mr.matching, seq.matching, "seed {seed}");
            assert_eq!(mr.iterations, seq.iterations);
            assert!(is_b_matching(&g, &b, &mr.matching));
            let mult = b_matching_multiplier(&b, params.eps);
            assert!(mr.certified_ratio(mult) <= mult + 1e-6);
            assert!(metrics.rounds > 0);
        }
    }

    #[test]
    fn capacity_guard_fires() {
        let g = with_uniform_weights(&densified(30, 0.5, 1), 1.0, 3.0, 2);
        let b = vec![2u32; g.n()];
        let params = BMatchingParams {
            eps: 0.25,
            n_mu: 2.0,
            eta: 10,
            seed: 1,
        };
        let cfg = MrConfig::auto(30, g.m(), 0.3, 1).with_capacity(50);
        assert!(matches!(
            mr_b_matching(&g, &b, params, cfg),
            Err(MrError::CapacityExceeded { .. })
        ));
    }
}
