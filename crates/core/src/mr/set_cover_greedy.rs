//! MapReduce implementation of Algorithm 3 (Theorem 4.6): the hungry-greedy
//! `(1+ε) H_Δ` approximation for minimum weight set cover.
//!
//! Layout: sets are hash-partitioned (`O(m^{1+µ})` words per machine); each
//! machine keeps a replicated covered-elements bitmap (`⌈m/64⌉` words) and
//! per-set uncovered counts, refreshed by broadcast deltas. Per inner
//! round: a tree aggregation reports whether any set still clears the
//! current level `L/(1+ε)` together with the class sizes; machines sample
//! groups locally and gather `(class, group, id, w, remaining elements)`
//! tuples; the central machine takes at most one qualifying set per group
//! and broadcasts the covered delta. Group overflows (`> 4·m^{µ/2}`)
//! *fail the iteration and continue*, exactly as lines 15–17 prescribe.

use std::collections::HashMap;

use mrlr_mapreduce::{Bitset, Cluster, Metrics, MrError, MrResult, WordSized};
use mrlr_setsys::{ElemId, SetId, SetSystem};

use crate::hungry::mis::{degree_class, group_choice};
use crate::hungry::setcover::{HungryScParams, HungryScTrace, HSC_RNG_TAG};
use crate::mr::{dist_cache, MrConfig};
use crate::seq::greedy_sc::{fitted_dual, harmonic};
use crate::types::CoverResult;

#[derive(Clone)]
struct SetRecM {
    id: SetId,
    w: f64,
    elems: Vec<ElemId>,
    uncov: usize,
    chosen: bool,
}

impl WordSized for SetRecM {
    fn words(&self) -> usize {
        4 + self.elems.words()
    }
}

#[derive(Clone)]
struct ScChunk {
    recs: Vec<SetRecM>,
    covered: Bitset,
    /// element → local set slots (charged as a mirror of the input).
    index: HashMap<ElemId, Vec<usize>>,
}

impl WordSized for ScChunk {
    fn words(&self) -> usize {
        // recs + covered bitmap + reverse index (≈ the recs again).
        1 + self.recs.iter().map(WordSized::words).sum::<usize>() * 2 + self.covered.words()
    }
}

impl ScChunk {
    fn apply_delta(&mut self, covered_delta: &[ElemId], chosen_delta: &[SetId]) {
        for &j in covered_delta {
            if self.covered.set(j as usize) {
                if let Some(slots) = self.index.get(&j) {
                    for &s in slots {
                        self.recs[s].uncov -= 1;
                    }
                }
            }
        }
        for &i in chosen_delta {
            // Chosen sets live on exactly one machine; linear scan is fine
            // (recs are sorted by id — binary search).
            if let Ok(pos) = self.recs.binary_search_by_key(&i, |r| r.id) {
                self.recs[pos].chosen = true;
            }
        }
    }
}

type SampleMsg = (u64, u64, SetId, f64, Vec<ElemId>);

/// Algorithm 3 on the cluster. Output is bit-identical to
/// [`crate::hungry::setcover::hungry_set_cover`] with the same parameters.
///
/// Deprecated entry point: dispatch `Registry::solve("set-cover-greedy",
/// …)` from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry, DEFAULT_GREEDY_SC_EPS};
/// use mrlr_core::hungry::HungryScParams;
/// use mrlr_core::mr::MrConfig;
///
/// let sys = mrlr_setsys::generators::bounded_set_size(20, 15, 4, 1);
/// let cfg = MrConfig::auto(20, 15, 0.5, 1);
/// let report = Registry::with_defaults()
///     .solve("set-cover-greedy", &Instance::SetSystem(sys.clone()), &cfg)
///     .unwrap();
/// // The registry derives the paper's parameters from (instance, cfg):
/// let params = HungryScParams::new(sys.universe(), cfg.mu, DEFAULT_GREEDY_SC_EPS, cfg.seed);
/// #[allow(deprecated)]
/// let (legacy, _trace, _metrics) =
///     mrlr_core::mr::set_cover_greedy::mr_hungry_set_cover(&sys, params, cfg).unwrap();
/// assert_eq!(report.solution.as_cover().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"set-cover-greedy\")` or `GreedySetCoverDriver`)"
)]
pub fn mr_hungry_set_cover(
    sys: &SetSystem,
    params: HungryScParams,
    cfg: MrConfig,
) -> MrResult<(CoverResult, HungryScTrace, Metrics)> {
    run(sys, params, cfg)
}

/// Implementation shared by the deprecated [`mr_hungry_set_cover`] wrapper and the
/// [`crate::api::GreedySetCoverDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(
    sys: &SetSystem,
    params: HungryScParams,
    cfg: MrConfig,
) -> MrResult<(CoverResult, HungryScTrace, Metrics)> {
    if params.eps <= 0.0 || !params.eps.is_finite() {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 {
        return Err(MrError::BadConfig("invalid alpha/group_size".into()));
    }
    if !sys.is_coverable() {
        return Err(MrError::Infeasible("element contained in no set".into()));
    }

    let m = sys.universe();
    let n = sys.n_sets();
    let mf = (m.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;

    // Distribute sets; batch jobs sharing the instance + shape reuse the
    // snapshot.
    let key = dist_cache::DistKey::new(0x0073_6367, sys, (m, n), &cfg);
    let chunks: Vec<ScChunk> = dist_cache::get_or_build(key, || {
        let mut chunks: Vec<ScChunk> = (0..cfg.machines)
            .map(|_| ScChunk {
                recs: Vec::new(),
                covered: Bitset::new(m),
                index: HashMap::new(),
            })
            .collect();
        for l in 0..n {
            let dst = cfg.place(l as u64);
            let slot = chunks[dst].recs.len();
            let elems = sys.set(l as SetId).to_vec();
            for &j in &elems {
                chunks[dst].index.entry(j).or_default().push(slot);
            }
            chunks[dst].recs.push(SetRecM {
                id: l as SetId,
                w: sys.weight(l as SetId),
                uncov: elems.len(),
                elems,
                chosen: false,
            });
        }
        // recs are pushed in ascending id order per machine already.
        chunks
    });
    let mut cluster = Cluster::new(cfg.cluster(), chunks)?;

    // Central state: covered bitmap + bookkeeping.
    let mut covered = Bitset::new(m);
    let mut covered_count = 0usize;
    let mut solution: Vec<SetId> = Vec::new();
    let mut price_sum = 0.0f64;
    let mut prices: Vec<(ElemId, f64)> = Vec::new();
    let mut trace = HungryScTrace::default();
    cluster.charge_central(2 + m / 32)?;

    // Initial level L = max |S|/w, aggregated up the tree.
    let mut level = cluster.aggregate_max_f64(|_, s: &ScChunk| {
        s.recs
            .iter()
            .map(|r| r.uncov as f64 / r.w)
            .fold(0.0f64, f64::max)
    })?;
    let mut k = 0usize;

    while covered_count < m {
        loop {
            // One tree aggregation: (any set clears the level?, Φ_k).
            let lvl = level;
            let eps = params.eps;
            let (exists, phi) = cluster.aggregate(
                |_, s: &ScChunk| {
                    let mut any = 0u64;
                    let mut pot = 0.0f64;
                    for r in &s.recs {
                        if !r.chosen && r.uncov as f64 / r.w >= lvl / (1.0 + eps) {
                            if r.uncov > 0 {
                                any = 1;
                            }
                            pot += r.uncov as f64;
                        }
                    }
                    (any, pot)
                },
                |a, b| (a.0 | b.0, a.1 + b.1),
            )?;
            if exists == 0 {
                break;
            }
            k += 1;
            if k > 10_000 + 16 * n {
                return Err(cluster.fail("Algorithm 3 inner-loop budget exhausted"));
            }
            trace.potentials.push(phi);

            // Class sizes for the qualifying sets.
            let alpha = params.alpha;
            let class_sizes: Vec<u64> = cluster.aggregate(
                |_, s: &ScChunk| {
                    let mut counts = vec![0u64; num_classes + 1];
                    for r in &s.recs {
                        if !r.chosen && r.uncov > 0 && r.uncov as f64 / r.w >= lvl / (1.0 + eps) {
                            counts[degree_class(r.uncov, mf, alpha, num_classes)] += 1;
                        }
                    }
                    counts
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )?;
            cluster.broadcast(&class_sizes)?;

            // Sample + gather (remaining elements only).
            let seed = params.seed;
            let gs = params.group_size;
            let sizes = class_sizes.clone();
            let mut sample: Vec<SampleMsg> = cluster.gather(move |_, s: &mut ScChunk| {
                let mut out = Vec::new();
                for r in &s.recs {
                    if r.chosen || r.uncov == 0 || (r.uncov as f64 / r.w) < lvl / (1.0 + eps) {
                        continue;
                    }
                    let i = degree_class(r.uncov, mf, alpha, num_classes);
                    let groups_count = (2.0 * mf.powf((i + 1) as f64 * alpha)).ceil() as usize;
                    if let Some(gid) = group_choice(
                        seed,
                        &[HSC_RNG_TAG, k as u64, i as u64],
                        r.id as u64,
                        groups_count,
                        gs,
                        sizes[i] as usize,
                    ) {
                        let remaining: Vec<ElemId> = r
                            .elems
                            .iter()
                            .copied()
                            .filter(|&j| !s.covered.get(j as usize))
                            .collect();
                        out.push((i as u64, gid as u64, r.id, r.w, remaining));
                    }
                }
                out
            })?;

            // Group overflow ⇒ fail this iteration, continue (lines 15-17).
            sample.sort_unstable_by_key(|&(c, gg, id, _, _)| (c, gg, id));
            let mut overflow = false;
            {
                let mut idx = 0usize;
                while idx < sample.len() {
                    let key = (sample[idx].0, sample[idx].1);
                    let mut count = 0usize;
                    while idx < sample.len() && (sample[idx].0, sample[idx].1) == key {
                        count += 1;
                        idx += 1;
                    }
                    if count > 4 * gs {
                        overflow = true;
                        break;
                    }
                }
            }
            if overflow {
                trace.failed_rounds += 1;
                continue;
            }

            // Central: one qualifying set per group.
            let mut covered_delta: Vec<ElemId> = Vec::new();
            let mut chosen_delta: Vec<SetId> = Vec::new();
            let mut idx = 0usize;
            while idx < sample.len() {
                let key = (sample[idx].0, sample[idx].1);
                let accept = mf.powf(1.0 - (key.0 as f64 + 1.0) * params.alpha) / 2.0;
                let mut best: Option<(usize, usize)> = None;
                while idx < sample.len() && (sample[idx].0, sample[idx].1) == key {
                    let (_, _, id, w, ref remaining) = sample[idx];
                    let _ = id;
                    let uncov_cur = remaining
                        .iter()
                        .filter(|&&j| !covered.get(j as usize))
                        .count();
                    if uncov_cur as f64 >= accept
                        && uncov_cur as f64 / w >= level / (1.0 + params.eps)
                    {
                        best = match best {
                            None => Some((uncov_cur, idx)),
                            Some((bu, _)) if uncov_cur > bu => Some((uncov_cur, idx)),
                            other => other,
                        };
                    }
                    idx += 1;
                }
                if let Some((uncov_cur, bi)) = best {
                    let (_, _, id, w, remaining) = sample[bi].clone();
                    let price = w / uncov_cur as f64;
                    solution.push(id);
                    chosen_delta.push(id);
                    for j in remaining {
                        if covered.set(j as usize) {
                            covered_count += 1;
                            covered_delta.push(j);
                            price_sum += price;
                            prices.push((j, price));
                        }
                    }
                }
            }
            covered_delta.sort_unstable();
            chosen_delta.sort_unstable();
            cluster.broadcast(&(covered_delta.clone(), chosen_delta.clone()))?;
            cluster
                .local(move |_, s: &mut ScChunk| s.apply_delta(&covered_delta, &chosen_delta))?;
        }
        if covered_count < m {
            level /= 1.0 + params.eps;
            trace.levels += 1;
            cluster.broadcast_words(1)?;
        }
    }

    solution.sort_unstable();
    let weight = sys.cover_weight(&solution);
    let h = harmonic(sys.max_set_size());
    let result = CoverResult {
        cover: solution,
        weight,
        lower_bound: price_sum / ((1.0 + params.eps) * h),
        dual: fitted_dual(&prices, params.eps, h),
        iterations: k,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, trace, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::hungry::setcover::hungry_set_cover;
    use crate::verify::is_cover;
    use mrlr_setsys::generators::{bounded_set_size, with_uniform_weights};

    #[test]
    fn matches_driver_bit_for_bit() {
        for seed in 0..3 {
            let sys = with_uniform_weights(bounded_set_size(100, 60, 8, seed), 1.0, 5.0, seed);
            let params = HungryScParams::new(60, 0.4, 0.2, seed);
            let cfg = MrConfig::auto(60, sys.total_size(), 0.4, seed);
            let (mr, mr_trace, metrics) = mr_hungry_set_cover(&sys, params, cfg).unwrap();
            let (seq, seq_trace) = hungry_set_cover(&sys, params).unwrap();
            assert_eq!(mr.cover, seq.cover, "seed {seed}");
            assert_eq!(mr.iterations, seq.iterations);
            assert_eq!(mr_trace.levels, seq_trace.levels);
            assert_eq!(mr_trace.failed_rounds, seq_trace.failed_rounds);
            assert!(is_cover(&sys, &mr.cover));
            assert!(metrics.rounds > 0);
            // (1+ε)H_Δ certificate.
            let bound = (1.0 + params.eps) * harmonic(sys.max_set_size());
            assert!(mr.weight <= bound * mr.lower_bound * (1.0 + 1e-9) + 1e-9);
        }
    }

    #[test]
    fn potential_trace_recorded() {
        let sys = bounded_set_size(200, 100, 12, 5);
        let params = HungryScParams::new(100, 0.5, 0.25, 5);
        let cfg = MrConfig::auto(100, sys.total_size(), 0.5, 5);
        let (_, trace, _) = mr_hungry_set_cover(&sys, params, cfg).unwrap();
        assert!(!trace.potentials.is_empty());
    }
}
