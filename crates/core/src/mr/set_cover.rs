//! MapReduce implementation of Algorithm 1 (Theorem 2.4, general `f`):
//! `f`-approximate weighted set cover.
//!
//! Layout: elements live on machines in the dual representation `T_j`
//! (`O(f · n^{1+µ})` words per machine). The central machine holds the
//! residual set weights (`n` words). Per iteration:
//!
//! 1. aggregate `|U_r|` up the tree;
//! 2. every machine samples its alive elements with `p = min(1, 2η/|U_r|)`
//!    and gathers `(j, T_j)` pairs to the central machine (fail if
//!    `|U'| > 6η`);
//! 3. the central machine runs the sequential local ratio on the sample;
//! 4. the newly-zeroed set ids are broadcast down the `n^µ`-ary tree
//!    (this is the `O(c/µ)`-per-iteration cost that makes the general-`f`
//!    bound `O((c/µ)²)`);
//! 5. machines drop every element with a chosen set in its `T_j`.

use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{Bitset, Cluster, Metrics, MrError, MrResult, WordSized};
use mrlr_setsys::{ElemId, SetId, SetSystem};

use crate::mr::{dist_cache, MrConfig, SET_COVER_SAMPLE_SLACK};
use crate::rlr::setcover::{sample_probability, SC_COIN_TAG};
use crate::seq::local_ratio_sc::ScLocalRatio;
use crate::types::CoverResult;

#[derive(Clone)]
struct ElemRec {
    id: ElemId,
    tj: Vec<SetId>,
    alive: bool,
}

impl WordSized for ElemRec {
    fn words(&self) -> usize {
        2 + self.tj.words()
    }
}

#[derive(Clone)]
struct ElemChunk {
    recs: Vec<ElemRec>,
    in_cover: Bitset,
    alive_count: usize,
}

impl WordSized for ElemChunk {
    fn words(&self) -> usize {
        2 + self.recs.iter().map(WordSized::words).sum::<usize>() + self.in_cover.words()
    }
}

/// Runs Algorithm 1 on the cluster simulator. Returns the cover and the
/// cluster metrics. Output is bit-identical to
/// [`crate::rlr::setcover::approx_set_cover_f`] with `(cfg.eta, cfg.seed)`.
///
/// Deprecated entry point: dispatch `Registry::solve("set-cover-f", …)`
/// from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry};
/// use mrlr_core::mr::MrConfig;
///
/// let sys = mrlr_setsys::generators::bounded_frequency(12, 60, 3, 1);
/// let cfg = MrConfig::auto(12, 60, 0.5, 1);
/// let report = Registry::with_defaults()
///     .solve("set-cover-f", &Instance::SetSystem(sys.clone()), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::set_cover::mr_set_cover_f(&sys, cfg).unwrap();
/// assert_eq!(report.solution.as_cover().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"set-cover-f\")` or `SetCoverFDriver`)"
)]
pub fn mr_set_cover_f(sys: &SetSystem, cfg: MrConfig) -> MrResult<(CoverResult, Metrics)> {
    run(sys, cfg)
}

/// Implementation shared by the deprecated [`mr_set_cover_f`] wrapper and the
/// [`crate::api::SetCoverFDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(sys: &SetSystem, cfg: MrConfig) -> MrResult<(CoverResult, Metrics)> {
    if !sys.is_coverable() {
        return Err(MrError::Infeasible(
            "set cover instance leaves an element uncovered".into(),
        ));
    }
    if cfg.eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let m = sys.universe();
    let n_sets = sys.n_sets();

    // Distribute elements by hash; the dual (element → containing sets)
    // view is only needed to build the snapshot, so cache hits skip it.
    let key = dist_cache::DistKey::new(0x0073_6366, sys, (m, n_sets), &cfg);
    let chunks: Vec<ElemChunk> = dist_cache::get_or_build(key, || {
        let dual_view = sys.dual();
        let mut chunks: Vec<ElemChunk> = (0..cfg.machines)
            .map(|_| ElemChunk {
                recs: Vec::new(),
                in_cover: Bitset::new(n_sets),
                alive_count: 0,
            })
            .collect();
        for (j, tj) in dual_view.iter().enumerate().take(m) {
            let dst = cfg.place(j as u64);
            chunks[dst].recs.push(ElemRec {
                id: j as ElemId,
                tj: tj.clone(),
                alive: true,
            });
            chunks[dst].alive_count += 1;
        }
        chunks
    });
    let mut cluster = Cluster::new(cfg.cluster(), chunks)?;

    // Central state: residual weights (n words) + dual accumulator.
    let mut lr = ScLocalRatio::new(sys.weights());
    cluster.charge_central(n_sets + 2)?;

    let mut round = 0usize;
    loop {
        let alive = cluster.aggregate_sum(|_, s: &ElemChunk| s.alive_count)?;
        if alive == 0 {
            break;
        }
        round += 1;
        let p = sample_probability(cfg.eta, alive);
        // Metered broadcast of p (one word) so every machine can sample.
        cluster.broadcast_words(1)?;

        let seed = cfg.seed;
        let mut sample: Vec<(ElemId, Vec<SetId>)> = cluster.gather(|_, s: &mut ElemChunk| {
            s.recs
                .iter()
                .filter(|r| r.alive && coin(seed, &[SC_COIN_TAG, round as u64, r.id as u64], p))
                .map(|r| (r.id, r.tj.clone()))
                .collect::<Vec<_>>()
        })?;
        if sample.len() > SET_COVER_SAMPLE_SLACK * cfg.eta {
            return Err(cluster.fail(format!(
                "|U'| = {} > {}η = {}",
                sample.len(),
                SET_COVER_SAMPLE_SLACK,
                SET_COVER_SAMPLE_SLACK * cfg.eta
            )));
        }

        // Central: sequential local ratio on the sample in ascending
        // element order (matching the sequential driver).
        sample.sort_unstable_by_key(|(j, _)| *j);
        let mut newly_zero: Vec<SetId> = Vec::new();
        for (j, tj) in &sample {
            let zero_before: Vec<bool> = tj.iter().map(|&i| lr.in_cover(i)).collect();
            if lr.process(*j, tj).is_some() {
                for (&i, was_zero) in tj.iter().zip(zero_before) {
                    if !was_zero && lr.in_cover(i) {
                        newly_zero.push(i);
                    }
                }
            }
        }
        newly_zero.sort_unstable();
        newly_zero.dedup();

        // Broadcast the cover delta down the tree; machines update.
        cluster.broadcast(&newly_zero)?;
        let delta = newly_zero;
        cluster.local(move |_, s: &mut ElemChunk| {
            for &i in &delta {
                s.in_cover.set(i as usize);
            }
            for r in &mut s.recs {
                if r.alive && r.tj.iter().any(|&i| s.in_cover.get(i as usize)) {
                    r.alive = false;
                    s.alive_count -= 1;
                }
            }
        })?;

        if round > 64 + 2 * m {
            return Err(cluster.fail("round budget exhausted"));
        }
    }

    let cover = lr.cover();
    debug_assert!(sys.covers(&cover));
    let result = CoverResult {
        weight: sys.cover_weight(&cover),
        cover,
        lower_bound: lr.dual(),
        dual: lr.dual_vector(),
        iterations: round,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::rlr::setcover::approx_set_cover_f;
    use crate::verify::is_cover;
    use mrlr_setsys::generators::{bounded_frequency, with_uniform_weights};

    #[test]
    fn matches_sequential_driver_bit_for_bit() {
        for seed in 0..4 {
            let sys = with_uniform_weights(bounded_frequency(40, 600, 3, seed), 1.0, 8.0, seed);
            let cfg = MrConfig::auto(40, 600, 0.5, seed);
            let (mr, metrics) = mr_set_cover_f(&sys, cfg).unwrap();
            let seq = approx_set_cover_f(&sys, cfg.eta, seed).unwrap();
            assert_eq!(mr.cover, seq.cover, "seed {seed}");
            assert_eq!(mr.iterations, seq.iterations);
            assert!((mr.lower_bound - seq.lower_bound).abs() < 1e-9);
            assert!(metrics.rounds > 0);
            assert!(is_cover(&sys, &mr.cover));
        }
    }

    #[test]
    fn metrics_reflect_tree_depth() {
        let sys = bounded_frequency(30, 2000, 2, 1);
        // Force many machines and a small fanout: broadcasts must take
        // multiple rounds each.
        let mut cfg = MrConfig::auto(30, 2000, 0.3, 2).with_machines(16);
        cfg.fanout = 2;
        let (_, metrics) = mr_set_cover_f(&sys, cfg).unwrap();
        let (_, _, bcast, agg) = metrics.rounds_by_kind();
        assert!(bcast >= 2, "broadcast rounds {bcast}");
        assert!(agg >= 1, "aggregate rounds {agg}");
        assert!(metrics.peak_machine_words <= cfg.capacity);
    }

    #[test]
    fn undersized_capacity_fails_cleanly() {
        let sys = bounded_frequency(30, 500, 2, 3);
        let cfg = MrConfig::auto(30, 500, 0.3, 3).with_capacity(40);
        match mr_set_cover_f(&sys, cfg) {
            Err(MrError::CapacityExceeded { .. }) | Err(MrError::AlgorithmFailed { .. }) => {}
            other => panic!("expected capacity failure, got {other:?}"),
        }
    }

    #[test]
    fn single_machine_degenerate() {
        let sys = bounded_frequency(10, 50, 2, 4);
        let cfg = MrConfig::auto(10, 50, 0.5, 4).with_machines(1);
        let (r, metrics) = mr_set_cover_f(&sys, cfg).unwrap();
        assert!(is_cover(&sys, &r.cover));
        // One machine: broadcasts are free, gathers still counted.
        assert!(metrics.rounds >= 1);
    }
}
