//! MapReduce implementation of Theorem 2.4's `f = 2` fast path:
//! 2-approximate weighted **vertex cover** in `O(c/µ)` rounds.
//!
//! The general-`f` algorithm pays a broadcast tree (`O(c/µ)` rounds) per
//! iteration to disseminate the chosen sets. For `f = 2` the paper replaces
//! the tree with two point-to-point hops: the central machine sends one bit
//! to each newly-chosen *vertex* (set), and each vertex forwards the bit to
//! its incident *edges* (elements) — `O(1)` rounds per iteration, `O(c/µ)`
//! total.
//!
//! Layout: edges (elements) are hash-partitioned; each vertex lives on a
//! machine with its incident edge-id list.
//!
//! Every message this driver ships is a fixed-width scalar tuple, so it
//! stays on the plain exchange/gather plane: the flat payload plane
//! (`Cluster::exchange_payload`/`gather_payload`, see `crate::mr::mis`)
//! only pays off for variable-size `(head, [elements])` messages, and
//! moving scalar tuples onto it would change nothing but the call shape.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{Bitset, Cluster, Metrics, MrError, MrResult, WordSized};

use crate::mr::{dist_cache, MrConfig, SET_COVER_SAMPLE_SLACK};
use crate::rlr::setcover::{sample_probability, SC_COIN_TAG};
use crate::seq::local_ratio_sc::ScLocalRatio;
use crate::types::CoverResult;

#[derive(Clone)]
struct EdgeRec {
    id: EdgeId,
    u: VertexId,
    v: VertexId,
    alive: bool,
}

impl WordSized for EdgeRec {
    fn words(&self) -> usize {
        4
    }
}

#[derive(Clone)]
struct VertexRec {
    v: VertexId,
    edges: Vec<EdgeId>,
}

impl WordSized for VertexRec {
    fn words(&self) -> usize {
        1 + self.edges.words()
    }
}

#[derive(Clone)]
struct VcState {
    edges: Vec<EdgeRec>,
    vertices: Vec<VertexRec>,
    alive_count: usize,
}

impl WordSized for VcState {
    fn words(&self) -> usize {
        1 + self.edges.iter().map(WordSized::words).sum::<usize>()
            + self.vertices.iter().map(WordSized::words).sum::<usize>()
    }
}

/// Runs the `f = 2` vertex-cover algorithm on the cluster. Output is
/// bit-identical to running [`crate::rlr::setcover::approx_set_cover_f`] on
/// [`mrlr_setsys::SetSystem::vertex_cover_of`]`(g, weights)`.
///
/// Deprecated entry point: dispatch `Registry::solve("vertex-cover", …)`
/// from [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry, VertexWeightedGraph};
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::densified(14, 0.3, 2);
/// let weights: Vec<f64> = (0..14).map(|v| 1.0 + v as f64).collect();
/// let cfg = MrConfig::auto(14, g.m().max(1), 0.3, 2);
/// let inst = VertexWeightedGraph::new(g.clone(), weights.clone());
/// let report = Registry::with_defaults()
///     .solve("vertex-cover", &Instance::VertexWeighted(inst), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) =
///     mrlr_core::mr::vertex_cover::mr_vertex_cover(&g, &weights, cfg).unwrap();
/// assert_eq!(report.solution.as_cover().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"vertex-cover\")` or `VertexCoverDriver`)"
)]
pub fn mr_vertex_cover(
    g: &Graph,
    weights: &[f64],
    cfg: MrConfig,
) -> MrResult<(CoverResult, Metrics)> {
    run(g, weights, cfg)
}

/// Implementation shared by the deprecated [`mr_vertex_cover`] wrapper and the
/// [`crate::api::VertexCoverDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(g: &Graph, weights: &[f64], cfg: MrConfig) -> MrResult<(CoverResult, Metrics)> {
    assert_eq!(weights.len(), g.n());
    if cfg.eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    if g.m() == 0 {
        return Ok((
            CoverResult {
                cover: vec![],
                weight: 0.0,
                lower_bound: 0.0,
                dual: vec![],
                iterations: 0,
            },
            Metrics::new(cfg.machines, cfg.capacity),
        ));
    }

    // Distribute edges (elements) and vertices (sets with adjacency);
    // batch jobs sharing the instance + shape reuse the snapshot.
    let key = dist_cache::DistKey::new(0x0076_6363, g, (g.n(), g.m()), &cfg);
    let states: Vec<VcState> = dist_cache::get_or_build(key, || {
        let mut states: Vec<VcState> = (0..cfg.machines)
            .map(|_| VcState {
                edges: Vec::new(),
                vertices: Vec::new(),
                alive_count: 0,
            })
            .collect();
        for (idx, e) in g.edges().iter().enumerate() {
            let dst = cfg.place(idx as u64);
            states[dst].edges.push(EdgeRec {
                id: idx as EdgeId,
                u: e.u,
                v: e.v,
                alive: true,
            });
            states[dst].alive_count += 1;
        }
        let adj = g.adjacency();
        for (v, nbrs) in adj.iter().enumerate() {
            let dst = cfg.place(0x0076_6377 ^ (v as u64).rotate_left(17));
            states[dst].vertices.push(VertexRec {
                v: v as VertexId,
                edges: nbrs.iter().map(|&(_, e)| e).collect(),
            });
        }
        states
    });
    let mut cluster = Cluster::new(cfg.cluster(), states)?;

    let mut lr = ScLocalRatio::new(weights);
    cluster.charge_central(g.n() + 2)?;
    let edge_place = |e: EdgeId| cfg.place(e as u64);
    let vertex_place = |v: VertexId| cfg.place(0x0076_6377 ^ (v as u64).rotate_left(17));

    let mut round = 0usize;
    loop {
        let alive = cluster.aggregate_sum(|_, s: &VcState| s.alive_count)?;
        if alive == 0 {
            break;
        }
        round += 1;
        let p = sample_probability(cfg.eta, alive);
        cluster.broadcast_words(1)?;

        let seed = cfg.seed;
        let mut sample: Vec<(EdgeId, VertexId, VertexId)> =
            cluster.gather(|_, s: &mut VcState| {
                s.edges
                    .iter()
                    .filter(|r| r.alive && coin(seed, &[SC_COIN_TAG, round as u64, r.id as u64], p))
                    .map(|r| (r.id, r.u, r.v))
                    .collect::<Vec<_>>()
            })?;
        if sample.len() > SET_COVER_SAMPLE_SLACK * cfg.eta {
            return Err(cluster.fail(format!(
                "|U'| = {} > {}η = {}",
                sample.len(),
                SET_COVER_SAMPLE_SLACK,
                SET_COVER_SAMPLE_SLACK * cfg.eta
            )));
        }
        sample.sort_unstable_by_key(|(j, _, _)| *j);
        let mut newly_zero: Vec<VertexId> = Vec::new();
        for &(j, u, v) in &sample {
            let tj = [u, v];
            let zero_before = [lr.in_cover(u), lr.in_cover(v)];
            // Elements of the vertex-cover system are edge ids.
            if lr.process(j, &tj).is_some() {
                for (&i, was) in tj.iter().zip(zero_before) {
                    if !was && lr.in_cover(i) {
                        newly_zero.push(i);
                    }
                }
            }
        }
        newly_zero.sort_unstable();
        newly_zero.dedup();

        // Hop 1: central → chosen vertices (one id each).
        // Hop 2: each chosen vertex → its incident edges' machines.
        let central = cluster.config().central;
        let delta = newly_zero;
        // Hop 1 meters central → chosen-vertex delivery; the chosen ids are
        // then available on the vertex machines (captured `delta` stands in
        // for the delivered values — see DESIGN.md, "metered data, captured
        // control").
        cluster.exchange::<VertexId, _, _>(
            |id, _s, out| {
                if id == central {
                    for &v in &delta {
                        out.send(vertex_place(v), v);
                    }
                }
            },
            |_, _s, _inbox| {},
        )?;
        // Hop 2: each vertex machine forwards the chosen bit to the edges
        // of its chosen vertices; edge machines mark them covered. A Bitset
        // over the vertex ids makes the per-record membership check O(1)
        // instead of a binary search per vertex record.
        let mut delta_bits = Bitset::new(g.n());
        for &v in &delta {
            delta_bits.set(v as usize);
        }
        cluster.exchange::<EdgeId, _, _>(
            |_, s, out| {
                for vr in &s.vertices {
                    if delta_bits.get(vr.v as usize) {
                        for &e in &vr.edges {
                            out.send(edge_place(e), e);
                        }
                    }
                }
            },
            |_, s, inbox| {
                for e in inbox {
                    // Edge records are stored in ascending id order.
                    if let Ok(pos) = s.edges.binary_search_by_key(&e, |r| r.id) {
                        if s.edges[pos].alive {
                            s.edges[pos].alive = false;
                            s.alive_count -= 1;
                        }
                    }
                }
            },
        )?;

        if round > 64 + 2 * g.m() {
            return Err(cluster.fail("round budget exhausted"));
        }
    }

    let cover = lr.cover();
    let result = CoverResult {
        weight: cover.iter().map(|&v| weights[v as usize]).sum(),
        cover,
        lower_bound: lr.dual(),
        dual: lr.dual_vector(),
        iterations: round,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::rlr::setcover::approx_set_cover_f;
    use crate::verify::is_vertex_cover;
    use mrlr_graph::generators::densified;
    use mrlr_mapreduce::DetRng;
    use mrlr_setsys::SetSystem;

    fn weights(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::derive(seed, &[0x0076_6377]);
        (0..n).map(|_| rng.f64_range(1.0, 10.0)).collect()
    }

    #[test]
    fn matches_generic_driver_on_vc_view() {
        for seed in 0..4 {
            let g = densified(50, 0.4, seed);
            let w = weights(50, seed);
            let cfg = MrConfig::auto(50, g.m(), 0.4, seed);
            let (mr, metrics) = mr_vertex_cover(&g, &w, cfg).unwrap();
            let sys = SetSystem::vertex_cover_of(&g, w.clone());
            let seq = approx_set_cover_f(&sys, cfg.eta, seed).unwrap();
            let seq_cover: Vec<VertexId> = seq.cover.clone();
            assert_eq!(mr.cover, seq_cover, "seed {seed}");
            assert!(is_vertex_cover(&g, &mr.cover));
            // 2-approximation certificate.
            assert!(mr.weight <= 2.0 * mr.lower_bound + 1e-6);
            assert!(metrics.rounds > 0);
        }
    }

    #[test]
    fn constant_rounds_per_iteration() {
        // f = 2 path: rounds per iteration are O(1) — specifically
        // aggregate + p-broadcast + gather + 2 exchanges, with fanout
        // covering all machines in one hop here.
        let g = densified(60, 0.5, 9);
        let w = weights(60, 9);
        let mut cfg = MrConfig::auto(60, g.m(), 0.3, 9);
        cfg.fanout = cfg.machines.max(2);
        let (r, metrics) = mr_vertex_cover(&g, &w, cfg).unwrap();
        assert!(r.iterations >= 1);
        let per_iter = metrics.rounds as f64 / r.iterations as f64;
        assert!(per_iter <= 6.0, "rounds/iter {per_iter}");
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::new(5, vec![]);
        let cfg = MrConfig::auto(5, 1, 0.3, 1);
        let (r, _) = mr_vertex_cover(&g, &[1.0; 5], cfg).unwrap();
        assert!(r.cover.is_empty());
    }
}
